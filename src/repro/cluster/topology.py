"""Cluster topology: device islands, bandwidths and latencies.

The paper evaluates on an 8-node cluster where every node holds 8 NVLink-
connected A800 GPUs and nodes are interconnected with 400 Gbps InfiniBand
(§5.1).  A *device island* (§3.5) is a set of devices connected by the
high-bandwidth intra-node interconnect; the device placement pass prefers
placing MetaOps and high-volume data flows within one island.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.device import A800_SPEC, Device, DeviceSpec


class TopologyError(Exception):
    """Raised for invalid cluster descriptions or device id lookups."""


@dataclass(frozen=True)
class InterconnectSpec:
    """Bandwidth/latency of one link class, in bytes/s and seconds."""

    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")

    def transfer_time(self, volume_bytes: float) -> float:
        """Time to move ``volume_bytes`` over this link (alpha-beta model)."""
        if volume_bytes < 0:
            raise ValueError("volume must be non-negative")
        return self.latency + volume_bytes / self.bandwidth


#: NVLink within a node (~200 GB/s effective unidirectional for A800 NVLink).
DEFAULT_INTRA_ISLAND = InterconnectSpec(bandwidth=200e9, latency=5e-6)
#: 400 Gbps InfiniBand per GPU between nodes (~45 GB/s effective per link).
DEFAULT_INTER_ISLAND = InterconnectSpec(bandwidth=45e9, latency=12e-6)
#: On-device copy between two waves mapped to the same GPU.
DEFAULT_INTRA_DEVICE = InterconnectSpec(bandwidth=1200e9, latency=1e-6)


@dataclass
class ClusterTopology:
    """A homogeneous GPU cluster organised into device islands (nodes).

    Parameters
    ----------
    num_nodes:
        Number of nodes (device islands).
    devices_per_node:
        Number of GPUs per node.
    device_spec:
        Accelerator specification shared by all devices.
    intra_island / inter_island / intra_device:
        Interconnect specifications of the three link classes used by the
        placement pass and the runtime engine.
    """

    num_nodes: int
    devices_per_node: int
    device_spec: DeviceSpec = A800_SPEC
    intra_island: InterconnectSpec = DEFAULT_INTRA_ISLAND
    inter_island: InterconnectSpec = DEFAULT_INTER_ISLAND
    intra_device: InterconnectSpec = DEFAULT_INTRA_DEVICE
    devices: list[Device] = field(init=False)
    _island_groups: list[list[int]] = field(init=False, repr=False)
    _node_ids: list[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise TopologyError("num_nodes must be positive")
        if self.devices_per_node <= 0:
            raise TopologyError("devices_per_node must be positive")
        self.devices = [
            Device(
                device_id=node * self.devices_per_node + local,
                node_id=node,
                local_rank=local,
                spec=self.device_spec,
            )
            for node in range(self.num_nodes)
            for local in range(self.devices_per_node)
        ]
        # The device list is immutable after construction, so the island
        # grouping is built exactly once: the placement pass queries it per
        # (entry, island) and must not pay an O(num_devices) rebuild per call.
        groups: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for dev in self.devices:
            groups[dev.node_id].append(dev.device_id)
        self._island_groups = groups
        self._node_ids = [dev.node_id for dev in self.devices]

    # ------------------------------------------------------------------ sizes
    @property
    def num_devices(self) -> int:
        return self.num_nodes * self.devices_per_node

    @property
    def total_peak_flops(self) -> float:
        return self.num_devices * self.device_spec.peak_flops

    @property
    def total_memory_bytes(self) -> float:
        return self.num_devices * self.device_spec.memory_bytes

    # ---------------------------------------------------------------- lookups
    def device(self, device_id: int) -> Device:
        if not 0 <= device_id < self.num_devices:
            raise TopologyError(
                f"Device id {device_id} out of range [0, {self.num_devices})"
            )
        return self.devices[device_id]

    def island_of(self, device_id: int) -> int:
        """Return the island (node) index that hosts ``device_id``."""
        # Flat lookup table instead of a Device attribute chase: link
        # classification and placement scoring call this per device per
        # candidate, making it the hottest topology query.
        if device_id < 0:
            raise TopologyError(
                f"Device id {device_id} out of range [0, {self.num_devices})"
            )
        try:
            return self._node_ids[device_id]
        except IndexError:
            raise TopologyError(
                f"Device id {device_id} out of range [0, {self.num_devices})"
            ) from None

    def islands(self) -> list[list[int]]:
        """Device ids grouped by island, in island order (copy, safe to edit)."""
        return [list(group) for group in self._island_groups]

    def island_devices(self, island: int) -> list[int]:
        """Device ids of one island (copy of the precomputed group)."""
        if not 0 <= island < self.num_nodes:
            raise TopologyError(f"Island {island} out of range [0, {self.num_nodes})")
        # Copying one island (devices_per_node entries) keeps callers free to
        # mutate the result without corrupting the cached grouping, while
        # avoiding the old per-call rebuild of every island.
        return list(self._island_groups[island])

    def same_island(self, a: int, b: int) -> bool:
        return self.island_of(a) == self.island_of(b)

    # ------------------------------------------------------------------ links
    def link_between(self, src: int, dst: int) -> InterconnectSpec:
        """Interconnect spec of the link class connecting two devices."""
        if src == dst:
            return self.intra_device
        if self.same_island(src, dst):
            return self.intra_island
        return self.inter_island

    def bandwidth_between(self, src: int, dst: int) -> float:
        return self.link_between(src, dst).bandwidth

    def group_bandwidth(self, device_ids: Sequence[int]) -> InterconnectSpec:
        """Effective link spec for a collective over ``device_ids``.

        Collectives inside one island run at NVLink bandwidth.  Collectives
        spanning islands are bottlenecked by the InfiniBand fabric, but every
        GPU drives its own NIC (rail-optimised clusters), so the effective
        cross-island bandwidth of a hierarchical all-reduce scales with the
        number of participating devices per island, capped by the intra-island
        bandwidth.
        """
        ids = list(device_ids)
        if not ids:
            raise TopologyError("Device group must not be empty")
        if len(ids) == 1:
            return self.intra_device
        islands = {self.island_of(d) for d in ids}
        if len(islands) == 1:
            return self.intra_island
        devices_per_island = len(ids) / len(islands)
        effective = min(
            self.intra_island.bandwidth,
            self.inter_island.bandwidth * max(1.0, devices_per_island),
        )
        return InterconnectSpec(
            bandwidth=effective, latency=self.inter_island.latency
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterTopology(nodes={self.num_nodes}, gpus_per_node="
            f"{self.devices_per_node}, device={self.device_spec.name!r})"
        )


def make_cluster(
    num_devices: int,
    devices_per_node: int = 8,
    device_spec: DeviceSpec = A800_SPEC,
) -> ClusterTopology:
    """Build a cluster with ``num_devices`` GPUs packed into 8-GPU nodes.

    Mirrors the paper's experimental clusters: 8, 16, 32, 64 or 256 GPUs in
    nodes of 8.  Clusters smaller than one node become a single island.
    """
    if num_devices <= 0:
        raise TopologyError("num_devices must be positive")
    per_node = min(devices_per_node, num_devices)
    if num_devices % per_node != 0:
        raise TopologyError(
            f"num_devices={num_devices} is not a multiple of devices_per_node={per_node}"
        )
    return ClusterTopology(
        num_nodes=num_devices // per_node,
        devices_per_node=per_node,
        device_spec=device_spec,
    )
