"""Cluster topology: device islands, bandwidths and latencies.

The paper evaluates on an 8-node cluster where every node holds 8 NVLink-
connected A800 GPUs and nodes are interconnected with 400 Gbps InfiniBand
(§5.1).  A *device island* (§3.5) is a set of devices connected by the
high-bandwidth intra-node interconnect; the device placement pass prefers
placing MetaOps and high-volume data flows within one island.

Beyond the paper's homogeneous testbed, the topology also models the
substrates elastic scenarios produce (:mod:`repro.elastic`): islands may carry
*different* device specs (``node_specs``, e.g. a heterogeneous capacity
expansion or a throttled straggler node) and *different* device counts
(``island_sizes``, e.g. a node that lost one GPU).  Homogeneous, rectangular
clusters — the default — behave exactly as before.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.cluster.device import A800_SPEC, Device, DeviceSpec


class TopologyError(Exception):
    """Raised for invalid cluster descriptions or device id lookups."""


@dataclass(frozen=True)
class InterconnectSpec:
    """Bandwidth/latency of one link class, in bytes/s and seconds."""

    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")

    def transfer_time(self, volume_bytes: float) -> float:
        """Time to move ``volume_bytes`` over this link (alpha-beta model)."""
        if volume_bytes < 0:
            raise ValueError("volume must be non-negative")
        return self.latency + volume_bytes / self.bandwidth


#: NVLink within a node (~200 GB/s effective unidirectional for A800 NVLink).
DEFAULT_INTRA_ISLAND = InterconnectSpec(bandwidth=200e9, latency=5e-6)
#: 400 Gbps InfiniBand per GPU between nodes (~45 GB/s effective per link).
DEFAULT_INTER_ISLAND = InterconnectSpec(bandwidth=45e9, latency=12e-6)
#: On-device copy between two waves mapped to the same GPU.
DEFAULT_INTRA_DEVICE = InterconnectSpec(bandwidth=1200e9, latency=1e-6)


def _spec_document(spec: DeviceSpec) -> dict[str, Any]:
    """Canonical JSON document of one device spec."""
    return {
        "name": spec.name,
        "peak_flops": spec.peak_flops,
        "memory_bytes": spec.memory_bytes,
        "achievable_fraction": spec.achievable_fraction,
    }


@dataclass(frozen=True)
class SpecClass:
    """One equivalence class of a cluster's devices under ``DeviceSpec``.

    Devices sharing a spec form a *spec class* (§3.5's device islands
    generalised to mixed hardware): device specs are assigned per island, so a
    class is always a union of whole islands.  The heterogeneity-aware planner
    fits one scaling curve per (MetaOp, spec class), allocates each MetaOp
    devices from a single class, and paces every wave entry on its class's
    sustained throughput instead of the cluster-wide floor.
    """

    index: int
    spec: DeviceSpec
    islands: tuple[int, ...]
    device_ids: tuple[int, ...]

    @property
    def num_devices(self) -> int:
        return len(self.device_ids)

    @property
    def achievable_flops(self) -> float:
        """Sustained FLOP/s of each device in this class (the pacing rate)."""
        return self.spec.achievable_flops

    @property
    def capacity_flops(self) -> float:
        """Aggregate sustained FLOP/s of the whole class."""
        return self.num_devices * self.spec.achievable_flops

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpecClass({self.index}: {self.spec.name!r} x{self.num_devices}, "
            f"islands={list(self.islands)})"
        )


@dataclass
class ClusterTopology:
    """A GPU cluster organised into device islands (nodes).

    Parameters
    ----------
    num_nodes:
        Number of nodes (device islands).
    devices_per_node:
        Number of GPUs per node (nominal; per-island counts may deviate via
        ``island_sizes``).
    device_spec:
        Accelerator specification shared by all devices unless ``node_specs``
        overrides it per island.
    intra_island / inter_island / intra_device:
        Interconnect specifications of the three link classes used by the
        placement pass and the runtime engine.
    island_sizes:
        Optional per-island device counts for irregular clusters (an island
        that lost devices).  Length must equal ``num_nodes``.
    node_specs:
        Optional per-island device specs for heterogeneous clusters.  Length
        must equal ``num_nodes``.

    Topologies are treated as immutable after construction (the planner,
    placement pass and caches all rely on it); elastic scenarios derive a
    *fresh* topology per substrate change instead of mutating one.
    """

    num_nodes: int
    devices_per_node: int
    device_spec: DeviceSpec = A800_SPEC
    intra_island: InterconnectSpec = DEFAULT_INTRA_ISLAND
    inter_island: InterconnectSpec = DEFAULT_INTER_ISLAND
    intra_device: InterconnectSpec = DEFAULT_INTRA_DEVICE
    island_sizes: tuple[int, ...] | None = None
    node_specs: tuple[DeviceSpec, ...] | None = None
    devices: list[Device] = field(init=False)
    _island_groups: list[list[int]] = field(init=False, repr=False)
    _node_ids: list[int] = field(init=False, repr=False)
    _signature: str | None = field(init=False, repr=False, default=None)
    _spec_classes: tuple[SpecClass, ...] | None = field(
        init=False, repr=False, default=None
    )

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise TopologyError("num_nodes must be positive")
        if self.devices_per_node <= 0:
            raise TopologyError("devices_per_node must be positive")
        if self.island_sizes is not None:
            self.island_sizes = tuple(self.island_sizes)
            if len(self.island_sizes) != self.num_nodes:
                raise TopologyError(
                    f"island_sizes has {len(self.island_sizes)} entries, "
                    f"cluster has {self.num_nodes} nodes"
                )
            if any(size <= 0 for size in self.island_sizes):
                raise TopologyError("island_sizes entries must be positive")
        if self.node_specs is not None:
            self.node_specs = tuple(self.node_specs)
            if len(self.node_specs) != self.num_nodes:
                raise TopologyError(
                    f"node_specs has {len(self.node_specs)} entries, "
                    f"cluster has {self.num_nodes} nodes"
                )
        sizes = self.island_sizes or (self.devices_per_node,) * self.num_nodes
        self.devices = []
        for node, size in enumerate(sizes):
            spec = self.node_specs[node] if self.node_specs else self.device_spec
            for local in range(size):
                self.devices.append(
                    Device(
                        device_id=len(self.devices),
                        node_id=node,
                        local_rank=local,
                        spec=spec,
                    )
                )
        # The device list is immutable after construction, so the island
        # grouping is built exactly once: the placement pass queries it per
        # (entry, island) and must not pay an O(num_devices) rebuild per call.
        groups: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for dev in self.devices:
            groups[dev.node_id].append(dev.device_id)
        self._island_groups = groups
        self._node_ids = [dev.node_id for dev in self.devices]

    # ------------------------------------------------------------------ sizes
    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def is_homogeneous(self) -> bool:
        """True when every device carries the same spec."""
        if self.node_specs is None:
            return True
        return all(spec == self.device_spec for spec in self.node_specs)

    @property
    def total_peak_flops(self) -> float:
        if self.node_specs is None:
            return self.num_devices * self.device_spec.peak_flops
        return sum(dev.spec.peak_flops for dev in self.devices)

    @property
    def total_memory_bytes(self) -> float:
        if self.node_specs is None:
            return self.num_devices * self.device_spec.memory_bytes
        return sum(dev.spec.memory_bytes for dev in self.devices)

    @property
    def total_achievable_flops(self) -> float:
        if self.node_specs is None:
            return self.num_devices * self.device_spec.achievable_flops
        return sum(dev.spec.achievable_flops for dev in self.devices)

    @property
    def min_achievable_flops(self) -> float:
        """Sustained FLOP/s of the slowest device.

        Wave entries execute in lockstep across their device group, so a
        conservative planner paces every group on its slowest member; on a
        homogeneous cluster this equals ``device_spec.achievable_flops``.
        """
        if self.node_specs is None:
            return self.device_spec.achievable_flops
        return min(spec.achievable_flops for spec in self.node_specs)

    @property
    def min_memory_bytes(self) -> float:
        """HBM capacity of the smallest device."""
        if self.node_specs is None:
            return self.device_spec.memory_bytes
        return min(spec.memory_bytes for spec in self.node_specs)

    @property
    def max_peak_flops(self) -> float:
        """Peak FLOP/s of the fastest device (utilization-trace normalizer)."""
        if self.node_specs is None:
            return self.device_spec.peak_flops
        return max(spec.peak_flops for spec in self.node_specs)

    # ---------------------------------------------------------------- lookups
    def device(self, device_id: int) -> Device:
        if not 0 <= device_id < self.num_devices:
            raise TopologyError(
                f"Device id {device_id} out of range [0, {self.num_devices})"
            )
        return self.devices[device_id]

    def spec_of(self, device_id: int) -> DeviceSpec:
        """Device spec of one device (per-island on heterogeneous clusters)."""
        return self.device(device_id).spec

    def island_of(self, device_id: int) -> int:
        """Return the island (node) index that hosts ``device_id``."""
        # Flat lookup table instead of a Device attribute chase: link
        # classification and placement scoring call this per device per
        # candidate, making it the hottest topology query.
        if device_id < 0:
            raise TopologyError(
                f"Device id {device_id} out of range [0, {self.num_devices})"
            )
        try:
            return self._node_ids[device_id]
        except IndexError:
            raise TopologyError(
                f"Device id {device_id} out of range [0, {self.num_devices})"
            ) from None

    def islands(self) -> list[list[int]]:
        """Device ids grouped by island, in island order (copy, safe to edit)."""
        return [list(group) for group in self._island_groups]

    def island_devices(self, island: int) -> list[int]:
        """Device ids of one island (copy of the precomputed group)."""
        if not 0 <= island < self.num_nodes:
            raise TopologyError(f"Island {island} out of range [0, {self.num_nodes})")
        # Copying one island (devices_per_node entries) keeps callers free to
        # mutate the result without corrupting the cached grouping, while
        # avoiding the old per-call rebuild of every island.
        return list(self._island_groups[island])

    def same_island(self, a: int, b: int) -> bool:
        return self.island_of(a) == self.island_of(b)

    # ----------------------------------------------------------- spec classes
    def spec_classes(self) -> tuple[SpecClass, ...]:
        """Devices partitioned by :class:`~repro.cluster.device.DeviceSpec`.

        Specs are per-island, so every class is a union of whole islands.  The
        ordering is *stable*: classes are sorted fastest first (descending
        sustained FLOP/s, then descending peak FLOP/s and memory, then spec
        name, then first island index), so the heterogeneity-aware planner's
        "heavy MetaOps onto fast islands" preference is deterministic.  A
        homogeneous cluster collapses to a single class covering everything.

        The partition is a pure function of ``node_specs``/``island_sizes``,
        both of which :meth:`canonical_dict` embeds — so :meth:`signature`
        covers the spec-class structure by construction, and any change to the
        grouping changes the signature.
        """
        if self._spec_classes is None:
            grouped: dict[tuple, tuple[DeviceSpec, list[int]]] = {}
            specs = self.node_specs or (self.device_spec,) * self.num_nodes
            for island, spec in enumerate(specs):
                key = (
                    spec.name,
                    spec.peak_flops,
                    spec.memory_bytes,
                    spec.achievable_fraction,
                )
                if key in grouped:
                    grouped[key][1].append(island)
                else:
                    grouped[key] = (spec, [island])
            ordered = sorted(
                grouped.values(),
                key=lambda entry: (
                    -entry[0].achievable_flops,
                    -entry[0].peak_flops,
                    -entry[0].memory_bytes,
                    entry[0].name,
                    entry[1][0],
                ),
            )
            self._spec_classes = tuple(
                SpecClass(
                    index=index,
                    spec=spec,
                    islands=tuple(islands),
                    device_ids=tuple(
                        device_id
                        for island in islands
                        for device_id in self._island_groups[island]
                    ),
                )
                for index, (spec, islands) in enumerate(ordered)
            )
        return self._spec_classes

    @property
    def num_spec_classes(self) -> int:
        return len(self.spec_classes())

    def spec_class_of_island(self, island: int) -> int:
        """Spec-class index of one island."""
        if not 0 <= island < self.num_nodes:
            raise TopologyError(f"Island {island} out of range [0, {self.num_nodes})")
        for cls in self.spec_classes():
            if island in cls.islands:
                return cls.index
        raise TopologyError(  # pragma: no cover - partition covers all islands
            f"Island {island} belongs to no spec class"
        )

    def spec_class_of(self, device_id: int) -> int:
        """Spec-class index of the island hosting ``device_id``."""
        return self.spec_class_of_island(self.island_of(device_id))

    # ------------------------------------------------------------------ links
    def link_between(self, src: int, dst: int) -> InterconnectSpec:
        """Interconnect spec of the link class connecting two devices."""
        if src == dst:
            return self.intra_device
        if self.same_island(src, dst):
            return self.intra_island
        return self.inter_island

    def bandwidth_between(self, src: int, dst: int) -> float:
        return self.link_between(src, dst).bandwidth

    def group_bandwidth(self, device_ids: Sequence[int]) -> InterconnectSpec:
        """Effective link spec for a collective over ``device_ids``.

        Collectives inside one island run at NVLink bandwidth.  Collectives
        spanning islands are bottlenecked by the InfiniBand fabric, but every
        GPU drives its own NIC (rail-optimised clusters), so the effective
        cross-island bandwidth of a hierarchical all-reduce scales with the
        number of participating devices per island, capped by the intra-island
        bandwidth.
        """
        ids = list(device_ids)
        if not ids:
            raise TopologyError("Device group must not be empty")
        if len(ids) == 1:
            return self.intra_device
        islands = {self.island_of(d) for d in ids}
        if len(islands) == 1:
            return self.intra_island
        devices_per_island = len(ids) / len(islands)
        effective = min(
            self.intra_island.bandwidth,
            self.inter_island.bandwidth * max(1.0, devices_per_island),
        )
        return InterconnectSpec(
            bandwidth=effective, latency=self.inter_island.latency
        )

    # -------------------------------------------------------------- identity
    def canonical_dict(self) -> dict[str, Any]:
        """Canonical JSON document fully describing this topology.

        The planning-service fingerprint embeds it verbatim, and
        :meth:`signature` hashes it: any structural change — island count or
        sizes, a device spec (including its ``achievable_fraction``, which
        straggler events degrade), an interconnect constant — produces a
        different document.
        """

        def link(spec: InterconnectSpec) -> list[float]:
            return [spec.bandwidth, spec.latency]

        sizes = self.island_sizes or (self.devices_per_node,) * self.num_nodes
        # Per-island specs are always materialized so that a uniform cluster
        # described via node_specs and one described via device_spec alone
        # produce identical documents (and therefore identical signatures).
        specs = self.node_specs or (self.device_spec,) * self.num_nodes
        return {
            "num_nodes": self.num_nodes,
            "devices_per_node": self.devices_per_node,
            "island_sizes": list(sizes),
            "device": _spec_document(self.device_spec),
            "node_specs": [_spec_document(spec) for spec in specs],
            "intra_island": link(self.intra_island),
            "inter_island": link(self.inter_island),
            "intra_device": link(self.intra_device),
        }

    def signature(self) -> str:
        """Content hash of :meth:`canonical_dict` (cached; topology is immutable).

        Keys everything that must never survive a substrate change: the
        estimator's fitted-curve cache, curve pools, and the per-topology
        planner map of the elastic runner.  Two independently constructed but
        structurally identical topologies share one signature.
        """
        if self._signature is None:
            payload = json.dumps(
                self.canonical_dict(), sort_keys=True, separators=(",", ":")
            )
            self._signature = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        return self._signature

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterTopology(nodes={self.num_nodes}, gpus_per_node="
            f"{self.devices_per_node}, device={self.device_spec.name!r})"
        )


def make_cluster(
    num_devices: int,
    devices_per_node: int = 8,
    device_spec: DeviceSpec = A800_SPEC,
) -> ClusterTopology:
    """Build a cluster with ``num_devices`` GPUs packed into 8-GPU nodes.

    Mirrors the paper's experimental clusters: 8, 16, 32, 64 or 256 GPUs in
    nodes of 8.  Clusters smaller than one node become a single island.
    """
    if num_devices <= 0:
        raise TopologyError("num_devices must be positive")
    per_node = min(devices_per_node, num_devices)
    if num_devices % per_node != 0:
        raise TopologyError(
            f"num_devices={num_devices} is not a multiple of devices_per_node={per_node}"
        )
    return ClusterTopology(
        num_nodes=num_devices // per_node,
        devices_per_node=per_node,
        device_spec=device_spec,
    )


def make_heterogeneous_cluster(
    node_specs: Sequence[DeviceSpec],
    devices_per_node: int = 8,
    island_sizes: Sequence[int] | None = None,
) -> ClusterTopology:
    """Build a cluster with one island per entry of ``node_specs``.

    ``island_sizes`` optionally gives each island its own device count
    (default: ``devices_per_node`` everywhere).  The first spec doubles as the
    cluster's nominal ``device_spec``.
    """
    specs = tuple(node_specs)
    if not specs:
        raise TopologyError("node_specs must not be empty")
    return ClusterTopology(
        num_nodes=len(specs),
        devices_per_node=devices_per_node,
        device_spec=specs[0],
        island_sizes=tuple(island_sizes) if island_sizes is not None else None,
        node_specs=specs,
    )
