"""Simulated GPU cluster: device specs, topology and interconnects."""

from repro.cluster.device import A800_SPEC, TEST_GPU_SPEC, Device, DeviceSpec
from repro.cluster.topology import (
    DEFAULT_INTER_ISLAND,
    DEFAULT_INTRA_DEVICE,
    DEFAULT_INTRA_ISLAND,
    ClusterTopology,
    InterconnectSpec,
    SpecClass,
    TopologyError,
    make_cluster,
    make_heterogeneous_cluster,
)

__all__ = [
    "A800_SPEC",
    "TEST_GPU_SPEC",
    "ClusterTopology",
    "DEFAULT_INTER_ISLAND",
    "DEFAULT_INTRA_DEVICE",
    "DEFAULT_INTRA_ISLAND",
    "Device",
    "DeviceSpec",
    "InterconnectSpec",
    "SpecClass",
    "TopologyError",
    "make_cluster",
    "make_heterogeneous_cluster",
]
