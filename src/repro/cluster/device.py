"""GPU device specifications used by the simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """Static characteristics of a single accelerator.

    Attributes
    ----------
    name:
        Human readable device name (e.g. ``"A800-80GB"``).
    peak_flops:
        Peak dense fp16 throughput in FLOP/s.
    memory_bytes:
        HBM capacity in bytes.
    achievable_fraction:
        Fraction of peak FLOP/s a well-tuned, fully-occupied transformer kernel
        actually achieves (model FLOPs utilisation ceiling).  The execution time
        model multiplies this by a workload-dependent efficiency factor.
    """

    name: str
    peak_flops: float
    memory_bytes: float
    achievable_fraction: float = 0.55

    def __post_init__(self) -> None:
        if self.peak_flops <= 0:
            raise ValueError("peak_flops must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if not (0.0 < self.achievable_fraction <= 1.0):
            raise ValueError("achievable_fraction must be in (0, 1]")

    @property
    def achievable_flops(self) -> float:
        """Sustained FLOP/s ceiling for large, well-shaped kernels."""
        return self.peak_flops * self.achievable_fraction

    def degraded(self, factor: float) -> "DeviceSpec":
        """This spec with its ``achievable_fraction`` scaled by ``factor``.

        Models a straggler: the silicon is unchanged (``peak_flops`` and
        ``memory_bytes`` stay), but thermal throttling, a failing NVLink lane
        or a noisy neighbour caps the sustained throughput.  ``factor`` is the
        remaining fraction of healthy throughput, in ``(0, 1]``; a factor of
        1.0 returns ``self`` unchanged.
        """
        if not (0.0 < factor <= 1.0):
            raise ValueError("degradation factor must be in (0, 1]")
        if factor == 1.0:
            return self
        return DeviceSpec(
            name=f"{self.name}~{factor:g}",
            peak_flops=self.peak_flops,
            memory_bytes=self.memory_bytes,
            achievable_fraction=self.achievable_fraction * factor,
        )


#: NVIDIA A800 80 GB — the accelerator used in the paper's testbed (§5.1).
A800_SPEC = DeviceSpec(
    name="A800-80GB",
    peak_flops=312e12,
    memory_bytes=80 * 1024**3,
    achievable_fraction=0.55,
)

#: A smaller accelerator useful for unit tests and laptop-scale examples.
TEST_GPU_SPEC = DeviceSpec(
    name="TestGPU-16GB",
    peak_flops=20e12,
    memory_bytes=16 * 1024**3,
    achievable_fraction=0.5,
)


@dataclass(frozen=True)
class Device:
    """A physical device instance placed inside a cluster topology."""

    device_id: int
    node_id: int
    local_rank: int
    spec: DeviceSpec

    def __post_init__(self) -> None:
        if self.device_id < 0 or self.node_id < 0 or self.local_rank < 0:
            raise ValueError("Device ids must be non-negative")

    @property
    def name(self) -> str:
        return f"node{self.node_id}:gpu{self.local_rank}"
