"""The unified event-driven runtime: one loop over workload + cluster events.

:class:`UnifiedRunner` merges the elastic runner's substrate loop
(:mod:`repro.elastic.runner`) with the dynamic runner's task-set machinery
(:mod:`repro.dynamic.workload`): a single ordered event loop consumes a
:class:`~repro.unified.events.UnifiedTimeline` against one shared state —
the :class:`~repro.elastic.view.ElasticClusterView` plus the ordered active
task list.  Per event group (see ``docs/events.md`` for ordering rules) it

1. applies the group's cluster events to the view and derives a snapshot,
2. applies the group's workload events to the active task list,
3. makes one replan decision: capacity loss **or a task-set change** forces a
   replan (the old plan schedules the wrong tasks); otherwise the
   :class:`~repro.elastic.policy.ReplanPolicy` decides,
4. routes replans through per-topology
   :class:`~repro.service.incremental.IncrementalPlanner` instances — with
   ``reuse_levels=True`` in incremental mode, so structurally unchanged
   MetaLevels (or entire plans, on in-place job churn) are adopted instead of
   re-solved — and a shared fingerprint-keyed plan cache,
5. charges the switch with the shared elastic cost models
   (:class:`~repro.elastic.migration.MigrationCostModel`,
   :class:`~repro.elastic.runner.ReplanCostModel`).

**Determinism.** Identical scenarios and seeds produce byte-identical
canonical reports (:meth:`UnifiedRunResult.to_document`): measured planner
wall-clock and reuse tier counters stay out-of-band.  In particular the
report is *mode-independent* — ``incremental=True`` and ``incremental=False``
runs serialize identically, which is the full-replan equivalence reference
the tests pin (PR 3 discipline).  Replan latency lands in the
``elastic.replan_seconds{policy=...}`` histograms either way, which is what
``benchmarks/bench_unified_runtime.py`` gates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.cluster.device import DeviceSpec
from repro.cluster.topology import ClusterTopology
from repro.core.plan import ExecutionPlan
from repro.core.planner import ExecutionPlanner
from repro.dynamic.workload import DynamicWorkloadSchedule
from repro.elastic.events import CAPACITY_LOSS_KINDS, ClusterEvent, EventTimeline
from repro.elastic.migration import MigrationCostModel, MigrationReport
from repro.elastic.policy import ReplanContext, ReplanPolicy, SlowdownThresholdPolicy
from repro.elastic.runner import ElasticTrainingRunner, ReplanCostModel, ReplanRecord
from repro.elastic.view import ElasticClusterView, ElasticSnapshot
from repro.graph.task import SpindleTask
from repro.obs import get_metrics, get_tracer
from repro.runtime.engine import RuntimeEngine
from repro.service.cache import PlanCache
from repro.service.fingerprint import fingerprint_workload
from repro.service.incremental import IncrementalPlanner
from repro.unified.events import (
    PHASE_CHANGE,
    TASK_ARRIVAL,
    TASK_DEPARTURE,
    EventGroup,
    UnifiedTimeline,
    WorkloadEvent,
)


class UnifiedRunError(Exception):
    """Raised for malformed unified scenarios or invalid event streams."""


def apply_workload_events(
    active: Sequence[str],
    events: Sequence[WorkloadEvent],
    pool: Sequence[str] | Mapping[str, Any],
) -> list[str]:
    """Fold workload events over an ordered active-task name list.

    Semantics per kind (deterministic, order-preserving):

    * ``task_arrival`` — names append to the end of the active list, in event
      order; arriving tasks must exist in the pool and not be active.
    * ``task_departure`` — names are removed; the remaining order is
      preserved; departing tasks must be active.
    * ``phase_change`` — the active list is **replaced** by the named tasks in
      the given order (the only kind that can reorder, and therefore the kind
      in-place job churn uses to keep plan structure adoptable).

    Raises :class:`UnifiedRunError` on any violation, including an active set
    that would become empty — the runtime always trains something.
    """
    result = list(active)
    for event in events:
        if event.kind == TASK_ARRIVAL:
            for name in event.task_names:
                if name not in pool:
                    raise UnifiedRunError(f"arrival of unknown task {name!r}")
                if name in result:
                    raise UnifiedRunError(
                        f"arrival of already-active task {name!r}"
                    )
                result.append(name)
        elif event.kind == TASK_DEPARTURE:
            for name in event.task_names:
                if name not in result:
                    raise UnifiedRunError(
                        f"departure of task {name!r}, which is not active"
                    )
                result.remove(name)
        elif event.kind == PHASE_CHANGE:
            unknown = [n for n in event.task_names if n not in pool]
            if unknown:
                raise UnifiedRunError(f"phase change to unknown tasks {unknown}")
            result = list(event.task_names)
        else:  # pragma: no cover - WorkloadEvent validates kinds
            raise UnifiedRunError(f"unhandled workload event kind {event.kind!r}")
        if not result:
            raise UnifiedRunError(
                f"workload event at iteration {event.at_iteration} empties "
                "the active task set"
            )
    return result


@dataclass
class UnifiedScenario:
    """A seeded unified scenario: cluster shape, task pool, one timeline.

    ``task_pool`` holds every task any event may reference;
    ``initial_tasks`` names the (ordered) active set at iteration 0.
    Construction validates the whole event stream up front — unknown names,
    duplicate arrivals, departures of inactive tasks and an emptied active
    set all fail here, not mid-run.
    """

    num_nodes: int
    devices_per_node: int
    device_spec: DeviceSpec
    timeline: UnifiedTimeline
    total_iterations: int
    task_pool: dict[str, SpindleTask]
    initial_tasks: tuple[str, ...]
    name: str = "unified"

    def __post_init__(self) -> None:
        if self.num_nodes <= 0 or self.devices_per_node <= 0:
            raise UnifiedRunError("cluster dimensions must be positive")
        if self.total_iterations <= 0:
            raise UnifiedRunError("total_iterations must be positive")
        if not self.task_pool:
            raise UnifiedRunError("task pool must not be empty")
        if not self.initial_tasks:
            raise UnifiedRunError("initial task set must not be empty")
        unknown = [n for n in self.initial_tasks if n not in self.task_pool]
        if unknown:
            raise UnifiedRunError(f"initial tasks not in pool: {unknown}")
        if len(set(self.initial_tasks)) != len(self.initial_tasks):
            raise UnifiedRunError("initial task names must be unique")
        if self.timeline.last_iteration >= self.total_iterations and len(
            self.timeline
        ):
            raise UnifiedRunError(
                f"events land at/after iteration {self.total_iterations}; "
                "the run never reaches them"
            )
        # Validate the full workload stream once, eagerly.
        active = list(self.initial_tasks)
        for group in self.timeline.grouped_by_iteration():
            active = apply_workload_events(
                active, group.workload_events, self.task_pool
            )

    @classmethod
    def from_dynamic(
        cls,
        schedule: DynamicWorkloadSchedule,
        num_nodes: int,
        devices_per_node: int,
        device_spec: DeviceSpec,
        cluster_events: EventTimeline | None = None,
        name: str = "unified-dynamic",
    ) -> "UnifiedScenario":
        """Lift a dynamic phase schedule into a unified scenario.

        Phase 0 becomes the initial task set; every later boundary of
        :meth:`~repro.dynamic.workload.DynamicWorkloadSchedule.phase_boundaries`
        becomes a ``phase_change`` event at its start iteration.  An optional
        elastic ``cluster_events`` timeline composes substrate change onto the
        same clock — the combination the separate runners could not express.
        """
        if not schedule.phases:
            raise UnifiedRunError("dynamic schedule has no phases")
        timeline = UnifiedTimeline(cluster_events=cluster_events)
        boundaries = schedule.phase_boundaries()
        for start, phase in boundaries[1:]:
            timeline.add_workload(
                WorkloadEvent(
                    PHASE_CHANGE, at_iteration=start, task_names=phase.task_names
                )
            )
        return cls(
            num_nodes=num_nodes,
            devices_per_node=devices_per_node,
            device_spec=device_spec,
            timeline=timeline,
            total_iterations=schedule.total_iterations,
            task_pool=dict(schedule.task_pool),
            initial_tasks=boundaries[0][1].task_names,
            name=name,
        )

    def build_view(self) -> ElasticClusterView:
        return ElasticClusterView(
            num_nodes=self.num_nodes,
            devices_per_node=self.devices_per_node,
            device_spec=self.device_spec,
        )


@dataclass
class UnifiedReplanRecord(ReplanRecord):
    """One planner invocation in the unified loop.

    Extends the elastic :class:`~repro.elastic.runner.ReplanRecord` with the
    incremental-reuse counter.  ``levels_reused`` is **out-of-band** — it is
    excluded from :meth:`to_document` (inherited unchanged), because canonical
    reports must be byte-identical between incremental and full-replan modes;
    read it from the result object when asserting reuse behaviour.
    """

    levels_reused: int = 0


@dataclass
class UnifiedEventOutcome:
    """What happened at one event group of the unified timeline."""

    iteration: int
    cluster_events: tuple[ClusterEvent, ...]
    workload_events: tuple[WorkloadEvent, ...]
    forced: bool
    task_set_changed: bool
    replanned: bool
    estimated_slowdown: float
    stay_slowdown: float
    num_devices: int
    active_tasks: tuple[str, ...]
    topology_signature: str
    #: Canonical fingerprint of the plan active after this group (set on
    #: replans).  Derived purely from (tasks, topology, planner config), so it
    #: is identical across incremental and full-replan modes — which the
    #: equivalence tests assert outcome by outcome.
    plan_fingerprint: str | None = None
    replan: UnifiedReplanRecord | None = None
    migration: MigrationReport | None = None

    @property
    def overhead_seconds(self) -> float:
        """Replan + migration seconds charged at this event group."""
        seconds = 0.0
        if self.replan is not None:
            seconds += self.replan.charged_seconds
        if self.migration is not None:
            seconds += self.migration.total_seconds
        return seconds

    def to_document(self) -> dict[str, Any]:
        return {
            "iteration": self.iteration,
            "cluster_events": [e.to_document() for e in self.cluster_events],
            "workload_events": [e.to_document() for e in self.workload_events],
            "forced": self.forced,
            "task_set_changed": self.task_set_changed,
            "replanned": self.replanned,
            "estimated_slowdown": self.estimated_slowdown,
            "stay_slowdown": self.stay_slowdown,
            "num_devices": self.num_devices,
            "active_tasks": list(self.active_tasks),
            "topology_signature": self.topology_signature[:12],
            "plan_fingerprint": self.plan_fingerprint,
            "replan": self.replan.to_document() if self.replan else None,
            "migration": self.migration.to_document() if self.migration else None,
        }


@dataclass
class UnifiedSegment:
    """A contiguous stretch of iterations under one plan, substrate, task set."""

    start_iteration: int
    num_iterations: int
    iteration_seconds: float

    @property
    def seconds(self) -> float:
        return self.iteration_seconds * self.num_iterations

    def to_document(self) -> dict[str, Any]:
        return {
            "start_iteration": self.start_iteration,
            "num_iterations": self.num_iterations,
            "iteration_seconds": self.iteration_seconds,
            "seconds": self.seconds,
        }


@dataclass
class UnifiedRunResult:
    """Cumulative-training-time record of one unified run.

    ``baseline_iteration_seconds`` is the initial plan's simulated iteration
    time — the rate of a hypothetical run where neither the substrate nor the
    task set ever changes; ``cumulative_slowdown`` compares against it.
    ``mode`` records which planner path produced the plans and is excluded
    from :meth:`to_document`, whose output is identical across modes.
    """

    scenario_name: str
    policy: str
    mode: str
    total_iterations: int
    baseline_iteration_seconds: float
    segments: list[UnifiedSegment] = field(default_factory=list)
    outcomes: list[UnifiedEventOutcome] = field(default_factory=list)
    initial_plan: UnifiedReplanRecord | None = None

    # -------------------------------------------------------------- totals
    @property
    def baseline_seconds(self) -> float:
        return self.baseline_iteration_seconds * self.total_iterations

    @property
    def training_seconds(self) -> float:
        return sum(segment.seconds for segment in self.segments)

    @property
    def overhead_seconds(self) -> float:
        return sum(outcome.overhead_seconds for outcome in self.outcomes)

    @property
    def total_seconds(self) -> float:
        return self.training_seconds + self.overhead_seconds

    @property
    def cumulative_slowdown(self) -> float:
        return self.total_seconds / self.baseline_seconds

    @property
    def replan_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.replanned)

    @property
    def cache_hits(self) -> int:
        return sum(
            1
            for outcome in self.outcomes
            if outcome.replan is not None and outcome.replan.cache_hit
        )

    @property
    def task_set_changes(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.task_set_changed)

    @property
    def migration_seconds(self) -> float:
        return sum(
            outcome.migration.total_seconds
            for outcome in self.outcomes
            if outcome.migration is not None
        )

    @property
    def replan_charged_seconds(self) -> float:
        return sum(
            outcome.replan.charged_seconds
            for outcome in self.outcomes
            if outcome.replan is not None
        )

    @property
    def replan_measured_seconds(self) -> float:
        """Measured planner wall-clock (out-of-band; machine-dependent)."""
        return sum(
            outcome.replan.measured_seconds
            for outcome in self.outcomes
            if outcome.replan is not None
        )

    @property
    def levels_reused(self) -> int:
        """MetaLevel allocations adopted across all replans (out-of-band)."""
        total = 0
        for outcome in self.outcomes:
            if outcome.replan is not None:
                total += outcome.replan.levels_reused
        return total

    def to_document(self) -> dict[str, Any]:
        """Canonical, deterministic report: byte-identical for equal seeds
        *and* equal across incremental/full planner modes.

        Measured wall-clock, reuse tier counters (``levels_reused``) and
        ``mode`` are deliberately absent — they describe how fast planning
        was, never what was planned.
        """
        return {
            "scenario": self.scenario_name,
            "policy": self.policy,
            "total_iterations": self.total_iterations,
            "baseline_seconds": self.baseline_seconds,
            "training_seconds": self.training_seconds,
            "overhead_seconds": self.overhead_seconds,
            "total_seconds": self.total_seconds,
            "cumulative_slowdown": self.cumulative_slowdown,
            "replan_count": self.replan_count,
            "cache_hits": self.cache_hits,
            "task_set_changes": self.task_set_changes,
            "migration_seconds": self.migration_seconds,
            "replan_charged_seconds": self.replan_charged_seconds,
            "initial_plan": (
                self.initial_plan.to_document() if self.initial_plan else None
            ),
            "segments": [segment.to_document() for segment in self.segments],
            "events": [outcome.to_document() for outcome in self.outcomes],
        }


PlannerFactory = Callable[[ClusterTopology], ExecutionPlanner]


class UnifiedRunner:
    """Runs one unified scenario, replanning on substrate *or* task change.

    Parameters
    ----------
    scenario:
        Cluster shape, task pool and the unified event timeline.
    policy:
        Replan policy for non-forced groups (default: 10% slowdown
        threshold).  Capacity-loss cluster events and any task-set change
        bypass it.
    migration_model / replan_cost_model:
        The elastic cost models, shared so unified and elastic reports charge
        identical figures for identical switches.
    planner_factory:
        Builds the :class:`ExecutionPlanner` for a derived topology; one
        :class:`IncrementalPlanner` wraps each distinct topology signature.
    plan_cache:
        Fingerprint-keyed cache shared across all topologies of the run.
        Because fingerprints are naming-insensitive, a phase change back to a
        structurally known task set re-serves its plan without planning.
    incremental:
        ``True`` (default) plans with ``reuse_levels`` — structurally
        unchanged MetaLevels/plans are adopted.  ``False`` is the retained
        full-replan reference: same plans, same canonical report, more
        planner wall-clock.  The equivalence tests run every scenario in both
        modes and require identical fingerprints and documents.
    """

    def __init__(
        self,
        scenario: UnifiedScenario,
        policy: ReplanPolicy | None = None,
        migration_model: MigrationCostModel | None = None,
        replan_cost_model: ReplanCostModel | None = None,
        planner_factory: PlannerFactory | None = None,
        plan_cache: PlanCache | None = None,
        incremental: bool = True,
    ) -> None:
        self.scenario = scenario
        self.policy = policy or SlowdownThresholdPolicy()
        self.migration_model = migration_model or MigrationCostModel()
        self.replan_cost_model = replan_cost_model or ReplanCostModel()
        self.planner_factory = planner_factory or (
            lambda cluster: ExecutionPlanner(cluster)
        )
        self.plan_cache = plan_cache or PlanCache(capacity=64)
        self.incremental = incremental
        self._planners: dict[str, IncrementalPlanner] = {}

    # ------------------------------------------------------------- public API
    def run(self) -> UnifiedRunResult:
        """Execute the scenario; deterministic for identical inputs."""
        scenario = self.scenario
        view = scenario.build_view()
        snapshot = view.snapshot()
        active = list(scenario.initial_tasks)
        plan, initial_record = self._plan(active, snapshot)
        iteration_seconds = self._iteration_seconds(plan)

        result = UnifiedRunResult(
            scenario_name=scenario.name,
            policy=self.policy.describe(),
            mode="incremental" if self.incremental else "full",
            total_iterations=scenario.total_iterations,
            baseline_iteration_seconds=iteration_seconds,
            initial_plan=initial_record,
        )

        cursor = 0
        stay_slowdown = 1.0
        pending_groups = 0
        last_replan_iteration = 0
        plan_snapshot = snapshot

        tracer = get_tracer()
        for group in scenario.timeline.grouped_by_iteration():
            self._append_segment(
                result, cursor, group.at_iteration, iteration_seconds * stay_slowdown
            )
            cursor = max(cursor, group.at_iteration)

            with tracer.span(
                "unified.event_group",
                category="unified",
                iteration=group.at_iteration,
                num_events=group.num_events,
            ) as group_span:
                # Ordering rule: substrate first, then workload — an arrival
                # composed with an outage plans against the degraded cluster.
                view.apply_all(group.cluster_events)
                new_snapshot = view.snapshot()
                new_active = apply_workload_events(
                    active, group.workload_events, scenario.task_pool
                )
                task_set_changed = tuple(new_active) != tuple(active)
                active = new_active
                pending_groups += 1
                forced = task_set_changed or any(
                    event.kind in CAPACITY_LOSS_KINDS
                    for event in group.cluster_events
                )
                stay = ElasticTrainingRunner._stay_slowdown(
                    plan_snapshot, new_snapshot
                )
                context = ReplanContext(
                    events=group.cluster_events,
                    old_topology=plan_snapshot.topology,
                    new_topology=new_snapshot.topology,
                    pending_groups=pending_groups,
                    iterations_since_replan=cursor - last_replan_iteration,
                    stay_slowdown=stay,
                )
                replanned = forced or self.policy.should_replan(context)
                group_span.set(
                    forced=forced,
                    replanned=replanned,
                    task_set_changed=task_set_changed,
                )
                outcome = UnifiedEventOutcome(
                    iteration=group.at_iteration,
                    cluster_events=group.cluster_events,
                    workload_events=group.workload_events,
                    forced=forced,
                    task_set_changed=task_set_changed,
                    replanned=replanned,
                    estimated_slowdown=context.estimated_slowdown,
                    stay_slowdown=1.0,
                    num_devices=new_snapshot.topology.num_devices,
                    active_tasks=tuple(active),
                    topology_signature=new_snapshot.signature,
                )
                if replanned:
                    new_plan, record = self._plan(active, new_snapshot)
                    outcome.replan = record
                    outcome.plan_fingerprint = new_plan.fingerprint
                    new_iteration_seconds = self._iteration_seconds(new_plan)
                    with tracer.span("unified.migration", category="unified"):
                        # Stable parameter-group keys make the diff well-
                        # defined across task-set changes: groups only the
                        # new plan holds restore from the checkpoint store,
                        # groups only the old plan held simply cease.
                        outcome.migration = self.migration_model.assess(
                            plan,
                            plan_snapshot,
                            new_plan,
                            new_snapshot,
                            at_iteration=group.at_iteration,
                            iteration_seconds=new_iteration_seconds,
                        )
                    plan = new_plan
                    plan_snapshot = new_snapshot
                    iteration_seconds = new_iteration_seconds
                    stay_slowdown = 1.0
                    pending_groups = 0
                    last_replan_iteration = cursor
                else:
                    stay_slowdown = stay
                    outcome.stay_slowdown = stay_slowdown
                result.outcomes.append(outcome)

        self._append_segment(
            result,
            cursor,
            scenario.total_iterations,
            iteration_seconds * stay_slowdown,
        )
        return result

    # -------------------------------------------------------------- internals
    def _planner_for(self, topology: ClusterTopology) -> IncrementalPlanner:
        signature = topology.signature()
        incremental = self._planners.get(signature)
        if incremental is None:
            incremental = IncrementalPlanner(
                self.planner_factory(topology), reuse_levels=self.incremental
            )
            self._planners[signature] = incremental
        return incremental

    def _plan(
        self, active: Sequence[str], snapshot: ElasticSnapshot
    ) -> tuple[ExecutionPlan, UnifiedReplanRecord]:
        """Plan the active task set on the snapshot's topology.

        Mirrors the elastic runner's planning path — shared plan cache keyed
        by canonical fingerprint, per-topology incremental planners, the
        ``elastic.replan_seconds{policy=...}`` histogram and
        ``elastic.replans{outcome=...}`` counters — so elastic and unified
        replans share one metric schema (see ``docs/observability.md``).
        """
        tasks = [self.scenario.task_pool[name] for name in active]
        incremental = self._planner_for(snapshot.topology)
        fingerprint = fingerprint_workload(
            tasks, incremental.planner.cluster, incremental.planner.config_signature()
        )
        cached = self.plan_cache.get(fingerprint)
        if cached is not None:
            get_metrics().inc("elastic.replans", outcome="cache_hit")
            return cached, self._cache_hit_record(cached)
        before_levels = incremental.stats.levels_reused
        with get_tracer().timed(
            "unified.replan", category="unified", policy=self.policy.describe()
        ) as span:
            plan = incremental.plan(tasks, fingerprint=fingerprint)
        measured = span.seconds
        metrics = get_metrics()
        metrics.observe(
            "elastic.replan_seconds", measured, policy=self.policy.describe()
        )
        metrics.inc("elastic.replans", outcome="planned")
        self.plan_cache.put(fingerprint, plan)
        reused = plan.report.reused_curves
        estimated = plan.report.num_metaops - reused
        return plan, UnifiedReplanRecord(
            charged_seconds=self.replan_cost_model.charge(
                plan.report.num_metaops, estimated, cache_hit=False
            ),
            measured_seconds=measured,
            cache_hit=False,
            num_metaops=plan.report.num_metaops,
            curves_reused=reused,
            curves_estimated=estimated,
            levels_reused=incremental.stats.levels_reused - before_levels,
        )

    def _cache_hit_record(self, plan: ExecutionPlan) -> UnifiedReplanRecord:
        return UnifiedReplanRecord(
            charged_seconds=self.replan_cost_model.charge(
                plan.report.num_metaops, 0, cache_hit=True
            ),
            measured_seconds=0.0,
            cache_hit=True,
            num_metaops=plan.report.num_metaops,
            curves_reused=plan.report.num_metaops,
            curves_estimated=0,
        )

    @staticmethod
    def _iteration_seconds(plan: ExecutionPlan) -> float:
        return RuntimeEngine(plan).run_iteration().iteration_time

    @staticmethod
    def _append_segment(
        result: UnifiedRunResult,
        start: int,
        end: int,
        iteration_seconds: float,
    ) -> None:
        if end > start:
            result.segments.append(
                UnifiedSegment(
                    start_iteration=start,
                    num_iterations=end - start,
                    iteration_seconds=iteration_seconds,
                )
            )


__all__ = [
    "EventGroup",
    "UnifiedEventOutcome",
    "UnifiedReplanRecord",
    "UnifiedRunError",
    "UnifiedRunResult",
    "UnifiedRunner",
    "UnifiedScenario",
    "UnifiedSegment",
    "apply_workload_events",
]
