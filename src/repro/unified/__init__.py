"""Unified event-driven runtime: workload and cluster events on one timeline.

Merges the elastic substrate loop and the dynamic-workload phase machinery
into a single event-driven runner with incremental replanning.  See
``docs/architecture.md`` for how this package sits on top of ``elastic/`` and
``dynamic/``, and ``docs/events.md`` for the event model and its ordering
rules.
"""

from repro.unified.events import (
    PHASE_CHANGE,
    TASK_ARRIVAL,
    TASK_DEPARTURE,
    WORKLOAD_EVENT_KINDS,
    EventGroup,
    UnifiedEventError,
    UnifiedTimeline,
    WorkloadEvent,
    arrival_during_outage_timeline,
    flash_crowd_on_degraded_timeline,
    job_churn_timeline,
)
from repro.unified.runtime import (
    UnifiedEventOutcome,
    UnifiedReplanRecord,
    UnifiedRunError,
    UnifiedRunResult,
    UnifiedRunner,
    UnifiedScenario,
    UnifiedSegment,
    apply_workload_events,
)

__all__ = [
    "PHASE_CHANGE",
    "TASK_ARRIVAL",
    "TASK_DEPARTURE",
    "WORKLOAD_EVENT_KINDS",
    "EventGroup",
    "UnifiedEventError",
    "UnifiedEventOutcome",
    "UnifiedReplanRecord",
    "UnifiedRunError",
    "UnifiedRunResult",
    "UnifiedRunner",
    "UnifiedScenario",
    "UnifiedSegment",
    "UnifiedTimeline",
    "WorkloadEvent",
    "apply_workload_events",
    "arrival_during_outage_timeline",
    "flash_crowd_on_degraded_timeline",
    "job_churn_timeline",
]
