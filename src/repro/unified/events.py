"""The unified event model: workload and cluster changes on one timeline.

The elastic subsystem (:mod:`repro.elastic.events`) models *substrate* change
— devices fail, nodes join, stragglers throttle — while the dynamic-workload
subsystem (:mod:`repro.dynamic.workload`) models *task-set* change through
phase schedules.  The unified runtime merges the two: a
:class:`UnifiedTimeline` carries both :class:`~repro.elastic.events.ClusterEvent`
and :class:`WorkloadEvent` entries, and the runner consumes them as one
ordered stream of instantaneous events applied to one shared state (the
operational-semantics framing of PAPERS.md: every entry executes atomically
against the ⟨cluster view, active task list⟩ state).

Ordering and tie-break rules (pinned by tests, documented in
``docs/events.md``):

1. Event groups are ordered by ``at_iteration`` ascending.
2. All events landing at one iteration form a **single group** — the runner
   makes one replan decision per group, never one per event.
3. Within a group, **cluster events apply before workload events** ("substrate
   first, then workload"): an arrival at the iteration of an island outage
   plans against the degraded cluster, which is the composed scenario this
   package exists to express.
4. Within each of the two halves, insertion order is preserved (stable sort),
   matching :class:`~repro.elastic.events.EventTimeline` semantics.

All generators are deterministic: identical arguments (including ``seed``)
produce identical timelines, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.cluster.device import DeviceSpec
from repro.elastic.events import (
    ClusterEvent,
    EventTimeline,
    flash_crowd_timeline,
    island_outage_timeline,
    rolling_straggler_timeline,
)


class UnifiedEventError(Exception):
    """Raised for malformed workload events or timelines."""


# --------------------------------------------------------------- event kinds
#: One or more tasks join the active set (appended in event order).
TASK_ARRIVAL = "task_arrival"
#: One or more active tasks leave (remaining order preserved).
TASK_DEPARTURE = "task_departure"
#: The active set is replaced wholesale by the named tasks, in the given
#: order.  This is the dynamic-workload phase transition, and the only kind
#: that can *reorder* the active list — which matters for incremental
#: replanning, because structural plan reuse is order-sensitive.
PHASE_CHANGE = "phase_change"

WORKLOAD_EVENT_KINDS = (TASK_ARRIVAL, TASK_DEPARTURE, PHASE_CHANGE)


@dataclass(frozen=True)
class WorkloadEvent:
    """One instantaneous change to the active task set.

    ``task_names`` reference tasks in the scenario's task pool; semantics per
    kind are documented on the kind constants.  Events are value objects —
    deterministic, hashable, and serialized verbatim into canonical run
    reports via :meth:`to_document`.
    """

    kind: str
    at_iteration: int
    task_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_EVENT_KINDS:
            raise UnifiedEventError(
                f"Unknown workload event kind {self.kind!r}; "
                f"expected one of {WORKLOAD_EVENT_KINDS}"
            )
        if self.at_iteration < 0:
            raise UnifiedEventError("at_iteration must be non-negative")
        if not self.task_names:
            raise UnifiedEventError(f"{self.kind} event names no tasks")
        if len(set(self.task_names)) != len(self.task_names):
            raise UnifiedEventError(
                f"{self.kind} event names duplicate tasks: {self.task_names}"
            )

    def describe(self) -> str:
        names = ", ".join(self.task_names)
        return f"@{self.at_iteration} {self.kind}: {names}"

    def to_document(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "at_iteration": self.at_iteration,
            "task_names": list(self.task_names),
        }


@dataclass(frozen=True)
class EventGroup:
    """All events of one iteration, split into their two halves.

    The runner applies ``cluster_events`` (in order) to the cluster view
    first, then ``workload_events`` (in order) to the active task list, then
    makes exactly one replan decision for the group.
    """

    at_iteration: int
    cluster_events: tuple[ClusterEvent, ...]
    workload_events: tuple[WorkloadEvent, ...]

    @property
    def num_events(self) -> int:
        return len(self.cluster_events) + len(self.workload_events)


class UnifiedTimeline:
    """An ordered stream of cluster and workload events.

    Internally keeps the two event classes in their native containers (the
    elastic :class:`EventTimeline` for cluster events, a stably sorted list
    for workload events) and merges them per iteration on demand — the
    ordering rules in the module docstring fall out of that representation.
    """

    def __init__(
        self,
        cluster_events: EventTimeline | None = None,
        workload_events: Sequence[WorkloadEvent] = (),
    ) -> None:
        self.cluster_events = cluster_events or EventTimeline()
        self._workload_events: list[WorkloadEvent] = []
        for event in workload_events:
            self.add_workload(event)

    # ------------------------------------------------------------ mutation
    def add_cluster(self, event: ClusterEvent) -> None:
        """Insert one cluster event (stable within its iteration)."""
        self.cluster_events.add(event)

    def add_workload(self, event: WorkloadEvent) -> None:
        """Insert one workload event (stable within its iteration)."""
        index = len(self._workload_events)
        while index > 0 and (
            self._workload_events[index - 1].at_iteration > event.at_iteration
        ):
            index -= 1
        self._workload_events.insert(index, event)

    def extend(self, other: "UnifiedTimeline") -> "UnifiedTimeline":
        """Merge ``other``'s events into this timeline (returns ``self``)."""
        for event in other.cluster_events:
            self.add_cluster(event)
        for event in other.workload_events:
            self.add_workload(event)
        return self

    # ----------------------------------------------------------- inspection
    @property
    def workload_events(self) -> tuple[WorkloadEvent, ...]:
        return tuple(self._workload_events)

    def __len__(self) -> int:
        return len(self.cluster_events) + len(self._workload_events)

    def __iter__(self) -> Iterator[EventGroup]:
        return iter(self.grouped_by_iteration())

    @property
    def last_iteration(self) -> int:
        """Iteration of the final event (0 on an empty timeline)."""
        last = 0
        for event in self.cluster_events:
            last = max(last, event.at_iteration)
        for event in self._workload_events:
            last = max(last, event.at_iteration)
        return last

    def grouped_by_iteration(self) -> list[EventGroup]:
        """One :class:`EventGroup` per distinct iteration, ascending."""
        cluster: dict[int, list[ClusterEvent]] = {}
        for event in self.cluster_events:
            cluster.setdefault(event.at_iteration, []).append(event)
        workload: dict[int, list[WorkloadEvent]] = {}
        for event in self._workload_events:
            workload.setdefault(event.at_iteration, []).append(event)
        groups = []
        for at_iteration in sorted(set(cluster) | set(workload)):
            groups.append(
                EventGroup(
                    at_iteration=at_iteration,
                    cluster_events=tuple(cluster.get(at_iteration, ())),
                    workload_events=tuple(workload.get(at_iteration, ())),
                )
            )
        return groups

    def to_document(self) -> dict[str, Any]:
        """Deterministic serialization (canonical-report embedding)."""
        return {
            "cluster_events": [e.to_document() for e in self.cluster_events],
            "workload_events": [e.to_document() for e in self._workload_events],
        }


# ------------------------------------------------- composed scenario builders
def arrival_during_outage_timeline(
    arriving_tasks: Sequence[str],
    outage_node: int,
    devices_per_node: int,
    at_iteration: int,
    recovery_at: int | None = None,
) -> UnifiedTimeline:
    """A job arrives in the same iteration an island goes dark.

    The tie-break rule makes the composition well-defined: the outage applies
    first, so the arrival is planned against the degraded cluster.  With
    ``recovery_at`` the island heals later, exercising the plan cache on the
    healed substrate with the *new* task set.
    """
    timeline = UnifiedTimeline(
        cluster_events=island_outage_timeline(
            node=outage_node,
            devices_per_node=devices_per_node,
            at_iteration=at_iteration,
            recovery_at=recovery_at,
        )
    )
    timeline.add_workload(
        WorkloadEvent(TASK_ARRIVAL, at_iteration=at_iteration, task_names=tuple(arriving_tasks))
    )
    return timeline


def flash_crowd_on_degraded_timeline(
    arriving_tasks: Sequence[str],
    num_new_nodes: int,
    devices_per_node: int,
    spec: DeviceSpec,
    num_nodes: int,
    total_iterations: int,
    straggler_episodes: int = 2,
    seed: int = 0,
    arrival_iteration: int | None = None,
    crowd_iteration: int | None = None,
) -> UnifiedTimeline:
    """A task flash crowd lands on a cluster already limping on stragglers.

    Rolling straggler episodes degrade the substrate from iteration 0; at
    ``crowd_iteration`` (default: 40% through the run) ``num_new_nodes`` join,
    and at ``arrival_iteration`` (default: the same iteration) the new tasks
    arrive — capacity and demand spike together, on a degraded base.
    """
    if crowd_iteration is None:
        crowd_iteration = max(1, (total_iterations * 2) // 5)
    if arrival_iteration is None:
        arrival_iteration = crowd_iteration
    timeline = UnifiedTimeline(
        cluster_events=rolling_straggler_timeline(
            num_nodes=num_nodes,
            total_iterations=total_iterations,
            num_episodes=straggler_episodes,
            seed=seed,
        )
    )
    for event in flash_crowd_timeline(
        at_iteration=crowd_iteration,
        num_new_nodes=num_new_nodes,
        devices_per_node=devices_per_node,
        spec=spec,
    ):
        timeline.add_cluster(event)
    timeline.add_workload(
        WorkloadEvent(
            TASK_ARRIVAL,
            at_iteration=arrival_iteration,
            task_names=tuple(arriving_tasks),
        )
    )
    return timeline


def job_churn_timeline(
    active_tasks: Sequence[str],
    replacements: Sequence[tuple[str, str]],
    at_iterations: Sequence[int],
) -> UnifiedTimeline:
    """Jobs resubmitted in place: each churn swaps one active task for another.

    Each ``(old_name, new_name)`` pair at the matching iteration emits a
    :data:`PHASE_CHANGE` event carrying the *full* active list with the old
    task replaced **in position**.  In-place replacement (rather than a
    departure + appended arrival) preserves the task order, which is what
    lets incremental replanning adopt the previous plan's structure wholesale
    when the replacement job is architecturally identical.
    """
    if len(replacements) != len(at_iterations):
        raise UnifiedEventError("replacements and at_iterations must align")
    active = list(active_tasks)
    timeline = UnifiedTimeline()
    for (old_name, new_name), at_iteration in zip(replacements, at_iterations):
        if old_name not in active:
            raise UnifiedEventError(
                f"churn replaces {old_name!r}, which is not active at that point"
            )
        active[active.index(old_name)] = new_name
        timeline.add_workload(
            WorkloadEvent(
                PHASE_CHANGE, at_iteration=at_iteration, task_names=tuple(active)
            )
        )
    return timeline
