"""Elastic training runs: failure injection, replanning, migration accounting.

:class:`ElasticTrainingRunner` mirrors the dynamic-workload runner
(:mod:`repro.dynamic.workload`) but varies the *substrate* instead of the task
set: a fixed multi-task workload trains for ``total_iterations`` while an
:class:`~repro.elastic.events.EventTimeline` fails, recovers, adds, removes
and throttles devices underneath it.  Per event group the runner

1. applies the events to the :class:`~repro.elastic.view.ElasticClusterView`
   and derives a fresh topology snapshot,
2. asks the :class:`~repro.elastic.policy.ReplanPolicy` whether to replan
   (capacity-loss events bypass the policy — the old plan references devices
   that no longer exist),
3. on replan, routes the request through a per-topology
   :class:`~repro.service.incremental.IncrementalPlanner` and a shared
   fingerprint-keyed :class:`~repro.service.cache.PlanCache`, so curve pools
   warm per substrate and *recurring* substrates (a failure that heals) are
   served from cache without planning at all,
4. charges the switch with the :class:`~repro.elastic.migration.MigrationCostModel`
   and a deterministic :class:`ReplanCostModel` (wall-clock planner time is
   recorded separately and never enters the canonical report, which must be
   byte-identical for identical seeds).

Without a replan, training continues on the old plan: a degraded substrate
multiplies the iteration time by the pacing ratio of the devices the plan
runs on (a straggler throttling its node to 50% doubles it), while added
capacity simply idles.

The result is a cumulative-training-time curve with per-event replan and
migration overhead breakdowns, compared against the same workload's
no-failure run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.cluster.device import DeviceSpec
from repro.cluster.topology import ClusterTopology
from repro.core.plan import ExecutionPlan
from repro.core.planner import ExecutionPlanner
from repro.elastic.events import CAPACITY_LOSS_KINDS, ClusterEvent, EventTimeline
from repro.elastic.migration import MigrationCostModel, MigrationReport
from repro.elastic.policy import ReplanContext, ReplanPolicy, SlowdownThresholdPolicy
from repro.elastic.view import ElasticClusterView, ElasticSnapshot
from repro.graph.task import SpindleTask
from repro.obs import get_metrics, get_tracer
from repro.runtime.engine import RuntimeEngine
from repro.service.cache import PlanCache
from repro.service.fingerprint import fingerprint_workload
from repro.service.incremental import IncrementalPlanner
from repro.service.server import PlanServicePool, ServiceError


class ElasticRunError(Exception):
    """Raised for malformed elastic scenarios."""


@dataclass(frozen=True)
class ReplanCostModel:
    """Deterministic model of planner wall-clock, charged to the timeline.

    Measured planner time is machine- and run-dependent; charging it would
    make elastic reports non-reproducible.  This model charges a calibrated
    figure instead — loosely fitted to the Fig. 12 planner-cost measurements
    after the PR-3 optimisations (dominated by profiling MetaOps the curve
    pool has not seen) — and the measured time is reported out-of-band.
    """

    #: Fixed planning overhead per replan (contraction, allocation, placement).
    base_seconds: float = 0.05
    #: Profiling + fitting one scaling curve the pool could not supply.
    seconds_per_profiled_curve: float = 0.02
    #: Allocation/scheduling/placement share per MetaOp.
    seconds_per_metaop: float = 0.002
    #: Serving a recurring topology straight from the plan cache.
    cached_plan_seconds: float = 0.005

    def charge(
        self, num_metaops: int, curves_estimated: int, cache_hit: bool
    ) -> float:
        if cache_hit:
            return self.cached_plan_seconds
        return (
            self.base_seconds
            + self.seconds_per_profiled_curve * curves_estimated
            + self.seconds_per_metaop * num_metaops
        )


@dataclass
class ElasticScenario:
    """A seeded elastic training scenario: initial cluster + event timeline."""

    num_nodes: int
    devices_per_node: int
    device_spec: DeviceSpec
    timeline: EventTimeline
    total_iterations: int
    name: str = "elastic"

    def __post_init__(self) -> None:
        if self.num_nodes <= 0 or self.devices_per_node <= 0:
            raise ElasticRunError("cluster dimensions must be positive")
        if self.total_iterations <= 0:
            raise ElasticRunError("total_iterations must be positive")
        beyond = [
            e for e in self.timeline if e.at_iteration >= self.total_iterations
        ]
        if beyond:
            raise ElasticRunError(
                f"{len(beyond)} events land at/after iteration "
                f"{self.total_iterations}; the run never reaches them"
            )

    def build_view(self) -> ElasticClusterView:
        return ElasticClusterView(
            num_nodes=self.num_nodes,
            devices_per_node=self.devices_per_node,
            device_spec=self.device_spec,
        )


@dataclass
class ReplanRecord:
    """Bookkeeping of one planner invocation (initial plan or event replan).

    ``charged_seconds`` is the deterministic :class:`ReplanCostModel` figure
    that enters the timeline and the canonical report; ``measured_seconds``
    is actual planner wall-clock, reported out-of-band only (excluded from
    :meth:`to_document` so identical seeds stay byte-identical).  All times
    are seconds.
    """

    charged_seconds: float
    measured_seconds: float
    cache_hit: bool
    num_metaops: int
    curves_reused: int
    curves_estimated: int
    #: Measured per-stage planner seconds (display only; never serialized).
    stage_seconds: dict[str, float] = field(default_factory=dict)

    def to_document(self) -> dict[str, Any]:
        return {
            "charged_seconds": self.charged_seconds,
            "cache_hit": self.cache_hit,
            "num_metaops": self.num_metaops,
            "curves_reused": self.curves_reused,
            "curves_estimated": self.curves_estimated,
        }


@dataclass
class EventOutcome:
    """What happened at one event group of the timeline.

    ``estimated_slowdown``/``stay_slowdown`` are dimensionless factors
    (≥ 1 means slower than the healthy baseline); the serialized document
    truncates ``topology_signature`` to 12 hex characters for readability.
    Every field is a pure function of the seeded scenario, so documents are
    byte-identical across runs and machines.
    """

    iteration: int
    events: tuple[ClusterEvent, ...]
    forced: bool
    replanned: bool
    estimated_slowdown: float
    stay_slowdown: float
    num_devices: int
    topology_signature: str
    replan: ReplanRecord | None = None
    migration: MigrationReport | None = None

    @property
    def overhead_seconds(self) -> float:
        """Replan + migration seconds charged at this event group."""
        seconds = 0.0
        if self.replan is not None:
            seconds += self.replan.charged_seconds
        if self.migration is not None:
            seconds += self.migration.total_seconds
        return seconds

    def to_document(self) -> dict[str, Any]:
        return {
            "iteration": self.iteration,
            "events": [event.to_document() for event in self.events],
            "forced": self.forced,
            "replanned": self.replanned,
            "estimated_slowdown": self.estimated_slowdown,
            "stay_slowdown": self.stay_slowdown,
            "num_devices": self.num_devices,
            "topology_signature": self.topology_signature[:12],
            "replan": self.replan.to_document() if self.replan else None,
            "migration": self.migration.to_document() if self.migration else None,
        }


@dataclass
class ElasticSegment:
    """A contiguous stretch of iterations executed under one plan/substrate."""

    start_iteration: int
    num_iterations: int
    iteration_seconds: float

    @property
    def seconds(self) -> float:
        return self.iteration_seconds * self.num_iterations

    def to_document(self) -> dict[str, Any]:
        return {
            "start_iteration": self.start_iteration,
            "num_iterations": self.num_iterations,
            "iteration_seconds": self.iteration_seconds,
            "seconds": self.seconds,
        }


@dataclass
class ElasticRunResult:
    """Cumulative-training-time record of one elastic run.

    The canonical seeded report (``to_document``) carries: the scenario and
    policy names, segment timings (simulated seconds per iteration), one
    :class:`EventOutcome` document per event group, the charged replan and
    migration overheads, and the cumulative slowdown versus the undisturbed
    run.  Measured planner wall-clock never enters it — identical seeds give
    byte-identical reports.
    """

    scenario_name: str
    policy: str
    total_iterations: int
    baseline_iteration_seconds: float
    segments: list[ElasticSegment] = field(default_factory=list)
    outcomes: list[EventOutcome] = field(default_factory=list)
    initial_plan: ReplanRecord | None = None

    # -------------------------------------------------------------- totals
    @property
    def baseline_seconds(self) -> float:
        """Total time of the no-failure run (same plan for every iteration)."""
        return self.baseline_iteration_seconds * self.total_iterations

    @property
    def training_seconds(self) -> float:
        return sum(segment.seconds for segment in self.segments)

    @property
    def overhead_seconds(self) -> float:
        return sum(outcome.overhead_seconds for outcome in self.outcomes)

    @property
    def total_seconds(self) -> float:
        return self.training_seconds + self.overhead_seconds

    @property
    def cumulative_slowdown(self) -> float:
        """Total elastic time over the no-failure run's total time."""
        return self.total_seconds / self.baseline_seconds

    @property
    def replan_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.replanned)

    @property
    def cache_hits(self) -> int:
        return sum(
            1
            for outcome in self.outcomes
            if outcome.replan is not None and outcome.replan.cache_hit
        )

    @property
    def migration_bytes(self) -> float:
        return sum(
            outcome.migration.total_bytes
            for outcome in self.outcomes
            if outcome.migration is not None
        )

    @property
    def migration_seconds(self) -> float:
        return sum(
            outcome.migration.total_seconds
            for outcome in self.outcomes
            if outcome.migration is not None
        )

    @property
    def replan_charged_seconds(self) -> float:
        return sum(
            outcome.replan.charged_seconds
            for outcome in self.outcomes
            if outcome.replan is not None
        )

    @property
    def replan_measured_seconds(self) -> float:
        """Measured planner wall-clock (out-of-band; machine-dependent)."""
        return sum(
            outcome.replan.measured_seconds
            for outcome in self.outcomes
            if outcome.replan is not None
        )

    @property
    def curve_reuse_rate(self) -> float:
        reused = estimated = 0
        for outcome in self.outcomes:
            if outcome.replan is not None and not outcome.replan.cache_hit:
                reused += outcome.replan.curves_reused
                estimated += outcome.replan.curves_estimated
        total = reused + estimated
        return reused / total if total else 0.0

    def cumulative_curve(self) -> list[tuple[int, float]]:
        """``(iterations, cumulative seconds)`` points, one per segment end."""
        curve: list[tuple[int, float]] = []
        iterations = 0
        elapsed = 0.0
        outcome_index = 0
        for segment in self.segments:
            iterations = segment.start_iteration + segment.num_iterations
            elapsed += segment.seconds
            while (
                outcome_index < len(self.outcomes)
                and self.outcomes[outcome_index].iteration <= iterations
            ):
                elapsed += self.outcomes[outcome_index].overhead_seconds
                outcome_index += 1
            curve.append((iterations, elapsed))
        return curve

    def to_document(self) -> dict[str, Any]:
        """Canonical, deterministic report: byte-identical for equal seeds.

        Measured wall-clock (``replan_measured_seconds``, per-stage planner
        timings) is deliberately absent — it varies per machine and run.
        """
        return {
            "scenario": self.scenario_name,
            "policy": self.policy,
            "total_iterations": self.total_iterations,
            "baseline_seconds": self.baseline_seconds,
            "training_seconds": self.training_seconds,
            "overhead_seconds": self.overhead_seconds,
            "total_seconds": self.total_seconds,
            "cumulative_slowdown": self.cumulative_slowdown,
            "replan_count": self.replan_count,
            "cache_hits": self.cache_hits,
            "migration_bytes": self.migration_bytes,
            "migration_seconds": self.migration_seconds,
            "replan_charged_seconds": self.replan_charged_seconds,
            "curve_reuse_rate": self.curve_reuse_rate,
            "initial_plan": (
                self.initial_plan.to_document() if self.initial_plan else None
            ),
            "segments": [segment.to_document() for segment in self.segments],
            "events": [outcome.to_document() for outcome in self.outcomes],
        }


PlannerFactory = Callable[[ClusterTopology], ExecutionPlanner]


class ElasticTrainingRunner:
    """Runs a fixed task set through an elastic scenario, replanning per policy.

    Parameters
    ----------
    scenario:
        Initial cluster shape plus the event timeline.
    policy:
        Replan policy for non-forced events (default: 10% slowdown threshold).
    migration_model / replan_cost_model:
        Cost models for plan switches; defaults are shared across benchmarks.
    planner_factory:
        Builds the :class:`ExecutionPlanner` for a derived topology.  One
        :class:`IncrementalPlanner` wraps each distinct topology signature, so
        curve pools and the estimator cache never leak across substrates
        (they are keyed per topology) yet warm up across *recurring* ones.
    plan_cache:
        Fingerprint-keyed cache shared across all topologies of the run; a
        substrate that heals back to a previously planned topology re-serves
        its plan with near-zero charged cost.
    planning_service:
        Optional :class:`~repro.service.server.PlanServicePool` to route every
        replan through.  Several concurrent elastic jobs sharing one pool
        share its plan cache *and* coalesce simultaneous identical replans
        onto one planner run (single-flight); the pool's per-topology
        services replace this runner's own planner map and ``plan_cache``.
    """

    def __init__(
        self,
        scenario: ElasticScenario,
        policy: ReplanPolicy | None = None,
        migration_model: MigrationCostModel | None = None,
        replan_cost_model: ReplanCostModel | None = None,
        planner_factory: PlannerFactory | None = None,
        plan_cache: PlanCache | None = None,
        planning_service: PlanServicePool | None = None,
    ) -> None:
        self.scenario = scenario
        self.policy = policy or SlowdownThresholdPolicy()
        self.migration_model = migration_model or MigrationCostModel()
        self.replan_cost_model = replan_cost_model or ReplanCostModel()
        self.planner_factory = planner_factory or (
            lambda cluster: ExecutionPlanner(cluster)
        )
        self.planning_service = planning_service
        self.plan_cache = plan_cache or PlanCache(capacity=64)
        self._planners: dict[str, IncrementalPlanner] = {}

    # ------------------------------------------------------------- public API
    def run(self, tasks: Sequence[SpindleTask]) -> ElasticRunResult:
        tasks = tuple(tasks)
        if not tasks:
            raise ElasticRunError("elastic run needs at least one task")
        view = self.scenario.build_view()
        snapshot = view.snapshot()
        plan, initial_record = self._plan(tasks, snapshot)
        iteration_seconds = self._iteration_seconds(plan)

        result = ElasticRunResult(
            scenario_name=self.scenario.name,
            policy=self.policy.describe(),
            total_iterations=self.scenario.total_iterations,
            baseline_iteration_seconds=iteration_seconds,
            initial_plan=initial_record,
        )

        cursor = 0
        stay_slowdown = 1.0
        pending_groups = 0
        last_replan_iteration = 0
        plan_snapshot = snapshot

        tracer = get_tracer()
        for at_iteration, events in self.scenario.timeline.grouped_by_iteration():
            self._append_segment(
                result, cursor, at_iteration, iteration_seconds * stay_slowdown
            )
            cursor = max(cursor, at_iteration)

            with tracer.span(
                "elastic.event_group",
                category="elastic",
                iteration=at_iteration,
                num_events=len(events),
            ) as group_span:
                view.apply_all(events)
                new_snapshot = view.snapshot()
                pending_groups += 1
                forced = any(event.kind in CAPACITY_LOSS_KINDS for event in events)
                stay = self._stay_slowdown(plan_snapshot, new_snapshot)
                context = ReplanContext(
                    events=tuple(events),
                    old_topology=plan_snapshot.topology,
                    new_topology=new_snapshot.topology,
                    pending_groups=pending_groups,
                    iterations_since_replan=cursor - last_replan_iteration,
                    stay_slowdown=stay,
                )
                replanned = forced or self.policy.should_replan(context)
                group_span.set(forced=forced, replanned=replanned)
                outcome = EventOutcome(
                    iteration=at_iteration,
                    events=tuple(events),
                    forced=forced,
                    replanned=replanned,
                    estimated_slowdown=context.estimated_slowdown,
                    stay_slowdown=1.0,
                    num_devices=new_snapshot.topology.num_devices,
                    topology_signature=new_snapshot.signature,
                )
                if replanned:
                    new_plan, record = self._plan(tasks, new_snapshot)
                    outcome.replan = record
                    new_iteration_seconds = self._iteration_seconds(new_plan)
                    # Checkpoint-interval modeling: lost iterations re-execute
                    # under the new plan, so the recompute term uses its rate.
                    with tracer.span("elastic.migration", category="elastic"):
                        outcome.migration = self.migration_model.assess(
                            plan,
                            plan_snapshot,
                            new_plan,
                            new_snapshot,
                            at_iteration=at_iteration,
                            iteration_seconds=new_iteration_seconds,
                        )
                    plan = new_plan
                    plan_snapshot = new_snapshot
                    iteration_seconds = new_iteration_seconds
                    stay_slowdown = 1.0
                    pending_groups = 0
                    last_replan_iteration = cursor
                else:
                    stay_slowdown = stay
                    outcome.stay_slowdown = stay_slowdown
                result.outcomes.append(outcome)

        self._append_segment(
            result,
            cursor,
            self.scenario.total_iterations,
            iteration_seconds * stay_slowdown,
        )
        return result

    # -------------------------------------------------------------- internals
    def _planner_for(self, topology: ClusterTopology) -> IncrementalPlanner:
        signature = topology.signature()
        incremental = self._planners.get(signature)
        if incremental is None:
            incremental = IncrementalPlanner(self.planner_factory(topology))
            self._planners[signature] = incremental
        return incremental

    def _plan(
        self, tasks: tuple[SpindleTask, ...], snapshot: ElasticSnapshot
    ) -> tuple[ExecutionPlan, ReplanRecord]:
        if self.planning_service is not None:
            return self._plan_via_service(tasks, snapshot)
        incremental = self._planner_for(snapshot.topology)
        fingerprint = fingerprint_workload(
            tasks, incremental.planner.cluster, incremental.planner.config_signature()
        )
        cached = self.plan_cache.get(fingerprint)
        if cached is not None:
            get_metrics().inc("elastic.replans", outcome="cache_hit")
            return cached, self._cache_hit_record(cached)
        stage_seconds: dict[str, float] = {}
        with self._replan_span() as span:
            plan = incremental.plan(
                tasks,
                stage_hook=lambda name, seconds: stage_seconds.update({name: seconds}),
            )
        measured = self._observe_replan(span.seconds)
        self.plan_cache.put(fingerprint, plan)
        return plan, self._planned_record(plan, measured, stage_seconds)

    def _plan_via_service(
        self, tasks: tuple[SpindleTask, ...], snapshot: ElasticSnapshot
    ) -> tuple[ExecutionPlan, ReplanRecord]:
        """Route one replan through the shared per-topology plan service.

        The pool's cache is consulted first (hits charge the cache-hit cost,
        exactly like the runner's own cache path); misses block on the
        service, where identical concurrent requests from other elastic jobs
        coalesce onto a single planner run.  With a resilient pool the
        request resolves through the service's degradation ladder — a
        degraded replan (stale / incremental / reference tier) still installs
        a valid plan, and is counted as ``elastic.replans{outcome=degraded}``.
        """
        service = self.planning_service.service_for(snapshot.topology)
        fingerprint = service.fingerprint(tasks)
        cached = service.cache.get(fingerprint)
        if cached is not None:
            get_metrics().inc("elastic.replans", outcome="cache_hit")
            return cached, self._cache_hit_record(cached)
        with self._replan_span() as span:
            response = service.request(tasks)
        if not response.ok or response.plan is None:
            raise ServiceError(
                f"plan service failed replanning for {snapshot.topology.signature()[:12]}: "
                f"{response.error}"
            )
        measured = self._observe_replan(span.seconds)
        if response.degraded:
            get_metrics().inc("elastic.replans", outcome="degraded", tier=response.tier)
        return response.plan, self._planned_record(response.plan, measured, {})

    def _replan_span(self):
        """The timed ``elastic.replan`` span both planning paths run under."""
        return get_tracer().timed(
            "elastic.replan", category="elastic", policy=self.policy.describe()
        )

    def _observe_replan(self, measured: float) -> float:
        """Record a measured replan into ``elastic.replan_seconds{policy=...}``."""
        metrics = get_metrics()
        metrics.observe(
            "elastic.replan_seconds", measured, policy=self.policy.describe()
        )
        metrics.inc("elastic.replans", outcome="planned")
        return measured

    def _cache_hit_record(self, plan: ExecutionPlan) -> ReplanRecord:
        return ReplanRecord(
            charged_seconds=self.replan_cost_model.charge(
                plan.report.num_metaops, 0, cache_hit=True
            ),
            measured_seconds=0.0,
            cache_hit=True,
            num_metaops=plan.report.num_metaops,
            curves_reused=plan.report.num_metaops,
            curves_estimated=0,
        )

    def _planned_record(
        self,
        plan: ExecutionPlan,
        measured: float,
        stage_seconds: dict[str, float],
    ) -> ReplanRecord:
        reused = plan.report.reused_curves
        estimated = plan.report.num_metaops - reused
        return ReplanRecord(
            charged_seconds=self.replan_cost_model.charge(
                plan.report.num_metaops, estimated, cache_hit=False
            ),
            measured_seconds=measured,
            cache_hit=False,
            num_metaops=plan.report.num_metaops,
            curves_reused=reused,
            curves_estimated=estimated,
            stage_seconds=stage_seconds,
        )

    @staticmethod
    def _iteration_seconds(plan: ExecutionPlan) -> float:
        return RuntimeEngine(plan).run_iteration().iteration_time

    @staticmethod
    def _append_segment(
        result: ElasticRunResult,
        start: int,
        end: int,
        iteration_seconds: float,
    ) -> None:
        if end > start:
            result.segments.append(
                ElasticSegment(
                    start_iteration=start,
                    num_iterations=end - start,
                    iteration_seconds=iteration_seconds,
                )
            )

    @staticmethod
    def _stay_slowdown(
        plan_snapshot: ElasticSnapshot, current: ElasticSnapshot
    ) -> float:
        """Pacing penalty of keeping the old plan on the current substrate.

        The old plan's wave entries pace on their own device group's spec
        class, so a degradation slows the plan down by the worst *per-node*
        ratio of planned to current sustained throughput over the surviving
        planned nodes — a straggling device demotes only its own island's
        group.  Capacity added elsewhere neither helps nor hurts until a
        replan adopts it.  On homogeneous substrates this equals the old
        floor-to-floor ratio.
        """
        worst = 1.0
        for node_id in plan_snapshot.node_ids:
            current_spec = current.spec_of_node(node_id)
            if current_spec is None:
                continue
            planned_spec = plan_snapshot.spec_of_node(node_id)
            if planned_spec is None:  # pragma: no cover - planned nodes exist
                continue
            worst = max(
                worst, planned_spec.achievable_flops / current_spec.achievable_flops
            )
        return worst
