"""Replan policies: when an elastic event is worth a fresh execution plan.

Replanning is cheap (the incremental planner re-profiles only unseen MetaOps
and the plan cache serves recurring topologies outright) but not free, and a
plan switch also pays the migration cost of re-sharding parameters.  The
policy engine decides, per group of simultaneous events, whether to replan now
or keep running the current plan:

* :class:`ImmediateReplanPolicy` — replan on every event group (the paper's
  Appendix-D behaviour transplanted to substrate changes).
* :class:`DebouncedReplanPolicy` — absorb event churn: replan only once a
  minimum number of event groups has accumulated since the last replan.
* :class:`SlowdownThresholdPolicy` — replan only when the estimated slowdown
  of *not* replanning exceeds a threshold.

Capacity-loss events (device failure, node leave) bypass the policy entirely:
the old plan references devices that no longer exist, so the runner always
replans those (see :mod:`repro.elastic.runner`).

The slowdown estimate is deliberately first-order and topology-only — it must
be computable without running the planner.  Two effects are folded in:

* **degradation** — the current plan paces on its slowest device, so the
  slowdown of staying is the pacing penalty over the *nodes the plan actually
  runs on* (a straggler throttling one of them to 50% doubles the estimate;
  a slow node that merely joined does not — the plan never touches it).  The
  runner computes this from its snapshots and passes it in as
  ``ReplanContext.stay_slowdown``;
* **forgone capacity** — after an expansion the current plan uses only the
  old devices, so the achievable-throughput ratio of new to old topology
  bounds what a replan could recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.topology import ClusterTopology
from repro.elastic.events import ClusterEvent


@dataclass(frozen=True)
class ReplanContext:
    """Everything a policy may consult for one event group."""

    events: tuple[ClusterEvent, ...]
    old_topology: ClusterTopology
    new_topology: ClusterTopology
    #: Event groups seen since the last replan, including this one.
    pending_groups: int
    #: Training iterations executed since the last replan.
    iterations_since_replan: int
    #: Pacing penalty of keeping the current plan, over the nodes it actually
    #: runs on (the runner derives it from its snapshots; 1.0 = no penalty).
    stay_slowdown: float = 1.0

    @property
    def estimated_slowdown(self) -> float:
        """First-order slowdown of keeping the current plan (1.0 = none).

        ``max(degradation, forgone capacity)`` — the two effects rarely
        coexist in one event group, and a max keeps the estimate conservative
        without double-charging.
        """
        return max(
            self.stay_slowdown,
            forgone_capacity_gain(self.old_topology, self.new_topology),
        )


def forgone_capacity_gain(
    old_topology: ClusterTopology, new_topology: ClusterTopology
) -> float:
    """Throughput a replan could at most recover after a capacity change.

    The achievable-FLOP/s ratio of new to old topology, clamped at 1.0:
    added capacity idles until a replan adopts it, lost capacity forces a
    replan anyway (and must not read as a *gain* of staying).
    """
    gain = new_topology.total_achievable_flops / max(
        old_topology.total_achievable_flops, 1e-12
    )
    return max(1.0, gain)


class ReplanPolicy:
    """Base policy: decides whether an event group triggers a replan."""

    name = "abstract"

    def should_replan(self, context: ReplanContext) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class ImmediateReplanPolicy(ReplanPolicy):
    """Replan on every event group."""

    name = "immediate"

    def should_replan(self, context: ReplanContext) -> bool:
        return True


class DebouncedReplanPolicy(ReplanPolicy):
    """Replan once ``min_groups`` event groups accumulated since the last one.

    A burst of joins or straggler flaps is absorbed into one replan instead of
    paying planner + migration cost per event.
    """

    name = "debounced"

    def __init__(self, min_groups: int = 2) -> None:
        if min_groups <= 0:
            raise ValueError("min_groups must be positive")
        self.min_groups = min_groups

    def should_replan(self, context: ReplanContext) -> bool:
        return context.pending_groups >= self.min_groups

    def describe(self) -> str:
        return f"debounced(min_groups={self.min_groups})"


class SlowdownThresholdPolicy(ReplanPolicy):
    """Replan when the estimated slowdown of staying exceeds ``threshold``.

    ``threshold`` is fractional: ``0.1`` replans once staying is estimated to
    cost more than 10% — minor stragglers and token expansions ride through.
    """

    name = "threshold"

    def __init__(self, threshold: float = 0.1) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold

    def should_replan(self, context: ReplanContext) -> bool:
        return context.estimated_slowdown - 1.0 > self.threshold

    def describe(self) -> str:
        return f"threshold({self.threshold:g})"


def make_policy(
    name: str,
    *,
    min_groups: int = 2,
    threshold: float = 0.1,
) -> ReplanPolicy:
    """Policy factory used by the CLI and benchmarks."""
    if name == "immediate":
        return ImmediateReplanPolicy()
    if name == "debounced":
        return DebouncedReplanPolicy(min_groups=min_groups)
    if name == "threshold":
        return SlowdownThresholdPolicy(threshold=threshold)
    raise ValueError(
        f"Unknown replan policy {name!r}; expected one of {POLICY_NAMES}"
    )


POLICY_NAMES: Sequence[str] = ("immediate", "debounced", "threshold")
