"""Cluster events and timelines: the substrate changes elastic runs react to.

A :class:`ClusterEvent` describes one change to the physical cluster at a
given training iteration — a device failing or coming back, a whole node
joining or leaving (possibly with a *different* device spec: heterogeneous
capacity expansion), or a straggler onset/clear that degrades a node's
sustained throughput.  A :class:`EventTimeline` is an iteration-ordered
sequence of such events, and the seeded generators at the bottom of the module
produce the scenario families the benchmarks and the ``repro elastic`` CLI
replay: random failures with repair, an island outage, a flash-crowd
expansion, and rolling stragglers.

Events reference *stable* node ids and per-node device slots — the identifiers
:class:`~repro.elastic.view.ElasticClusterView` assigns — never the contiguous
device ids of a derived :class:`~repro.cluster.topology.ClusterTopology`,
which are remapped after every membership change.

All generators draw from a private ``random.Random(seed)``: identical seeds
produce identical timelines, byte for byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.cluster.device import DeviceSpec


class ElasticEventError(Exception):
    """Raised for malformed events or timelines."""


#: Event kinds understood by :class:`~repro.elastic.view.ElasticClusterView`.
DEVICE_FAILURE = "device_failure"
DEVICE_RECOVERY = "device_recovery"
NODE_JOIN = "node_join"
NODE_LEAVE = "node_leave"
STRAGGLER_ONSET = "straggler_onset"
STRAGGLER_CLEAR = "straggler_clear"

EVENT_KINDS = (
    DEVICE_FAILURE,
    DEVICE_RECOVERY,
    NODE_JOIN,
    NODE_LEAVE,
    STRAGGLER_ONSET,
    STRAGGLER_CLEAR,
)

#: Kinds that remove capacity the current plan may be running on; the elastic
#: runner replans these unconditionally (the old plan is no longer runnable).
CAPACITY_LOSS_KINDS = frozenset({DEVICE_FAILURE, NODE_LEAVE})


@dataclass(frozen=True)
class ClusterEvent:
    """One change to the cluster substrate at a training-iteration boundary.

    Fields are kind-dependent:

    * ``device_failure`` / ``device_recovery`` — ``node`` + ``device`` (the
      stable per-node slot).
    * ``node_join`` — ``spec`` and ``num_devices`` of the joining node
      (``node`` must be omitted; the view assigns the next stable node id).
    * ``node_leave`` — ``node``.
    * ``straggler_onset`` — ``node`` + ``severity`` (the remaining fraction of
      healthy throughput, in ``(0, 1)``), plus an optional ``device``: with a
      device slot the episode throttles that one GPU (demoting only its
      island's spec class — lockstep groups pace on their slowest member);
      without, the whole node degrades.
    * ``straggler_clear`` — ``node``, plus an optional ``device`` mirroring
      the onset granularity.
    """

    kind: str
    at_iteration: int
    node: int | None = None
    device: int | None = None
    spec: DeviceSpec | None = None
    num_devices: int | None = None
    severity: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ElasticEventError(
                f"Unknown event kind {self.kind!r}; expected one of {EVENT_KINDS}"
            )
        if self.at_iteration < 0:
            raise ElasticEventError("at_iteration must be non-negative")
        if self.kind in (DEVICE_FAILURE, DEVICE_RECOVERY):
            if self.node is None or self.device is None:
                raise ElasticEventError(f"{self.kind} needs node and device")
        elif self.kind == NODE_JOIN:
            if self.node is not None:
                raise ElasticEventError(
                    "node_join must not name a node; the view assigns the id"
                )
            if self.spec is None:
                raise ElasticEventError("node_join needs the joining node's spec")
            if self.num_devices is None or self.num_devices <= 0:
                raise ElasticEventError("node_join needs a positive num_devices")
        elif self.kind in (NODE_LEAVE, STRAGGLER_CLEAR):
            if self.node is None:
                raise ElasticEventError(f"{self.kind} needs a node")
        elif self.kind == STRAGGLER_ONSET:
            if self.node is None:
                raise ElasticEventError("straggler_onset needs a node")
            if self.severity is None or not (0.0 < self.severity < 1.0):
                raise ElasticEventError(
                    "straggler_onset needs a severity in (0, 1): the remaining "
                    "fraction of healthy throughput"
                )

    def describe(self) -> str:
        """Compact human-readable label, e.g. ``device_failure(n0:d3)``."""
        if self.kind in (DEVICE_FAILURE, DEVICE_RECOVERY):
            target = f"n{self.node}:d{self.device}"
        elif self.kind == NODE_JOIN:
            target = f"+{self.num_devices}x{self.spec.name}"
        elif self.kind == STRAGGLER_ONSET:
            slot = f":d{self.device}" if self.device is not None else ""
            target = f"n{self.node}{slot}@{self.severity:g}"
        elif self.kind == STRAGGLER_CLEAR and self.device is not None:
            target = f"n{self.node}:d{self.device}"
        else:
            target = f"n{self.node}"
        return f"{self.kind}({target})"

    def to_document(self) -> dict[str, Any]:
        """Deterministic JSON document (for byte-identical reports)."""
        document: dict[str, Any] = {
            "kind": self.kind,
            "at_iteration": self.at_iteration,
        }
        if self.node is not None:
            document["node"] = self.node
        if self.device is not None:
            document["device"] = self.device
        if self.spec is not None:
            document["spec"] = self.spec.name
        if self.num_devices is not None:
            document["num_devices"] = self.num_devices
        if self.severity is not None:
            document["severity"] = self.severity
        return document


@dataclass
class EventTimeline:
    """Iteration-ordered sequence of cluster events.

    Events are kept sorted by ``at_iteration`` (stable for equal iterations:
    insertion order is preserved, so e.g. a whole-island outage emitted as
    eight same-iteration failures applies in slot order).
    """

    events: list[ClusterEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: e.at_iteration)

    def add(self, event: ClusterEvent) -> "EventTimeline":
        self.events.append(event)
        self.events.sort(key=lambda e: e.at_iteration)
        return self

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ClusterEvent]:
        return iter(self.events)

    @property
    def last_iteration(self) -> int:
        return self.events[-1].at_iteration if self.events else 0

    def grouped_by_iteration(self) -> list[tuple[int, list[ClusterEvent]]]:
        """``(iteration, events)`` groups in iteration order.

        The elastic runner applies each group atomically and makes one replan
        decision per group — simultaneous events (an island outage) trigger
        one replan, not eight.
        """
        groups: list[tuple[int, list[ClusterEvent]]] = []
        for event in self.events:
            if groups and groups[-1][0] == event.at_iteration:
                groups[-1][1].append(event)
            else:
                groups.append((event.at_iteration, [event]))
        return groups

    def to_document(self) -> list[dict[str, Any]]:
        return [event.to_document() for event in self.events]


# --------------------------------------------------------------- generators
def random_failure_timeline(
    num_nodes: int,
    devices_per_node: int,
    total_iterations: int,
    num_failures: int,
    seed: int = 0,
    repair_iterations: int | None = None,
) -> EventTimeline:
    """Seeded random device failures, each followed by a recovery.

    ``num_failures`` devices (without replacement, so no device fails while
    already down) fail at uniformly drawn iterations; each failed device
    recovers ``repair_iterations`` later (default: ``total_iterations // 4``)
    when that lands inside the run.
    """
    if num_nodes <= 0 or devices_per_node <= 0:
        raise ElasticEventError("cluster dimensions must be positive")
    if total_iterations <= 1:
        raise ElasticEventError("total_iterations must exceed 1")
    slots = [(n, d) for n in range(num_nodes) for d in range(devices_per_node)]
    if num_failures > len(slots):
        raise ElasticEventError(
            f"cannot fail {num_failures} of {len(slots)} devices"
        )
    repair = (
        repair_iterations if repair_iterations is not None else total_iterations // 4
    )
    rng = random.Random(seed)
    timeline = EventTimeline()
    for node, device in rng.sample(slots, num_failures):
        at = rng.randrange(1, total_iterations)
        timeline.add(
            ClusterEvent(DEVICE_FAILURE, at_iteration=at, node=node, device=device)
        )
        recovery_at = at + repair
        if 0 < recovery_at < total_iterations:
            timeline.add(
                ClusterEvent(
                    DEVICE_RECOVERY,
                    at_iteration=recovery_at,
                    node=node,
                    device=device,
                )
            )
    return timeline


def island_outage_timeline(
    node: int,
    devices_per_node: int,
    at_iteration: int,
    recovery_at: int | None = None,
) -> EventTimeline:
    """Every device of one island fails at once; optionally all recover later."""
    timeline = EventTimeline()
    for device in range(devices_per_node):
        timeline.add(
            ClusterEvent(
                DEVICE_FAILURE, at_iteration=at_iteration, node=node, device=device
            )
        )
        if recovery_at is not None:
            timeline.add(
                ClusterEvent(
                    DEVICE_RECOVERY,
                    at_iteration=recovery_at,
                    node=node,
                    device=device,
                )
            )
    return timeline


def flash_crowd_timeline(
    at_iteration: int,
    num_new_nodes: int,
    devices_per_node: int,
    spec: DeviceSpec,
) -> EventTimeline:
    """A capacity burst: ``num_new_nodes`` nodes of ``spec`` join at once.

    Passing a spec different from the incumbent nodes' models heterogeneous
    expansion (e.g. a pod of newer accelerators joining an A800 cluster).
    """
    if num_new_nodes <= 0:
        raise ElasticEventError("num_new_nodes must be positive")
    timeline = EventTimeline()
    for _ in range(num_new_nodes):
        timeline.add(
            ClusterEvent(
                NODE_JOIN,
                at_iteration=at_iteration,
                spec=spec,
                num_devices=devices_per_node,
            )
        )
    return timeline


def rolling_straggler_timeline(
    num_nodes: int,
    total_iterations: int,
    num_episodes: int,
    seed: int = 0,
    severity: float = 0.5,
    episode_iterations: int | None = None,
) -> EventTimeline:
    """Straggler episodes rolling across random nodes.

    Each episode throttles one node to ``severity`` of its healthy throughput
    for ``episode_iterations`` iterations (default: ``total_iterations // 5``),
    then clears.  Episodes on one node never overlap in time — an overlapping
    pair would let the earlier episode's clear prematurely heal the later one
    — so draws that collide with an existing episode on the drawn node are
    rejected and redrawn; an episode whose start cannot be placed after a
    bounded number of attempts (a saturated timeline) is skipped.  Zero-gap
    adjacency is rejected too: one episode's clear landing on the same
    iteration as another's onset would apply in *insertion* order (same-
    iteration events sort stably), letting the clear silently wipe the onset.
    """
    if num_nodes <= 0:
        raise ElasticEventError("num_nodes must be positive")
    if total_iterations <= 1:
        raise ElasticEventError("total_iterations must exceed 1")
    length = (
        episode_iterations if episode_iterations is not None else total_iterations // 5
    )
    length = max(1, length)
    rng = random.Random(seed)
    timeline = EventTimeline()
    busy: dict[int, list[tuple[int, int]]] = {}
    order: list[int] = []
    for _ in range(num_episodes):
        if not order:
            order = list(range(num_nodes))
            rng.shuffle(order)
        node = order.pop()
        for _attempt in range(64):
            at = rng.randrange(1, total_iterations)
            end = min(at + length, total_iterations)
            if all(at > b_end or end < b_at for b_at, b_end in busy.get(node, [])):
                break
        else:
            continue  # node saturated with episodes; skip this one
        busy.setdefault(node, []).append((at, end))
        timeline.add(
            ClusterEvent(
                STRAGGLER_ONSET, at_iteration=at, node=node, severity=severity
            )
        )
        clear_at = at + length
        if clear_at < total_iterations:
            timeline.add(
                ClusterEvent(STRAGGLER_CLEAR, at_iteration=clear_at, node=node)
            )
    return timeline


def gpu_straggler_timeline(
    num_nodes: int,
    devices_per_node: int,
    total_iterations: int,
    num_episodes: int,
    seed: int = 0,
    severity: float = 0.5,
    episode_iterations: int | None = None,
) -> EventTimeline:
    """Straggler episodes hitting single GPUs instead of whole nodes.

    The per-device analogue of :func:`rolling_straggler_timeline`: each
    episode throttles one device slot to ``severity`` of its healthy
    throughput, then clears it.  One slow GPU demotes only its island's spec
    class (the island paces on its slowest alive member), so the
    heterogeneity-aware planner steers heavy MetaOps away from the afflicted
    island while the rest of the cluster keeps its full rate.  Episodes on one
    slot never overlap or touch (a zero-gap pair's same-iteration clear/onset
    would apply in insertion order and wipe the later episode); colliding
    draws are redrawn, saturated slots skipped.
    """
    if num_nodes <= 0 or devices_per_node <= 0:
        raise ElasticEventError("cluster dimensions must be positive")
    if total_iterations <= 1:
        raise ElasticEventError("total_iterations must exceed 1")
    length = (
        episode_iterations if episode_iterations is not None else total_iterations // 5
    )
    length = max(1, length)
    rng = random.Random(seed)
    timeline = EventTimeline()
    slots = [(n, d) for n in range(num_nodes) for d in range(devices_per_node)]
    busy: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for _ in range(num_episodes):
        slot = slots[rng.randrange(len(slots))]
        for _attempt in range(64):
            at = rng.randrange(1, total_iterations)
            end = min(at + length, total_iterations)
            if all(at > b_end or end < b_at for b_at, b_end in busy.get(slot, [])):
                break
        else:
            continue  # slot saturated with episodes; skip this one
        busy.setdefault(slot, []).append((at, end))
        node, device = slot
        timeline.add(
            ClusterEvent(
                STRAGGLER_ONSET,
                at_iteration=at,
                node=node,
                device=device,
                severity=severity,
            )
        )
        clear_at = at + length
        if clear_at < total_iterations:
            timeline.add(
                ClusterEvent(
                    STRAGGLER_CLEAR, at_iteration=clear_at, node=node, device=device
                )
            )
    return timeline


def merge_timelines(timelines: Sequence[EventTimeline]) -> EventTimeline:
    """Merge several timelines into one iteration-ordered timeline."""
    merged = EventTimeline()
    for timeline in timelines:
        for event in timeline:
            merged.add(event)
    return merged
