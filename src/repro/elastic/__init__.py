"""Elastic cluster subsystem: failure injection and event-driven replanning.

Production multi-task training lives with device failures, stragglers and
elastic capacity changes; this package adds the machinery to express and
evaluate such scenarios on the simulated substrate:

* :mod:`repro.elastic.events` — cluster events (failure/recovery, node
  join/leave, straggler onset/clear), iteration-ordered timelines and seeded
  scenario generators,
* :mod:`repro.elastic.view` — a mutable cluster view deriving a fresh, valid
  :class:`~repro.cluster.topology.ClusterTopology` after each event,
* :mod:`repro.elastic.policy` — replan policies (immediate, debounced,
  slowdown-threshold),
* :mod:`repro.elastic.migration` — the plan-migration cost model (parameter
  re-shard transfers + checkpoint restores),
* :mod:`repro.elastic.runner` — the elastic training runner producing
  cumulative-training-time curves with per-event replan/migration overhead
  breakdowns, reproducibly (identical seeds, byte-identical reports).
"""

from repro.elastic.events import (
    CAPACITY_LOSS_KINDS,
    DEVICE_FAILURE,
    DEVICE_RECOVERY,
    EVENT_KINDS,
    NODE_JOIN,
    NODE_LEAVE,
    STRAGGLER_CLEAR,
    STRAGGLER_ONSET,
    ClusterEvent,
    ElasticEventError,
    EventTimeline,
    flash_crowd_timeline,
    gpu_straggler_timeline,
    island_outage_timeline,
    merge_timelines,
    random_failure_timeline,
    rolling_straggler_timeline,
)
from repro.elastic.migration import (
    MigrationCostModel,
    MigrationGroup,
    MigrationReport,
)
from repro.elastic.policy import (
    POLICY_NAMES,
    DebouncedReplanPolicy,
    ImmediateReplanPolicy,
    ReplanContext,
    ReplanPolicy,
    SlowdownThresholdPolicy,
    forgone_capacity_gain,
    make_policy,
)
from repro.elastic.runner import (
    ElasticRunError,
    ElasticRunResult,
    ElasticScenario,
    ElasticSegment,
    ElasticTrainingRunner,
    EventOutcome,
    ReplanCostModel,
    ReplanRecord,
)
from repro.elastic.view import (
    ElasticClusterView,
    ElasticSnapshot,
    ElasticViewError,
    device_key,
)

__all__ = [
    "CAPACITY_LOSS_KINDS",
    "ClusterEvent",
    "DEVICE_FAILURE",
    "DEVICE_RECOVERY",
    "DebouncedReplanPolicy",
    "ElasticClusterView",
    "ElasticEventError",
    "ElasticRunError",
    "ElasticRunResult",
    "ElasticScenario",
    "ElasticSegment",
    "ElasticSnapshot",
    "ElasticTrainingRunner",
    "ElasticViewError",
    "EVENT_KINDS",
    "EventOutcome",
    "EventTimeline",
    "ImmediateReplanPolicy",
    "MigrationCostModel",
    "MigrationGroup",
    "MigrationReport",
    "NODE_JOIN",
    "NODE_LEAVE",
    "POLICY_NAMES",
    "ReplanContext",
    "ReplanCostModel",
    "ReplanPolicy",
    "ReplanRecord",
    "STRAGGLER_CLEAR",
    "STRAGGLER_ONSET",
    "SlowdownThresholdPolicy",
    "device_key",
    "flash_crowd_timeline",
    "forgone_capacity_gain",
    "gpu_straggler_timeline",
    "island_outage_timeline",
    "make_policy",
    "merge_timelines",
    "random_failure_timeline",
    "rolling_straggler_timeline",
]
