"""Plan-migration cost model: what switching execution plans physically costs.

A replan after an elastic event produces a new
:class:`~repro.core.plan.ExecutionPlan` whose device placement differs from
the old one's.  Before training can resume, every parameter group must live
where the new plan expects it:

* **re-shard transfer** — parameter + optimizer state whose old device group
  survived the event but differs from the new group is moved over the derived
  topology's links (:func:`~repro.costmodel.comm.group_transfer_time`, which
  parallelises across shard pairs and charges the slowest link class crossed);
* **checkpoint restore** — state whose holders were *all* lost (an island
  outage taking every replica) cannot be transferred and is re-read from the
  checkpoint store, charged at ``checkpoint_read_bandwidth`` shared across the
  restoring devices plus a fixed restore latency.

Old and new plans use different contiguous device ids (ids are remapped per
snapshot), so placements are diffed through the *stable device keys* of the
two :class:`~repro.elastic.view.ElasticSnapshot` mappings.

The total is a serialized upper bound (groups migrate one after another);
real systems overlap transfers, but a deterministic, conservative figure is
what the recovery benchmarks gate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.plan import ExecutionPlan
from repro.costmodel.comm import group_transfer_time
from repro.costmodel.memory import MemoryModel
from repro.elastic.view import ElasticSnapshot


@dataclass(frozen=True)
class MigrationGroup:
    """Migration of one parameter group (one MetaOp, or one shared key)."""

    label: str
    param_bytes: float
    source_devices: tuple[int, ...]
    target_devices: tuple[int, ...]
    restored: bool
    seconds: float

    def to_document(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "param_bytes": self.param_bytes,
            "sources": list(self.source_devices),
            "targets": list(self.target_devices),
            "restored": self.restored,
            "seconds": self.seconds,
        }


@dataclass
class MigrationReport:
    """Aggregate migration cost of one plan switch.

    ``lost_iterations``/``recompute_seconds`` charge the training progress
    thrown away by a checkpoint restore: work done since the last checkpoint
    exists only in the lost optimizer state and must be re-executed.  Both are
    zero when nothing was restored or when checkpoint-interval modeling is
    disabled.
    """

    groups: list[MigrationGroup] = field(default_factory=list)
    lost_iterations: int = 0
    recompute_seconds: float = 0.0

    @property
    def moved_bytes(self) -> float:
        return sum(g.param_bytes for g in self.groups if not g.restored)

    @property
    def restored_bytes(self) -> float:
        return sum(g.param_bytes for g in self.groups if g.restored)

    @property
    def total_bytes(self) -> float:
        return sum(g.param_bytes for g in self.groups)

    @property
    def transfer_seconds(self) -> float:
        return sum(g.seconds for g in self.groups if not g.restored)

    @property
    def restore_seconds(self) -> float:
        return sum(g.seconds for g in self.groups if g.restored)

    @property
    def total_seconds(self) -> float:
        return sum(g.seconds for g in self.groups) + self.recompute_seconds

    @property
    def num_restored_groups(self) -> int:
        return sum(1 for g in self.groups if g.restored)

    def to_document(self) -> dict[str, Any]:
        return {
            "moved_bytes": self.moved_bytes,
            "restored_bytes": self.restored_bytes,
            "transfer_seconds": self.transfer_seconds,
            "restore_seconds": self.restore_seconds,
            "lost_iterations": self.lost_iterations,
            "recompute_seconds": self.recompute_seconds,
            "total_seconds": self.total_seconds,
            "num_groups": len(self.groups),
            "num_restored_groups": self.num_restored_groups,
        }


class MigrationCostModel:
    """Diffs two plans' placements and prices the parameter movement.

    Parameters
    ----------
    memory_model:
        Supplies the parameter + optimizer state footprint per group (the
        bytes that must physically move; activations are recomputed, not
        migrated).
    checkpoint_read_bandwidth:
        Aggregate bytes/s the checkpoint store sustains for a restore
        (default 5 GB/s — a parallel file system, not local NVMe).
    checkpoint_latency:
        Fixed seconds per restored group (metadata lookup, file open, process
        re-initialisation share).
    checkpoint_interval:
        Iterations between checkpoints.  When set, a restore additionally
        charges the *lost progress* — the iterations executed since the last
        checkpoint must be re-executed, because the restored optimizer state
        predates them.  ``None`` (the default) disables the term and keeps the
        pre-existing bandwidth + latency accounting.
    """

    def __init__(
        self,
        memory_model: MemoryModel | None = None,
        checkpoint_read_bandwidth: float = 5e9,
        checkpoint_latency: float = 2.0,
        checkpoint_interval: int | None = None,
    ) -> None:
        if checkpoint_read_bandwidth <= 0:
            raise ValueError("checkpoint_read_bandwidth must be positive")
        if checkpoint_latency < 0:
            raise ValueError("checkpoint_latency must be non-negative")
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive (or None)")
        self.memory_model = memory_model or MemoryModel()
        self.checkpoint_read_bandwidth = checkpoint_read_bandwidth
        self.checkpoint_latency = checkpoint_latency
        self.checkpoint_interval = checkpoint_interval

    # ------------------------------------------------------------- public API
    def assess(
        self,
        old_plan: ExecutionPlan,
        old_snapshot: ElasticSnapshot,
        new_plan: ExecutionPlan,
        new_snapshot: ElasticSnapshot,
        at_iteration: int = 0,
        iteration_seconds: float = 0.0,
    ) -> MigrationReport:
        """Price the migration from ``old_plan`` to ``new_plan``.

        Parameter state is grouped by shared parameter key where one exists
        (cross-task shared modules move once, not once per task) and by MetaOp
        otherwise.  Device groups are compared in the *new* snapshot's id
        space: old ids map through stable keys, devices lost with the event
        drop out of the source set.

        ``at_iteration`` and ``iteration_seconds`` feed the checkpoint-interval
        model: if any group has to be restored from the checkpoint store, the
        ``at_iteration % checkpoint_interval`` iterations executed since the
        last checkpoint are re-executed at ``iteration_seconds`` per iteration
        (callers pass the *new* plan's rate — the re-execution happens after
        the switch) and charged once per plan switch, however many groups
        restore.
        """
        report = MigrationReport()
        old_groups = self._parameter_groups(old_plan)
        new_groups = self._parameter_groups(new_plan)
        topology = new_snapshot.topology
        for label in sorted(new_groups):
            param_bytes, new_devices = new_groups[label]
            targets = tuple(sorted(new_devices))
            old_entry = old_groups.get(label)
            sources: tuple[int, ...] = ()
            if old_entry is not None:
                mapped = {
                    mapped_id
                    for old_id in old_entry[1]
                    if (
                        mapped_id := new_snapshot.id_of(
                            old_snapshot.device_keys[old_id]
                        )
                    )
                    is not None
                }
                sources = tuple(sorted(mapped))
            if not sources:
                # Every old holder vanished (or the group is new): restore
                # from the checkpoint store, shared-bandwidth across targets.
                seconds = (
                    self.checkpoint_latency
                    + param_bytes / self.checkpoint_read_bandwidth
                )
                report.groups.append(
                    MigrationGroup(
                        label=label,
                        param_bytes=param_bytes,
                        source_devices=(),
                        target_devices=targets,
                        restored=True,
                        seconds=seconds,
                    )
                )
            elif set(sources) != set(targets):
                seconds = group_transfer_time(topology, sources, targets, param_bytes)
                report.groups.append(
                    MigrationGroup(
                        label=label,
                        param_bytes=param_bytes,
                        source_devices=sources,
                        target_devices=targets,
                        restored=False,
                        seconds=seconds,
                    )
                )
            # Identical device groups: the shards are already in place.
        if (
            self.checkpoint_interval is not None
            and report.num_restored_groups > 0
        ):
            if at_iteration < 0:
                raise ValueError("at_iteration must be non-negative")
            if iteration_seconds < 0:
                raise ValueError("iteration_seconds must be non-negative")
            report.lost_iterations = at_iteration % self.checkpoint_interval
            report.recompute_seconds = report.lost_iterations * iteration_seconds
        return report

    # -------------------------------------------------------------- internals
    def _parameter_groups(
        self, plan: ExecutionPlan
    ) -> dict[str, tuple[float, set[int]]]:
        """``label -> (state bytes, devices holding the state)`` for one plan.

        The label is the shared parameter key when the representative operator
        has one (those weights exist once across tasks) and the MetaOp's
        stable ``task/op_type`` identity otherwise.  Bytes follow the memory
        model's full parameter + optimizer state accounting at data-parallel
        degree 1 — the migration moves the *whole* group once, however it is
        sharded afterwards.
        """
        groups: dict[str, tuple[float, set[int]]] = {}
        for metaop in plan.metagraph.metaops.values():
            op = metaop.representative
            if op.param_bytes == 0:
                continue
            devices: set[int] = set()
            for wave in plan.waves:
                entry = wave.entry_for(metaop.index)
                if entry is not None:
                    devices.update(
                        plan.placement.devices_for(wave.index, metaop.index)
                    )
            if not devices:
                continue
            state_bytes = (
                self.memory_model.parameter_state_bytes(op, 1) * metaop.num_operators
            )
            label = op.param_key or f"{metaop.task}/{metaop.op_type}#{metaop.index}"
            if label in groups:
                existing_bytes, existing_devices = groups[label]
                groups[label] = (
                    max(existing_bytes, state_bytes),
                    existing_devices | devices,
                )
            else:
                groups[label] = (state_bytes, devices)
        return groups
