"""Plan-migration cost model: what switching execution plans physically costs.

A replan after an elastic event produces a new
:class:`~repro.core.plan.ExecutionPlan` whose device placement differs from
the old one's.  Before training can resume, every parameter group must live
where the new plan expects it:

* **re-shard transfer** — parameter + optimizer state whose old device group
  survived the event but differs from the new group is moved over the derived
  topology's links (:func:`~repro.costmodel.comm.group_transfer_time`, which
  parallelises across shard pairs and charges the slowest link class crossed);
* **checkpoint restore** — state whose holders were *all* lost (an island
  outage taking every replica) cannot be transferred and is re-read from the
  checkpoint store, charged at ``checkpoint_read_bandwidth`` shared across the
  restoring devices plus a fixed restore latency.

Old and new plans use different contiguous device ids (ids are remapped per
snapshot), so placements are diffed through the *stable device keys* of the
two :class:`~repro.elastic.view.ElasticSnapshot` mappings.

The total is a serialized upper bound (groups migrate one after another);
real systems overlap transfers, but a deterministic, conservative figure is
what the recovery benchmarks gate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.plan import ExecutionPlan
from repro.costmodel.comm import group_transfer_time
from repro.costmodel.memory import MemoryModel
from repro.elastic.view import ElasticSnapshot


@dataclass(frozen=True)
class MigrationGroup:
    """Migration of one parameter group (one MetaOp, or one shared key)."""

    label: str
    param_bytes: float
    source_devices: tuple[int, ...]
    target_devices: tuple[int, ...]
    restored: bool
    seconds: float

    def to_document(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "param_bytes": self.param_bytes,
            "sources": list(self.source_devices),
            "targets": list(self.target_devices),
            "restored": self.restored,
            "seconds": self.seconds,
        }


@dataclass
class MigrationReport:
    """Aggregate migration cost of one plan switch."""

    groups: list[MigrationGroup] = field(default_factory=list)

    @property
    def moved_bytes(self) -> float:
        return sum(g.param_bytes for g in self.groups if not g.restored)

    @property
    def restored_bytes(self) -> float:
        return sum(g.param_bytes for g in self.groups if g.restored)

    @property
    def total_bytes(self) -> float:
        return sum(g.param_bytes for g in self.groups)

    @property
    def transfer_seconds(self) -> float:
        return sum(g.seconds for g in self.groups if not g.restored)

    @property
    def restore_seconds(self) -> float:
        return sum(g.seconds for g in self.groups if g.restored)

    @property
    def total_seconds(self) -> float:
        return sum(g.seconds for g in self.groups)

    @property
    def num_restored_groups(self) -> int:
        return sum(1 for g in self.groups if g.restored)

    def to_document(self) -> dict[str, Any]:
        return {
            "moved_bytes": self.moved_bytes,
            "restored_bytes": self.restored_bytes,
            "transfer_seconds": self.transfer_seconds,
            "restore_seconds": self.restore_seconds,
            "total_seconds": self.total_seconds,
            "num_groups": len(self.groups),
            "num_restored_groups": self.num_restored_groups,
        }


class MigrationCostModel:
    """Diffs two plans' placements and prices the parameter movement.

    Parameters
    ----------
    memory_model:
        Supplies the parameter + optimizer state footprint per group (the
        bytes that must physically move; activations are recomputed, not
        migrated).
    checkpoint_read_bandwidth:
        Aggregate bytes/s the checkpoint store sustains for a restore
        (default 5 GB/s — a parallel file system, not local NVMe).
    checkpoint_latency:
        Fixed seconds per restored group (metadata lookup, file open, process
        re-initialisation share).
    """

    def __init__(
        self,
        memory_model: MemoryModel | None = None,
        checkpoint_read_bandwidth: float = 5e9,
        checkpoint_latency: float = 2.0,
    ) -> None:
        if checkpoint_read_bandwidth <= 0:
            raise ValueError("checkpoint_read_bandwidth must be positive")
        if checkpoint_latency < 0:
            raise ValueError("checkpoint_latency must be non-negative")
        self.memory_model = memory_model or MemoryModel()
        self.checkpoint_read_bandwidth = checkpoint_read_bandwidth
        self.checkpoint_latency = checkpoint_latency

    # ------------------------------------------------------------- public API
    def assess(
        self,
        old_plan: ExecutionPlan,
        old_snapshot: ElasticSnapshot,
        new_plan: ExecutionPlan,
        new_snapshot: ElasticSnapshot,
    ) -> MigrationReport:
        """Price the migration from ``old_plan`` to ``new_plan``.

        Parameter state is grouped by shared parameter key where one exists
        (cross-task shared modules move once, not once per task) and by MetaOp
        otherwise.  Device groups are compared in the *new* snapshot's id
        space: old ids map through stable keys, devices lost with the event
        drop out of the source set.
        """
        report = MigrationReport()
        old_groups = self._parameter_groups(old_plan)
        new_groups = self._parameter_groups(new_plan)
        topology = new_snapshot.topology
        for label in sorted(new_groups):
            param_bytes, new_devices = new_groups[label]
            targets = tuple(sorted(new_devices))
            old_entry = old_groups.get(label)
            sources: tuple[int, ...] = ()
            if old_entry is not None:
                mapped = {
                    mapped_id
                    for old_id in old_entry[1]
                    if (
                        mapped_id := new_snapshot.id_of(
                            old_snapshot.device_keys[old_id]
                        )
                    )
                    is not None
                }
                sources = tuple(sorted(mapped))
            if not sources:
                # Every old holder vanished (or the group is new): restore
                # from the checkpoint store, shared-bandwidth across targets.
                seconds = (
                    self.checkpoint_latency
                    + param_bytes / self.checkpoint_read_bandwidth
                )
                report.groups.append(
                    MigrationGroup(
                        label=label,
                        param_bytes=param_bytes,
                        source_devices=(),
                        target_devices=targets,
                        restored=True,
                        seconds=seconds,
                    )
                )
            elif set(sources) != set(targets):
                seconds = group_transfer_time(topology, sources, targets, param_bytes)
                report.groups.append(
                    MigrationGroup(
                        label=label,
                        param_bytes=param_bytes,
                        source_devices=sources,
                        target_devices=targets,
                        restored=False,
                        seconds=seconds,
                    )
                )
            # Identical device groups: the shards are already in place.
        return report

    # -------------------------------------------------------------- internals
    def _parameter_groups(
        self, plan: ExecutionPlan
    ) -> dict[str, tuple[float, set[int]]]:
        """``label -> (state bytes, devices holding the state)`` for one plan.

        The label is the shared parameter key when the representative operator
        has one (those weights exist once across tasks) and the MetaOp's
        stable ``task/op_type`` identity otherwise.  Bytes follow the memory
        model's full parameter + optimizer state accounting at data-parallel
        degree 1 — the migration moves the *whole* group once, however it is
        sharded afterwards.
        """
        groups: dict[str, tuple[float, set[int]]] = {}
        for metaop in plan.metagraph.metaops.values():
            op = metaop.representative
            if op.param_bytes == 0:
                continue
            devices: set[int] = set()
            for wave in plan.waves:
                entry = wave.entry_for(metaop.index)
                if entry is not None:
                    devices.update(
                        plan.placement.devices_for(wave.index, metaop.index)
                    )
            if not devices:
                continue
            state_bytes = (
                self.memory_model.parameter_state_bytes(op, 1) * metaop.num_operators
            )
            label = op.param_key or f"{metaop.task}/{metaop.op_type}#{metaop.index}"
            if label in groups:
                existing_bytes, existing_devices = groups[label]
                groups[label] = (
                    max(existing_bytes, state_bytes),
                    existing_devices | devices,
                )
            else:
                groups[label] = (state_bytes, devices)
        return groups
