"""Mutable cluster view: applies events, derives fresh immutable topologies.

:class:`~repro.cluster.topology.ClusterTopology` is immutable after
construction — the planner, the placement pass and every cache key depend on
that.  Elastic scenarios therefore never mutate a topology: the
:class:`ElasticClusterView` tracks the *actual* substrate (which nodes exist,
which devices are alive, which nodes straggle) under **stable identifiers**,
and :meth:`ElasticClusterView.snapshot` derives a fresh, valid topology from
the current state — islands regrouped from the surviving devices, device ids
remapped contiguously, straggling nodes carrying a degraded spec.

The snapshot also records the mapping between stable device keys and the
derived topology's contiguous device ids; the plan-migration cost model uses
two snapshots' mappings to trace where a parameter shard physically lives
across a replan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.device import DeviceSpec
from repro.cluster.topology import (
    DEFAULT_INTER_ISLAND,
    DEFAULT_INTRA_DEVICE,
    DEFAULT_INTRA_ISLAND,
    ClusterTopology,
    InterconnectSpec,
)
from repro.elastic.events import (
    DEVICE_FAILURE,
    DEVICE_RECOVERY,
    NODE_JOIN,
    NODE_LEAVE,
    STRAGGLER_CLEAR,
    STRAGGLER_ONSET,
    ClusterEvent,
    ElasticEventError,
)


class ElasticViewError(Exception):
    """Raised when an event cannot be applied to the current cluster state."""


def device_key(node: int, device: int) -> str:
    """Stable identity of one physical device: node id + per-node slot."""
    return f"n{node}:d{device}"


@dataclass
class _NodeState:
    """Mutable state of one physical node under the view's stable node id.

    Straggler throttling is tracked *per device slot* (``factors[slot]`` is
    the remaining throughput fraction of that GPU).  A node-scoped straggler
    event sets every slot; a device-scoped one sets only its slot.  The node's
    effective spec paces on the slowest *alive* member — devices in one island
    execute wave entries in lockstep, so one slow GPU demotes exactly its own
    island's spec class and nothing else.
    """

    spec: DeviceSpec
    alive: list[bool]
    factors: list[float]

    @property
    def num_alive(self) -> int:
        return sum(self.alive)

    @property
    def straggler_factor(self) -> float:
        """Throughput fraction of the slowest alive device (1.0 = healthy)."""
        alive_factors = [f for f, up in zip(self.factors, self.alive) if up]
        if not alive_factors:
            return 1.0
        return min(alive_factors)

    @property
    def effective_spec(self) -> DeviceSpec:
        return self.spec.degraded(self.straggler_factor)


@dataclass(frozen=True, eq=False)
class ElasticSnapshot:
    """An immutable topology derived from the view, plus the id mapping.

    ``device_keys[i]`` is the stable key of the device holding contiguous id
    ``i`` in ``topology``; ``key_to_id`` is the inverse.  Keys of dead or
    departed devices are absent from both.  ``node_ids[j]`` is the stable node
    id behind island ``j`` of the derived topology.
    """

    topology: ClusterTopology
    device_keys: tuple[str, ...]
    key_to_id: dict[str, int]
    node_ids: tuple[int, ...]

    @property
    def signature(self) -> str:
        return self.topology.signature()

    def id_of(self, key: str) -> int | None:
        """Contiguous device id of a stable key, or ``None`` if gone."""
        return self.key_to_id.get(key)

    def spec_of_node(self, node_id: int) -> "DeviceSpec | None":
        """Effective spec of a stable node id, or ``None`` if absent."""
        try:
            island = self.node_ids.index(node_id)
        except ValueError:
            return None
        specs = self.topology.node_specs
        return specs[island] if specs is not None else self.topology.device_spec


class ElasticClusterView:
    """Tracks the physical substrate across cluster events.

    Parameters mirror :func:`~repro.cluster.topology.make_cluster`: the view
    starts from a healthy, homogeneous cluster and evolves from there.  Nodes
    receive monotonically increasing stable ids — a departed node's id is
    never recycled, so event streams can never alias an old node with a
    late-joining one.
    """

    def __init__(
        self,
        num_nodes: int,
        devices_per_node: int,
        device_spec: DeviceSpec,
        intra_island: InterconnectSpec = DEFAULT_INTRA_ISLAND,
        inter_island: InterconnectSpec = DEFAULT_INTER_ISLAND,
        intra_device: InterconnectSpec = DEFAULT_INTRA_DEVICE,
    ) -> None:
        if num_nodes <= 0 or devices_per_node <= 0:
            raise ElasticViewError("cluster dimensions must be positive")
        self.devices_per_node = devices_per_node
        self.intra_island = intra_island
        self.inter_island = inter_island
        self.intra_device = intra_device
        self._nodes: dict[int, _NodeState] = {
            node: _NodeState(
                spec=device_spec,
                alive=[True] * devices_per_node,
                factors=[1.0] * devices_per_node,
            )
            for node in range(num_nodes)
        }
        self._next_node_id = num_nodes
        self.events_applied = 0

    @classmethod
    def from_cluster(cls, cluster: ClusterTopology) -> "ElasticClusterView":
        """Start from an existing (healthy, rectangular) topology."""
        view = cls(
            num_nodes=cluster.num_nodes,
            devices_per_node=cluster.devices_per_node,
            device_spec=cluster.device_spec,
            intra_island=cluster.intra_island,
            inter_island=cluster.inter_island,
            intra_device=cluster.intra_device,
        )
        if cluster.node_specs is not None:
            for node, spec in enumerate(cluster.node_specs):
                view._nodes[node].spec = spec
        if cluster.island_sizes is not None:
            for node, size in enumerate(cluster.island_sizes):
                view._nodes[node].alive = [True] * size
                view._nodes[node].factors = [1.0] * size
        return view

    # ------------------------------------------------------------ inspection
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_alive_devices(self) -> int:
        return sum(node.num_alive for node in self._nodes.values())

    def node_ids(self) -> list[int]:
        return sorted(self._nodes)

    def straggling_nodes(self) -> list[int]:
        return sorted(
            node_id
            for node_id, node in self._nodes.items()
            if node.straggler_factor < 1.0
        )

    # ------------------------------------------------------------ mutation
    def apply(self, event: ClusterEvent) -> None:
        """Apply one event to the view, validating it against current state.

        Failure/recovery/leave events are strict (failing a dead device or
        leaving twice is a scenario bug).  Straggler events are idempotent:
        a second onset replaces the severity, a clear on a healthy node is a
        no-op — rolling-straggler timelines may overlap episodes on one node.
        """
        kind = event.kind
        if kind == NODE_JOIN:
            self._nodes[self._next_node_id] = _NodeState(
                spec=event.spec,
                alive=[True] * event.num_devices,
                factors=[1.0] * event.num_devices,
            )
            self._next_node_id += 1
        elif kind == NODE_LEAVE:
            self._node(event)  # validate the node exists
            del self._nodes[event.node]
        elif kind == DEVICE_FAILURE:
            node = self._node(event)
            self._check_slot(event, node)
            if not node.alive[event.device]:
                raise ElasticViewError(
                    f"{device_key(event.node, event.device)} is already down"
                )
            node.alive[event.device] = False
        elif kind == DEVICE_RECOVERY:
            node = self._node(event)
            self._check_slot(event, node)
            if node.alive[event.device]:
                raise ElasticViewError(
                    f"{device_key(event.node, event.device)} is already up"
                )
            node.alive[event.device] = True
        elif kind == STRAGGLER_ONSET:
            node = self._node(event)
            if event.device is not None:
                self._check_slot(event, node)
                node.factors[event.device] = event.severity
            else:
                node.factors = [event.severity] * len(node.factors)
        elif kind == STRAGGLER_CLEAR:
            node = self._node(event)
            if event.device is not None:
                self._check_slot(event, node)
                node.factors[event.device] = 1.0
            else:
                node.factors = [1.0] * len(node.factors)
        else:  # pragma: no cover - ClusterEvent validates kinds
            raise ElasticEventError(f"Unknown event kind {kind!r}")
        self.events_applied += 1

    def apply_all(self, events: list[ClusterEvent]) -> None:
        for event in events:
            self.apply(event)

    # ------------------------------------------------------------ snapshot
    def snapshot(self) -> ElasticSnapshot:
        """Derive a fresh, valid topology from the current state.

        Islands are regrouped from the nodes that still hold at least one
        alive device (in stable node-id order), device ids are remapped
        contiguously, and straggling nodes carry their degraded spec.  The
        view must retain at least one alive device.
        """
        island_sizes: list[int] = []
        node_specs: list[DeviceSpec] = []
        node_ids: list[int] = []
        keys: list[str] = []
        for node_id in sorted(self._nodes):
            node = self._nodes[node_id]
            alive_slots = [slot for slot, up in enumerate(node.alive) if up]
            if not alive_slots:
                continue
            island_sizes.append(len(alive_slots))
            node_specs.append(node.effective_spec)
            node_ids.append(node_id)
            keys.extend(device_key(node_id, slot) for slot in alive_slots)
        if not island_sizes:
            raise ElasticViewError("no alive devices left to build a topology from")
        topology = ClusterTopology(
            num_nodes=len(island_sizes),
            devices_per_node=max(island_sizes),
            device_spec=node_specs[0],
            intra_island=self.intra_island,
            inter_island=self.inter_island,
            intra_device=self.intra_device,
            island_sizes=tuple(island_sizes),
            node_specs=tuple(node_specs),
        )
        return ElasticSnapshot(
            topology=topology,
            device_keys=tuple(keys),
            key_to_id={key: index for index, key in enumerate(keys)},
            node_ids=tuple(node_ids),
        )

    # ------------------------------------------------------------ internals
    def _node(self, event: ClusterEvent) -> _NodeState:
        node = self._nodes.get(event.node)
        if node is None:
            raise ElasticViewError(f"No such node {event.node} (it left or never joined)")
        return node

    @staticmethod
    def _check_slot(event: ClusterEvent, node: _NodeState) -> None:
        if not 0 <= event.device < len(node.alive):
            raise ElasticViewError(
                f"Node {event.node} has no device slot {event.device}"
            )
