"""Benchmark runner: shared workload cache, context, and parallel execution.

The runner executes registered :class:`~repro.bench.registry.BenchmarkSpec`
entries and wraps their metric dicts into
:class:`~repro.bench.result.BenchResult` records stamped with git/config
provenance and the canonical fingerprint of every workload the benchmark
touched.

Workload construction (task lists and cluster topologies) is memoized in a
thread-safe :class:`WorkloadCache` shared across all benchmarks of a run —
the same cache object the pytest suite exposes as the
``once_per_session_cache`` fixture, so the Fig. 8/11/16 grids build each
workload once per session.
"""

from __future__ import annotations

import platform
import subprocess
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from datetime import datetime, timezone
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.bench.registry import BenchmarkSpec
from repro.bench.result import BenchResult, Metric
from repro.service.fingerprint import canonical_cluster, canonical_tasks, hash_document

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.topology import ClusterTopology
    from repro.experiments.workloads import WorkloadSpec
    from repro.graph.task import SpindleTask


class WorkloadCache:
    """Thread-safe, session-wide memoization of built workloads.

    Keyed by ``WorkloadSpec.name``; ``tasks``/``cluster`` build on first use
    and return the same objects afterwards (task lists and topologies are not
    consumed by the systems, so sharing them across benchmarks is safe).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tasks: dict[str, list] = {}
        self._clusters: dict[str, Any] = {}
        self._fingerprints: dict[str, str] = {}
        self._extras: dict[str, Any] = {}

    def _memoize(self, store: dict, key: str, build: Callable[[], Any]) -> Any:
        """Check-build-insert without holding the lock across ``build()``.

        Building outside the lock keeps parallel runners from serializing on
        workload construction (and keeps a ``build`` that itself consults the
        cache from deadlocking); concurrent duplicate builds are possible but
        harmless — construction is pure and the first insert wins.
        """
        with self._lock:
            if key in store:
                return store[key]
        built = build()
        with self._lock:
            return store.setdefault(key, built)

    def tasks(self, spec: "WorkloadSpec") -> "list[SpindleTask]":
        return self._memoize(self._tasks, spec.name, spec.tasks)

    def cluster(self, spec: "WorkloadSpec") -> "ClusterTopology":
        return self._memoize(self._clusters, spec.name, spec.cluster)

    def fingerprint(self, spec: "WorkloadSpec") -> str:
        """Canonical content hash of the workload's tasks + cluster."""
        tasks = self.tasks(spec)
        cluster = self.cluster(spec)
        return self._memoize(
            self._fingerprints,
            spec.name,
            lambda: hash_document(
                {
                    "tasks": canonical_tasks(tasks),
                    "cluster": canonical_cluster(cluster),
                }
            ),
        )

    def cached_names(self) -> list[str]:
        with self._lock:
            return sorted(set(self._tasks) | set(self._clusters))

    def get_or_build(self, key: str, build: Callable[[], Any]) -> Any:
        """Generic memoization slot for non-workload shared state."""
        return self._memoize(self._extras, key, build)


class BenchContext:
    """Per-benchmark view handed to registered benchmark functions.

    Provides memoized workload construction through the run's shared
    :class:`WorkloadCache` and records which workloads the benchmark used, so
    the runner can stamp the result with their canonical fingerprint.
    """

    def __init__(self, cache: WorkloadCache) -> None:
        self.cache = cache
        self._used: dict[str, "WorkloadSpec"] = {}

    def tasks(self, spec: "WorkloadSpec") -> "list[SpindleTask]":
        self._used[spec.name] = spec
        return self.cache.tasks(spec)

    def cluster(self, spec: "WorkloadSpec") -> "ClusterTopology":
        self._used[spec.name] = spec
        return self.cache.cluster(spec)

    def workload(self, spec: "WorkloadSpec") -> "tuple[list[SpindleTask], ClusterTopology]":
        return self.tasks(spec), self.cluster(spec)

    @property
    def used_workloads(self) -> list[str]:
        return sorted(self._used)

    def fingerprint(self) -> str:
        """Combined canonical fingerprint of every workload used."""
        if not self._used:
            return ""
        parts = {
            name: self.cache.fingerprint(spec)
            for name, spec in sorted(self._used.items())
        }
        if len(parts) == 1:
            return next(iter(parts.values()))
        return hash_document(parts)


def git_metadata() -> dict[str, Any]:
    """Best-effort git provenance of the working tree (empty off-repo)."""

    def run(*argv: str) -> str | None:
        try:
            proc = subprocess.run(
                ["git", *argv], capture_output=True, text=True, timeout=10
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        return proc.stdout.strip()

    commit = run("rev-parse", "HEAD")
    if commit is None:
        return {}
    status = run("status", "--porcelain")
    return {"git_commit": commit, "git_dirty": bool(status)}


def run_metadata() -> dict[str, Any]:
    """Provenance shared by every result of one runner invocation."""
    metadata: dict[str, Any] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    metadata.update(git_metadata())
    return metadata


def run_benchmark(
    spec: BenchmarkSpec,
    cache: WorkloadCache,
    metadata: dict[str, Any] | None = None,
) -> BenchResult:
    """Execute one benchmark and wrap its metrics into a :class:`BenchResult`."""
    context = BenchContext(cache)
    start = time.perf_counter()
    metrics = spec.func(context)
    duration = time.perf_counter() - start
    if not isinstance(metrics, dict) or not all(
        isinstance(m, Metric) for m in metrics.values()
    ):
        raise TypeError(
            f"benchmark {spec.name!r} must return a dict of Metric, "
            f"got {type(metrics).__name__}"
        )
    result = BenchResult(
        name=spec.name,
        metrics=dict(metrics),
        figure=spec.figure,
        stage=spec.stage,
        tags=tuple(sorted(spec.tags)),
        workloads=tuple(context.used_workloads),
        workload_fingerprint=context.fingerprint(),
        metadata=dict(metadata or {}),
    )
    return result.with_metadata(duration_seconds=round(duration, 4))


def run_benchmarks(
    specs: Sequence[BenchmarkSpec],
    *,
    cache: WorkloadCache | None = None,
    jobs: int = 1,
    on_result: Callable[[BenchResult], None] | None = None,
) -> list[BenchResult]:
    """Run ``specs`` (in parallel when ``jobs > 1``) and collect their results.

    Results are returned in spec order regardless of completion order.  The
    shared metadata (git commit, platform, timestamp) is captured once per
    invocation so every result of a run carries identical provenance.
    """
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    cache = cache if cache is not None else WorkloadCache()
    metadata = run_metadata()

    def execute(spec: BenchmarkSpec) -> BenchResult:
        result = run_benchmark(spec, cache, metadata)
        if on_result is not None:
            on_result(result)
        return result

    if jobs == 1 or len(specs) <= 1:
        return [execute(spec) for spec in specs]
    with ThreadPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
        return list(pool.map(execute, specs))
