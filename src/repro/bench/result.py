"""Structured benchmark results: the ``BENCH_<name>.json`` schema.

Every registered benchmark emits one :class:`BenchResult` — a named bag of
:class:`Metric` values plus enough provenance (workload fingerprint, git
commit, planner/config metadata) to make two results comparable.  The JSON
serialization is the machine-readable record CI gates on; the paper-style
tables under ``reports/`` are a rendering of the same data.

Schema (version 1), as written to ``BENCH_<name>.json``::

    {
      "schema_version": 1,
      "name": "fig08_end_to_end",
      "figure": "fig08",
      "stage": "simulation",
      "tags": ["end-to-end", "figure", "smoke"],
      "metrics": {
        "<metric>": {
          "value": 1.42,
          "unit": "x",
          "higher_is_better": true,
          "regression_threshold": 0.2,  // fraction; null => informational
          "two_sided": true             // optional: gate drift both ways
        },
        ...
      },
      "workloads": ["multitask-clip-4tasks-8gpus", ...],
      "workload_fingerprint": "sha256 over the canonical workload documents",
      "metadata": {"git_commit": ..., "git_dirty": ..., "python": ...,
                    "created_at": ..., "duration_seconds": ...}
    }
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

#: Version of the ``BENCH_*.json`` schema written by :meth:`BenchResult.to_dict`.
SCHEMA_VERSION = 1

#: Default allowed fractional regression before a metric fails the gate (20%).
DEFAULT_REGRESSION_THRESHOLD = 0.2

#: Filename prefix of serialized results; ``BENCH_<name>.json``.
RESULT_FILE_PREFIX = "BENCH_"


class SchemaError(ValueError):
    """A document does not conform to the ``BENCH_*.json`` schema."""


@dataclass(frozen=True)
class Metric:
    """One measured quantity of a benchmark run.

    ``regression_threshold`` is the fractional change past which the metric is
    considered regressed when compared against a baseline: ``0.2`` allows a
    20% slowdown (or, for ``higher_is_better`` metrics, a 20% drop).  ``None``
    marks the metric informational — recorded and diffed but never gated,
    which is how wall-clock timings (machine-dependent) are treated.

    ``two_sided`` gates movement in *either* direction past the threshold —
    for invariant-style metrics (operator counts, parameter counts) where a
    drop is just as much a bug as a rise and must never pass as "improved".
    """

    value: float
    unit: str = ""
    higher_is_better: bool = False
    regression_threshold: float | None = DEFAULT_REGRESSION_THRESHOLD
    two_sided: bool = False

    @property
    def gated(self) -> bool:
        return self.regression_threshold is not None

    def to_dict(self) -> dict[str, Any]:
        document = {
            "value": self.value,
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "regression_threshold": self.regression_threshold,
        }
        if self.two_sided:
            document["two_sided"] = True
        return document

    @staticmethod
    def from_dict(document: Mapping[str, Any]) -> "Metric":
        if "value" not in document:
            raise SchemaError("metric document is missing 'value'")
        threshold = document.get("regression_threshold", DEFAULT_REGRESSION_THRESHOLD)
        if threshold is not None:
            threshold = float(threshold)
        return Metric(
            value=float(document["value"]),
            unit=str(document.get("unit", "")),
            higher_is_better=bool(document.get("higher_is_better", False)),
            regression_threshold=threshold,
            two_sided=bool(document.get("two_sided", False)),
        )


def informational(value: float, unit: str = "") -> Metric:
    """A non-gated metric (wall-clock timings and other machine noise)."""
    return Metric(value=value, unit=unit, regression_threshold=None)


def invariant(value: float, unit: str = "", threshold: float = 0.0) -> Metric:
    """A two-sided gated metric: any drift past ``threshold`` is a regression.

    For contract quantities (operator counts, parameter counts) where a drop
    is just as much a bug as a rise.
    """
    return Metric(
        value=value, unit=unit, regression_threshold=threshold, two_sided=True
    )


@dataclass
class BenchResult:
    """Structured result of one benchmark run."""

    name: str
    metrics: dict[str, Metric]
    figure: str | None = None
    stage: str = ""
    tags: tuple[str, ...] = ()
    workloads: tuple[str, ...] = ()
    workload_fingerprint: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)

    def metric(self, name: str) -> Metric:
        return self.metrics[name]

    def value(self, name: str) -> float:
        return self.metrics[name].value

    @property
    def filename(self) -> str:
        return f"{RESULT_FILE_PREFIX}{self.name}.json"

    def with_metadata(self, **entries: Any) -> "BenchResult":
        merged = dict(self.metadata)
        merged.update(entries)
        return replace(self, metadata=merged)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "figure": self.figure,
            "stage": self.stage,
            "tags": sorted(self.tags),
            "metrics": {name: m.to_dict() for name, m in sorted(self.metrics.items())},
            "workloads": sorted(self.workloads),
            "workload_fingerprint": self.workload_fingerprint,
            "metadata": dict(self.metadata),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)

    @staticmethod
    def from_dict(document: Mapping[str, Any]) -> "BenchResult":
        version = document.get("schema_version")
        if version != SCHEMA_VERSION:
            raise SchemaError(
                f"unsupported BENCH schema version {version!r} (expected {SCHEMA_VERSION})"
            )
        for key in ("name", "metrics"):
            if key not in document:
                raise SchemaError(f"BENCH document is missing {key!r}")
        metrics_doc = document["metrics"]
        if not isinstance(metrics_doc, Mapping):
            raise SchemaError("'metrics' must be an object of metric documents")
        return BenchResult(
            name=str(document["name"]),
            metrics={name: Metric.from_dict(m) for name, m in metrics_doc.items()},
            figure=document.get("figure"),
            stage=str(document.get("stage", "")),
            tags=tuple(document.get("tags", ())),
            workloads=tuple(document.get("workloads", ())),
            workload_fingerprint=str(document.get("workload_fingerprint", "")),
            metadata=dict(document.get("metadata", {})),
        )

    @staticmethod
    def from_json(text: str) -> "BenchResult":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"invalid BENCH JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise SchemaError("BENCH document must be a JSON object")
        return BenchResult.from_dict(document)

    def save(self, directory: str | os.PathLike) -> Path:
        """Write ``BENCH_<name>.json`` under ``directory`` and return its path."""
        base = Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        path = base / self.filename
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @staticmethod
    def load(path: str | os.PathLike) -> "BenchResult":
        return BenchResult.from_json(Path(path).read_text(encoding="utf-8"))


def load_results(directory: str | os.PathLike) -> dict[str, BenchResult]:
    """Load every ``BENCH_*.json`` under ``directory``, keyed by benchmark name."""
    base = Path(directory)
    if not base.is_dir():
        raise FileNotFoundError(f"no such results directory: {base}")
    results: dict[str, BenchResult] = {}
    for path in sorted(base.glob(f"{RESULT_FILE_PREFIX}*.json")):
        result = BenchResult.load(path)
        results[result.name] = result
    return results
