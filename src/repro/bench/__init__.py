"""Benchmark subsystem: registry, structured results and regression gating.

Turns the ad-hoc ``benchmarks/bench_fig*.py`` scripts into a first-class,
machine-driven suite:

* :mod:`repro.bench.registry` — :class:`BenchmarkSpec` registry enumerating
  every figure/table/ablation benchmark with tags,
* :mod:`repro.bench.result` — the structured :class:`BenchResult` schema
  serialized to ``BENCH_<name>.json``,
* :mod:`repro.bench.baseline` — baseline store and per-metric regression
  comparison with configurable thresholds,
* :mod:`repro.bench.runner` — shared workload cache and a parallel runner,
* :mod:`repro.bench.cli` — the ``repro bench list|run|compare`` subcommands.
"""

from repro.bench.baseline import (
    FAILING_STATUSES,
    STATUS_IMPROVED,
    STATUS_INFO,
    STATUS_MISSING,
    STATUS_NEW,
    STATUS_OK,
    STATUS_REGRESSED,
    BenchComparison,
    MetricDelta,
    compare_metric,
    compare_results,
)
from repro.bench.registry import (
    REGISTRY,
    BenchmarkRegistry,
    BenchmarkSpec,
    benchmark_modules,
    discover,
    register_benchmark,
)
from repro.bench.result import (
    DEFAULT_REGRESSION_THRESHOLD,
    SCHEMA_VERSION,
    BenchResult,
    Metric,
    SchemaError,
    informational,
    invariant,
    load_results,
)
from repro.bench.runner import (
    BenchContext,
    WorkloadCache,
    run_benchmark,
    run_benchmarks,
)

__all__ = [
    "BenchComparison",
    "BenchContext",
    "BenchResult",
    "BenchmarkRegistry",
    "BenchmarkSpec",
    "DEFAULT_REGRESSION_THRESHOLD",
    "FAILING_STATUSES",
    "Metric",
    "MetricDelta",
    "REGISTRY",
    "SCHEMA_VERSION",
    "STATUS_IMPROVED",
    "STATUS_INFO",
    "STATUS_MISSING",
    "STATUS_NEW",
    "STATUS_OK",
    "STATUS_REGRESSED",
    "SchemaError",
    "WorkloadCache",
    "benchmark_modules",
    "compare_metric",
    "compare_results",
    "discover",
    "informational",
    "invariant",
    "load_results",
    "register_benchmark",
    "run_benchmark",
    "run_benchmarks",
]
