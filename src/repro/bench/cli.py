"""``repro bench`` subcommands: list, run and compare registered benchmarks.

The suite directory (``benchmarks/`` with the ``bench_*.py`` modules) is
discovered from ``--suite``, the ``REPRO_BENCH_DIR`` environment variable, a
``benchmarks/`` directory under the working directory, or the repository
checkout the package was imported from, in that order.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.bench.baseline import BenchComparison, compare_results
from repro.bench.registry import REGISTRY, discover
from repro.bench.result import BenchResult, load_results
from repro.bench.runner import WorkloadCache, run_benchmarks
from repro.experiments.reporting import (
    format_markdown_table,
    format_table,
    render_bench_result,
    write_report,
)

#: Default directory ``repro bench run`` writes ``BENCH_*.json`` files into.
DEFAULT_OUTPUT_DIR = "bench_results"


def default_suite_dir() -> Path | None:
    """Locate the on-disk benchmark suite (see module docstring for the order)."""
    env = os.environ.get("REPRO_BENCH_DIR")
    if env:
        return Path(env)
    cwd_suite = Path.cwd() / "benchmarks"
    if cwd_suite.is_dir():
        return cwd_suite
    # src/repro/bench/cli.py -> src/repro -> src -> checkout root.
    checkout = Path(__file__).resolve().parents[3] / "benchmarks"
    if checkout.is_dir():
        return checkout
    return None


def _load_suite(args: argparse.Namespace) -> int:
    suite = Path(args.suite) if args.suite else default_suite_dir()
    if suite is None:
        print(
            "error: cannot locate the benchmark suite; pass --suite or set "
            "REPRO_BENCH_DIR",
            file=sys.stderr,
        )
        return 1
    discover(suite)
    return 0


def _selected_specs(args: argparse.Namespace):
    try:
        return REGISTRY.select(names=args.names or None, tags=args.tags or None)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return None


def cmd_list(args: argparse.Namespace) -> int:
    if _load_suite(args):
        return 1
    specs = _selected_specs(args)
    if specs is None:
        return 1
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "name": spec.name,
                        "figure": spec.figure,
                        "stage": spec.stage,
                        "tags": sorted(spec.tags),
                        "module": spec.module,
                        "description": spec.description,
                    }
                    for spec in specs
                ],
                indent=2,
            )
        )
        return 0
    rows = [
        [
            spec.name,
            spec.figure or "-",
            spec.stage,
            ",".join(sorted(spec.tags)),
            spec.description,
        ]
        for spec in specs
    ]
    print(
        format_table(
            ["benchmark", "figure", "stage", "tags", "description"],
            rows,
            title=f"{len(specs)} registered benchmarks",
        )
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if _load_suite(args):
        return 1
    specs = _selected_specs(args)
    if specs is None:
        return 1
    if not specs:
        print("error: no benchmarks match the requested names/tags", file=sys.stderr)
        return 1

    def announce(result: BenchResult) -> None:
        duration = result.metadata.get("duration_seconds", 0.0)
        print(
            f"  {result.name}: {len(result.metrics)} metrics "
            f"in {duration:.2f}s",
            file=sys.stderr,
        )

    print(f"running {len(specs)} benchmarks ...", file=sys.stderr)
    results = run_benchmarks(
        specs, cache=WorkloadCache(), jobs=args.jobs, on_result=announce
    )

    output_dir = Path(args.output)
    for result in results:
        result.save(output_dir)
        write_report(f"BENCH_{result.name}", render_bench_result(result))
    print(
        f"wrote {len(results)} BENCH_*.json files to {output_dir}", file=sys.stderr
    )

    comparison = None
    if args.baseline:
        try:
            baseline = load_results(args.baseline)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        current = {result.name: result for result in results}
        comparison = compare_results(
            baseline, current, threshold_override=args.threshold
        )

    if args.json:
        # One parseable document even when a comparison rides along.
        documents = [result.to_dict() for result in results]
        if comparison is None:
            print(json.dumps(documents, indent=2))
        else:
            print(
                json.dumps(
                    {"results": documents, "comparison": comparison.to_dict()},
                    indent=2,
                )
            )
    else:
        for result in results:
            print(render_bench_result(result))
            print()
        if comparison is not None:
            _print_comparison(comparison, as_json=False)

    if comparison is not None:
        if args.summary_file:
            _write_summary(comparison, args.summary_file)
        return _gate(comparison, args.fail_on_regress)
    if args.summary_file:
        print(
            "warning: --summary-file has no comparison to write "
            "(pass --baseline)",
            file=sys.stderr,
        )
    return 0


def _gate(comparison: BenchComparison, fail_on_regress: bool) -> int:
    for delta in comparison.failures:
        print(f"regression: {delta.describe()}", file=sys.stderr)
    if fail_on_regress and not comparison.passed:
        print(
            f"FAIL: {len(comparison.failures)} gated metric(s) regressed or "
            "went missing",
            file=sys.stderr,
        )
        return 2
    return 0


def _print_comparison(comparison: BenchComparison, as_json: bool) -> None:
    if as_json:
        print(json.dumps(comparison.to_dict(), indent=2))
        return
    counts = ", ".join(f"{k}={v}" for k, v in sorted(comparison.counts().items()))
    print(
        format_table(
            ["benchmark", "metric", "baseline", "current", "delta", "unit", "status"],
            comparison.as_rows(),
            title=f"benchmark comparison ({counts or 'no metrics'})",
        )
    )


def comparison_markdown(comparison: BenchComparison) -> str:
    """The comparison delta table as GitHub-flavoured markdown.

    This is what CI appends to ``$GITHUB_STEP_SUMMARY`` so regressions and
    improvements are visible on the workflow run page without downloading
    result artifacts.
    """
    counts = ", ".join(f"{k}={v}" for k, v in sorted(comparison.counts().items()))
    verdict = "✅ passed" if comparison.passed else "❌ failed"
    lines = [
        f"### Benchmark comparison — {verdict}",
        "",
        f"_{counts or 'no metrics'}_",
        "",
        format_markdown_table(
            ["benchmark", "metric", "baseline", "current", "delta", "unit", "status"],
            comparison.as_rows(),
        ),
    ]
    if comparison.failures:
        lines += ["", "**Failures**", ""]
        lines += [f"- {delta.describe()}" for delta in comparison.failures]
    return "\n".join(lines) + "\n"


def _write_summary(comparison: BenchComparison, path: str) -> None:
    """Append the markdown delta table to ``path`` (step-summary semantics)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(comparison_markdown(comparison) + "\n")


def cmd_compare(args: argparse.Namespace) -> int:
    try:
        baseline = load_results(args.baseline)
        current = load_results(args.current)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    comparison = compare_results(baseline, current, threshold_override=args.threshold)
    _print_comparison(comparison, as_json=args.json)
    if args.summary_file:
        _write_summary(comparison, args.summary_file)
    return _gate(comparison, args.fail_on_regress)


#: ``--help`` epilog: gated metrics and the registry export are documented
#: alongside the span/metric inventory.
DOCS_EPILOG = "Docs: docs/observability.md (bench metrics, gating, registry export)"


def add_bench_subparsers(subparsers) -> None:
    """Attach ``bench list|run|compare`` under the top-level ``repro`` parser."""
    bench = subparsers.add_parser(
        "bench",
        help="registered benchmark suite: list, run, compare",
        epilog=DOCS_EPILOG,
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    def add_selection(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--suite", default=None, help="benchmark suite directory (bench_*.py)"
        )
        parser.add_argument(
            "--tag",
            dest="tags",
            action="append",
            default=[],
            help="only benchmarks carrying this tag (repeatable, ANDed)",
        )
        parser.add_argument(
            "--name",
            dest="names",
            action="append",
            default=[],
            help="benchmark name to include (repeatable)",
        )

    list_parser = bench_sub.add_parser(
        "list", help="enumerate registered benchmarks", epilog=DOCS_EPILOG
    )
    add_selection(list_parser)
    list_parser.add_argument(
        "--json", action="store_true", help="machine-readable listing"
    )
    list_parser.set_defaults(func=cmd_list)

    run_parser = bench_sub.add_parser(
        "run",
        help="run benchmarks and write BENCH_*.json results",
        epilog=DOCS_EPILOG,
    )
    add_selection(run_parser)
    run_parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT_DIR,
        help=f"directory for BENCH_*.json files (default: {DEFAULT_OUTPUT_DIR})",
    )
    run_parser.add_argument(
        "--jobs", type=int, default=1, help="parallel benchmark workers"
    )
    run_parser.add_argument(
        "--json", action="store_true", help="print the full results as JSON"
    )
    run_parser.add_argument(
        "--baseline", default=None, help="baseline directory to compare against"
    )
    run_parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="override every gated metric's regression threshold (fraction)",
    )
    run_parser.add_argument(
        "--fail-on-regress",
        action="store_true",
        help="exit non-zero when a gated metric regresses vs the baseline",
    )
    run_parser.add_argument(
        "--summary-file",
        default=None,
        help="append the comparison as a markdown table to this file "
        '(e.g. "$GITHUB_STEP_SUMMARY"); needs --baseline',
    )
    run_parser.set_defaults(func=cmd_run)

    compare_parser = bench_sub.add_parser(
        "compare",
        help="diff two BENCH_*.json result directories",
        epilog=DOCS_EPILOG,
    )
    compare_parser.add_argument(
        "--baseline", required=True, help="baseline results directory"
    )
    compare_parser.add_argument(
        "--current",
        default=DEFAULT_OUTPUT_DIR,
        help=f"current results directory (default: {DEFAULT_OUTPUT_DIR})",
    )
    compare_parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="override every gated metric's regression threshold (fraction)",
    )
    compare_parser.add_argument(
        "--fail-on-regress",
        action="store_true",
        help="exit non-zero when a gated metric regresses past its threshold",
    )
    compare_parser.add_argument(
        "--json", action="store_true", help="machine-readable comparison"
    )
    compare_parser.add_argument(
        "--summary-file",
        default=None,
        help="append the comparison as a markdown table to this file "
        '(e.g. "$GITHUB_STEP_SUMMARY")',
    )
    compare_parser.set_defaults(func=cmd_compare)
