"""Benchmark registry: every figure/table/ablation benchmark, enumerable.

The ``benchmarks/bench_*.py`` modules register one benchmark each (a few
register two — a smoke subset and the full grid) via the
:func:`register_benchmark` decorator.  A registered benchmark is a callable
``func(ctx) -> dict[str, Metric]`` taking a
:class:`~repro.bench.runner.BenchContext`; the runner wraps the returned
metrics into a :class:`~repro.bench.result.BenchResult`.

The registry is what makes the suite machine-driven: ``repro bench list``
enumerates it, ``repro bench run --tag smoke`` filters it, and CI gates on the
results of the selected subset.
"""

from __future__ import annotations

import importlib.util
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

#: Module filename pattern of the on-disk benchmark suite.
BENCH_MODULE_GLOB = "bench_*.py"

#: Modules of the suite directory that hold helpers, not benchmarks.
NON_BENCHMARK_MODULES = frozenset({"bench_utils", "conftest"})


@dataclass(frozen=True)
class BenchmarkSpec:
    """One registered benchmark: identity, classification and its runner."""

    name: str
    func: Callable = field(compare=False)
    figure: str | None = None
    stage: str = "simulation"
    tags: frozenset[str] = frozenset()
    description: str = ""
    module: str = ""

    def matches(self, tags: Iterable[str]) -> bool:
        """True when the spec carries every requested tag."""
        return set(tags) <= self.tags


class BenchmarkRegistry:
    """Name-keyed store of :class:`BenchmarkSpec`, with tag-based selection."""

    def __init__(self) -> None:
        self._specs: dict[str, BenchmarkSpec] = {}

    def register(
        self,
        name: str,
        *,
        figure: str | None = None,
        stage: str = "simulation",
        tags: Sequence[str] = (),
        description: str = "",
    ) -> Callable[[Callable], Callable]:
        """Decorator registering ``func`` as benchmark ``name``.

        Re-registering the same name from the same module replaces the entry
        (modules may be imported both by pytest and by CLI discovery);
        registering it from a *different* module is a collision and raises.
        """

        def decorate(func: Callable) -> Callable:
            module = getattr(func, "__module__", "") or ""
            existing = self._specs.get(name)
            if existing is not None and existing.module != module:
                raise ValueError(
                    f"benchmark {name!r} already registered by module "
                    f"{existing.module!r} (re-registration from {module!r})"
                )
            self._specs[name] = BenchmarkSpec(
                name=name,
                func=func,
                figure=figure,
                stage=stage,
                tags=frozenset(tags),
                description=description,
                module=module,
            )
            return func

        return decorate

    # --------------------------------------------------------------- querying
    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def get(self, name: str) -> BenchmarkSpec:
        if name not in self._specs:
            raise KeyError(
                f"unknown benchmark {name!r}; registered: {self.names()}"
            )
        return self._specs[name]

    def names(self) -> list[str]:
        return sorted(self._specs)

    def specs(self) -> list[BenchmarkSpec]:
        return [self._specs[name] for name in self.names()]

    def tags(self) -> list[str]:
        return sorted({tag for spec in self._specs.values() for tag in spec.tags})

    def select(
        self,
        names: Sequence[str] | None = None,
        tags: Sequence[str] | None = None,
    ) -> list[BenchmarkSpec]:
        """Specs matching the requested names and carrying all requested tags."""
        if names:
            selected = [self.get(name) for name in names]
        else:
            selected = self.specs()
        if tags:
            selected = [spec for spec in selected if spec.matches(tags)]
        return selected


#: The process-global registry the benchmark modules register into.
REGISTRY = BenchmarkRegistry()


def register_benchmark(
    name: str,
    *,
    figure: str | None = None,
    stage: str = "simulation",
    tags: Sequence[str] = (),
    description: str = "",
) -> Callable[[Callable], Callable]:
    """Register a benchmark into the global :data:`REGISTRY`."""
    return REGISTRY.register(
        name, figure=figure, stage=stage, tags=tags, description=description
    )


def benchmark_modules(directory: str | Path) -> list[Path]:
    """The ``bench_*.py`` benchmark modules on disk, helper modules excluded."""
    base = Path(directory)
    return sorted(
        path
        for path in base.glob(BENCH_MODULE_GLOB)
        if path.stem not in NON_BENCHMARK_MODULES
    )


def discover(directory: str | Path) -> list[str]:
    """Import every benchmark module under ``directory``, populating the registry.

    Returns the imported module names.  The suite directory is added to
    ``sys.path`` so sibling helper imports (``from bench_utils import ...``)
    resolve exactly as they do under pytest.
    """
    base = Path(directory).resolve()
    if not base.is_dir():
        raise FileNotFoundError(f"no such benchmark suite directory: {base}")
    if str(base) not in sys.path:
        sys.path.insert(0, str(base))
    imported = []
    for path in benchmark_modules(base):
        module_name = path.stem
        if module_name not in sys.modules:
            spec = importlib.util.spec_from_file_location(module_name, path)
            if spec is None or spec.loader is None:  # pragma: no cover - defensive
                raise ImportError(f"cannot load benchmark module {path}")
            module = importlib.util.module_from_spec(spec)
            sys.modules[module_name] = module
            try:
                spec.loader.exec_module(module)
            except BaseException:
                sys.modules.pop(module_name, None)
                raise
        imported.append(module_name)
    return imported
