"""Baseline store and regression comparison for benchmark results.

A *baseline* is a directory of committed ``BENCH_*.json`` files (the repo
ships one under ``benchmarks/baselines/``).  :func:`compare_results` diffs a
current result set against it metric by metric and classifies every pair:

``ok``
    within the metric's regression threshold (or moved in the good direction
    by less than the threshold),
``improved``
    moved in the good direction past the threshold,
``regressed``
    moved in the bad direction past the threshold — fails the gate,
``missing``
    a metric present in the baseline but absent from the current result of a
    benchmark that did run (the metric silently disappeared) — fails the
    gate.  A baseline *benchmark* entirely absent from the current set is
    skipped instead: partial runs (``--tag`` filters) must not fail baselines
    they never executed; the tier-1 suite separately pins the committed
    baseline to the smoke set so whole benchmarks cannot vanish unnoticed,
``new``
    present only in the current results — recorded, never fails,
``info``
    a non-gated metric (``regression_threshold`` null); diffed, never fails.

The threshold and direction (``higher_is_better``) come from the *baseline*
metric: the committed baseline defines the contract a PR is gated against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.bench.result import BenchResult, Metric

STATUS_OK = "ok"
STATUS_IMPROVED = "improved"
STATUS_REGRESSED = "regressed"
STATUS_MISSING = "missing"
STATUS_NEW = "new"
STATUS_INFO = "info"

#: Statuses that fail the gate under ``--fail-on-regress``.
FAILING_STATUSES = (STATUS_REGRESSED, STATUS_MISSING)


@dataclass(frozen=True)
class MetricDelta:
    """One metric's change between baseline and current results."""

    benchmark: str
    metric: str
    status: str
    baseline_value: float | None
    current_value: float | None
    unit: str = ""
    delta_fraction: float | None = None
    threshold: float | None = None
    higher_is_better: bool = False

    @property
    def failed(self) -> bool:
        return self.status in FAILING_STATUSES

    def describe(self) -> str:
        def fmt(value: float | None) -> str:
            return "-" if value is None else f"{value:.4g}{self.unit and ' ' + self.unit}"

        delta = (
            "-"
            if self.delta_fraction is None
            else f"{self.delta_fraction * 100:+.1f}%"
        )
        return (
            f"{self.benchmark}/{self.metric}: {fmt(self.baseline_value)} -> "
            f"{fmt(self.current_value)} ({delta}, {self.status})"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "metric": self.metric,
            "status": self.status,
            "baseline_value": self.baseline_value,
            "current_value": self.current_value,
            "unit": self.unit,
            "delta_fraction": self.delta_fraction,
            "threshold": self.threshold,
            "higher_is_better": self.higher_is_better,
        }


@dataclass
class BenchComparison:
    """Full diff of a current result set against a baseline."""

    deltas: list[MetricDelta]

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.status == STATUS_REGRESSED]

    @property
    def missing(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.status == STATUS_MISSING]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.status == STATUS_IMPROVED]

    @property
    def failures(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.failed]

    @property
    def passed(self) -> bool:
        return not self.failures

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for delta in self.deltas:
            counts[delta.status] = counts.get(delta.status, 0) + 1
        return counts

    def to_dict(self) -> dict[str, Any]:
        return {
            "passed": self.passed,
            "counts": self.counts(),
            "deltas": [d.to_dict() for d in self.deltas],
        }

    def as_rows(self) -> list[list[str]]:
        """``(benchmark, metric, baseline, current, delta, status)`` table rows."""
        rows = []
        for d in self.deltas:
            rows.append(
                [
                    d.benchmark,
                    d.metric,
                    "-" if d.baseline_value is None else f"{d.baseline_value:.4g}",
                    "-" if d.current_value is None else f"{d.current_value:.4g}",
                    "-"
                    if d.delta_fraction is None
                    else f"{d.delta_fraction * 100:+.1f}%",
                    d.unit,
                    d.status,
                ]
            )
        return rows


def _delta_fraction(baseline: float, current: float) -> float | None:
    if baseline == 0:
        return None if current == 0 else float("inf") if current > 0 else float("-inf")
    return (current - baseline) / abs(baseline)


def compare_metric(
    benchmark: str,
    name: str,
    baseline: Metric,
    current: Metric,
    threshold_override: float | None = None,
) -> MetricDelta:
    """Classify one metric's movement between baseline and current."""
    threshold = baseline.regression_threshold
    if threshold_override is not None and baseline.gated:
        threshold = threshold_override
    higher_is_better = baseline.higher_is_better
    delta = _delta_fraction(baseline.value, current.value)

    if threshold is None:
        status = STATUS_INFO
    elif delta is None:
        status = STATUS_OK
    elif baseline.two_sided:
        status = STATUS_REGRESSED if abs(delta) > threshold else STATUS_OK
    else:
        bad = -delta if higher_is_better else delta
        if bad > threshold:
            status = STATUS_REGRESSED
        elif bad < -threshold:
            status = STATUS_IMPROVED
        else:
            status = STATUS_OK
    return MetricDelta(
        benchmark=benchmark,
        metric=name,
        status=status,
        baseline_value=baseline.value,
        current_value=current.value,
        unit=baseline.unit or current.unit,
        delta_fraction=delta,
        threshold=threshold,
        higher_is_better=higher_is_better,
    )


def compare_results(
    baseline: Mapping[str, BenchResult],
    current: Mapping[str, BenchResult],
    threshold_override: float | None = None,
) -> BenchComparison:
    """Diff two result sets (as returned by :func:`repro.bench.load_results`).

    Only benchmarks present in the *current* set are gated for per-metric
    regressions; a baseline benchmark entirely absent from the current set is
    reported as ``missing`` only when the current set is a full run (i.e. the
    caller passes current results for it) — partial runs (``--tag`` filters)
    simply skip baselines they did not execute.
    """
    deltas: list[MetricDelta] = []
    for name in sorted(current):
        current_result = current[name]
        baseline_result = baseline.get(name)
        if baseline_result is None:
            for metric_name in sorted(current_result.metrics):
                metric = current_result.metrics[metric_name]
                deltas.append(
                    MetricDelta(
                        benchmark=name,
                        metric=metric_name,
                        status=STATUS_NEW,
                        baseline_value=None,
                        current_value=metric.value,
                        unit=metric.unit,
                        higher_is_better=metric.higher_is_better,
                    )
                )
            continue
        metric_names = sorted(
            set(baseline_result.metrics) | set(current_result.metrics)
        )
        for metric_name in metric_names:
            base_metric = baseline_result.metrics.get(metric_name)
            cur_metric = current_result.metrics.get(metric_name)
            if base_metric is None and cur_metric is not None:
                deltas.append(
                    MetricDelta(
                        benchmark=name,
                        metric=metric_name,
                        status=STATUS_NEW,
                        baseline_value=None,
                        current_value=cur_metric.value,
                        unit=cur_metric.unit,
                        higher_is_better=cur_metric.higher_is_better,
                    )
                )
            elif base_metric is not None and cur_metric is None:
                deltas.append(
                    MetricDelta(
                        benchmark=name,
                        metric=metric_name,
                        status=STATUS_MISSING if base_metric.gated else STATUS_INFO,
                        baseline_value=base_metric.value,
                        current_value=None,
                        unit=base_metric.unit,
                        threshold=base_metric.regression_threshold,
                        higher_is_better=base_metric.higher_is_better,
                    )
                )
            elif base_metric is not None and cur_metric is not None:
                deltas.append(
                    compare_metric(
                        name, metric_name, base_metric, cur_metric, threshold_override
                    )
                )
    return BenchComparison(deltas=deltas)
