"""Execution time model for operators under different device allocations.

This is the "ground truth" performance model of the simulated cluster.  Both
the synthetic profiler (which feeds the scalability estimator of §3.2) and the
runtime simulator charge operator execution using this model, so the planner is
evaluated against the same physics it planned for — exactly the relationship a
profiled real cluster has with its planner.

The model captures the three effects responsible for the heterogeneous
resource scalability shown in Fig. 4 of the paper:

* per-device compute shrinks as ``1/n`` (the ``beta' * w/n`` term of the
  piecewise alpha-beta model of Appendix A),
* per-kernel fixed overheads and shrinking kernel shapes put a floor on the
  achievable speed-up of lightweight operators (the ``alpha`` term, and the
  reason the pieces of the piecewise model differ),
* hybrid data/tensor parallel execution beyond the data-parallel limit adds a
  communication component that does not scale with ``n`` (the
  ``beta * c`` term).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.topology import ClusterTopology
from repro.costmodel.comm import ring_allreduce_time
from repro.graph.ops import Operator


@dataclass(frozen=True)
class ParallelSplit:
    """How an operator allocated ``n`` devices is split into DP x TP ranks."""

    data_parallel: int
    tensor_parallel: int

    @property
    def world_size(self) -> int:
        return self.data_parallel * self.tensor_parallel


def split_allocation(batch_size: int, n_devices: int) -> ParallelSplit:
    """Derive the DP x TP split for ``n_devices`` given a global batch size.

    Devices are used for data parallelism first (cheapest), and for tensor
    parallelism only once the batch cannot be split further.  Allocations that
    do not divide the batch are still usable but leave the data-parallel ranks
    imbalanced; the imbalance penalty is charged by the execution time model
    (§3.3 motivates the valid-allocation rule exactly to avoid that penalty).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if n_devices <= 0:
        raise ValueError("n_devices must be positive")
    if n_devices <= batch_size:
        return ParallelSplit(data_parallel=n_devices, tensor_parallel=1)
    tp = n_devices // batch_size
    return ParallelSplit(data_parallel=batch_size, tensor_parallel=max(1, tp))


def data_parallel_imbalance(batch_size: int, data_parallel: int) -> float:
    """Slow-down factor of uneven sample partitioning across DP ranks.

    The slowest rank processes ``ceil(batch / dp)`` samples while a perfectly
    even split would process ``batch / dp``; the ratio is the wall-clock
    penalty of the imbalance (1.0 when ``dp`` divides the batch).
    """
    if data_parallel <= 0:
        raise ValueError("data_parallel must be positive")
    per_rank = math.ceil(batch_size / data_parallel)
    return per_rank * data_parallel / batch_size


@dataclass(frozen=True)
class TimingModelConfig:
    """Tunable constants of the execution time model.

    The defaults are calibrated so that, on the A800 cluster model, heavy
    vision/LM operators scale near-linearly to 32 GPUs while lightweight text /
    motion operators saturate around 2-4 GPUs, reproducing the qualitative
    behaviour of Fig. 4.
    """

    #: Fixed launch overhead charged per operator execution (seconds).  A
    #: transformer layer issues tens of kernels; when the per-device workload
    #: is small their launch latencies are no longer hidden, which is the
    #: ``alpha`` term of the piecewise alpha-beta model (Appendix A).
    kernel_launch_overhead: float = 1.2e-4
    #: Per-device forward FLOPs at which compute efficiency reaches 50%.
    efficiency_half_flops: float = 2.0e9
    #: Tokens per data-parallel replica below which kernel shapes degrade.
    token_knee: int = 1024
    #: Efficiency floor for degenerate kernel shapes.
    shape_efficiency_floor: float = 0.3
    #: Backward pass costs this multiple of the forward pass.
    backward_multiplier: float = 2.0
    #: Number of tensor-parallel activation all-reduces per layer and pass.
    tp_collectives_per_layer: int = 2


class ExecutionTimeModel:
    """Computes operator execution time ``T(n)`` on the simulated cluster."""

    def __init__(
        self,
        cluster: ClusterTopology,
        config: TimingModelConfig | None = None,
    ) -> None:
        self.cluster = cluster
        self.config = config or TimingModelConfig()

    # ------------------------------------------------------------------ core
    def operator_time(
        self,
        op: Operator,
        n_devices: int,
        include_backward: bool = True,
        pacing_flops: float | None = None,
    ) -> float:
        """Forward (+ backward) execution time of one operator on ``n`` devices.

        ``pacing_flops`` is the sustained FLOP/s ceiling of the device group
        executing the operator — the slowest member of the group, since wave
        entries run in lockstep.  ``None`` (the default) paces on the cluster
        floor, the conservative pre-spec-class behaviour; the
        heterogeneity-aware planner passes each spec class's own ceiling.
        """
        if n_devices <= 0:
            raise ValueError("n_devices must be positive")
        if pacing_flops is not None and pacing_flops <= 0:
            raise ValueError("pacing_flops must be positive")
        n_devices = min(n_devices, self.cluster.num_devices)
        split = split_allocation(op.batch_size, n_devices)
        passes = 1.0 + (self.config.backward_multiplier if include_backward else 0.0)

        compute = passes * self._compute_time(op, split, pacing_flops)
        comm = passes * self._tensor_parallel_comm_time(op, split)
        launch = self.config.kernel_launch_overhead * (2.0 if include_backward else 1.0)
        return launch + compute + comm

    def operators_time(
        self,
        ops: list[Operator],
        n_devices: int,
        include_backward: bool = True,
        pacing_flops: float | None = None,
    ) -> float:
        """Total sequential execution time of a chain of operators."""
        return sum(
            self.operator_time(
                op,
                n_devices,
                include_backward=include_backward,
                pacing_flops=pacing_flops,
            )
            for op in ops
        )

    # -------------------------------------------------------------- internals
    def _compute_time(
        self, op: Operator, split: ParallelSplit, pacing_flops: float | None = None
    ) -> float:
        imbalance = data_parallel_imbalance(op.batch_size, split.data_parallel)
        per_device_flops = op.flops / split.world_size * imbalance
        efficiency = self._efficiency(op, split, per_device_flops)
        # Wave entries execute in lockstep across their device group, so the
        # group is paced by its slowest device.  Without an explicit group
        # ceiling the cluster-wide floor is charged; on the homogeneous
        # clusters of the paper this is device_spec.achievable_flops.
        ceiling = (
            pacing_flops if pacing_flops is not None
            else self.cluster.min_achievable_flops
        )
        sustained = ceiling * efficiency
        return per_device_flops / sustained

    def _efficiency(
        self, op: Operator, split: ParallelSplit, per_device_flops: float
    ) -> float:
        """Fraction of the achievable throughput realised by this workload."""
        saturation = per_device_flops / (
            per_device_flops + self.config.efficiency_half_flops
        )
        tokens_per_replica = (
            op.input_spec.batch * op.input_spec.seq_len / split.data_parallel
        )
        shape = self._shape_efficiency(tokens_per_replica, split.tensor_parallel, op)
        return max(1e-3, saturation * shape)

    def _shape_efficiency(
        self, tokens_per_replica: float, tensor_parallel: int, op: Operator
    ) -> float:
        """Penalty for small matmul shapes (short sequences, thin TP slices)."""
        floor = self.config.shape_efficiency_floor
        token_ratio = min(1.0, tokens_per_replica / self.config.token_knee)
        token_eff = floor + (1.0 - floor) * math.sqrt(token_ratio)
        if tensor_parallel <= 1:
            return token_eff
        hidden = max(1, op.input_spec.hidden // tensor_parallel)
        hidden_ratio = min(1.0, hidden / 512.0)
        hidden_eff = floor + (1.0 - floor) * math.sqrt(hidden_ratio)
        return token_eff * hidden_eff

    def _tensor_parallel_comm_time(self, op: Operator, split: ParallelSplit) -> float:
        if split.tensor_parallel <= 1:
            return 0.0
        per_replica_activation = op.activation_bytes / max(1, split.data_parallel)
        volume = self.config.tp_collectives_per_layer * per_replica_activation
        return ring_allreduce_time(
            volume, split.tensor_parallel, self.cluster.intra_island
        )

    # --------------------------------------------------------------- utility
    def achieved_flops_per_second(
        self,
        op: Operator,
        n_devices: int,
        include_backward: bool = True,
        pacing_flops: float | None = None,
    ) -> float:
        """Aggregate FLOP/s achieved by the allocation (used for Fig. 9 traces)."""
        time = self.operator_time(
            op,
            n_devices,
            include_backward=include_backward,
            pacing_flops=pacing_flops,
        )
        multiplier = 1.0 + (self.config.backward_multiplier if include_backward else 0.0)
        if time <= 0:
            return 0.0
        return multiplier * op.flops / time
