"""Synthetic profiler producing the sample points behind scaling curves.

On a real deployment, Spindle profiles each MetaOp for a handful of device
allocations and parallel configurations ("several discrete data points
``(n_i, T_m(n_i))``", §3.2) and the scalability estimator fits a piecewise
alpha-beta curve through them.  Without GPUs we substitute the measurement step
with the analytic :class:`~repro.costmodel.timing.ExecutionTimeModel`,
optionally perturbed by multiplicative measurement noise, which preserves the
property the estimator must handle: heterogeneous, non-linear scaling across
MetaOps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.costmodel.timing import ExecutionTimeModel
from repro.graph.ops import Operator


def default_profile_points(max_devices: int) -> list[int]:
    """Power-of-two allocation sizes up to ``max_devices`` (1, 2, 4, ...)."""
    if max_devices <= 0:
        raise ValueError("max_devices must be positive")
    points = []
    n = 1
    while n <= max_devices:
        points.append(n)
        n *= 2
    if points[-1] != max_devices:
        points.append(max_devices)
    return points


@dataclass(frozen=True)
class ProfileSample:
    """A single profiled measurement: allocation size and execution time."""

    n_devices: int
    time_seconds: float

    def __post_init__(self) -> None:
        if self.n_devices <= 0:
            raise ValueError("n_devices must be positive")
        if self.time_seconds <= 0:
            raise ValueError("time_seconds must be positive")


class SyntheticProfiler:
    """Profiles operators on the simulated cluster.

    Parameters
    ----------
    cluster:
        The cluster whose performance characteristics are profiled.
    timing_model:
        Ground-truth execution time model; a default one is constructed when
        omitted.
    noise_std:
        Relative standard deviation of multiplicative log-normal measurement
        noise.  Zero (the default) yields exact measurements.
    seed:
        Seed of the noise generator, so profiles are reproducible.
    """

    def __init__(
        self,
        cluster: ClusterTopology,
        timing_model: ExecutionTimeModel | None = None,
        noise_std: float = 0.0,
        seed: int = 0,
    ) -> None:
        if noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        self.cluster = cluster
        self.timing_model = timing_model or ExecutionTimeModel(cluster)
        self.noise_std = noise_std
        self._rng = np.random.default_rng(seed)

    def profile_operator(
        self,
        op: Operator,
        points: Sequence[int] | None = None,
        include_backward: bool = True,
        pacing_flops: float | None = None,
    ) -> list[ProfileSample]:
        """Measure ``op`` at each candidate allocation size.

        ``pacing_flops`` selects the sustained-throughput ceiling the
        measurement is paced on (a spec class's own rate); ``None`` keeps the
        conservative cluster-floor pacing.
        """
        return self._profile_resolved(
            op, self._resolve_points(points), include_backward, pacing_flops
        )

    def profile_operators(
        self,
        ops: Sequence[Operator],
        points: Sequence[int] | None = None,
        include_backward: bool = True,
        pacing_flops: float | None = None,
    ) -> list[list[ProfileSample]]:
        """Batched :meth:`profile_operator` over several operators.

        The candidate allocation sizes are resolved once for the whole batch,
        and measurement noise (when enabled) is drawn in the same
        operator-major, point-minor order as sequential ``profile_operator``
        calls, so batching never changes the profiled values.
        """
        resolved = self._resolve_points(points)
        return [
            self._profile_resolved(op, resolved, include_backward, pacing_flops)
            for op in ops
        ]

    def _resolve_points(self, points: Sequence[int] | None) -> list[int]:
        if points is None:
            return default_profile_points(self.cluster.num_devices)
        return list(points)

    def _profile_resolved(
        self,
        op: Operator,
        points: Sequence[int],
        include_backward: bool,
        pacing_flops: float | None = None,
    ) -> list[ProfileSample]:
        samples: list[ProfileSample] = []
        for n in points:
            if n <= 0 or n > self.cluster.num_devices:
                raise ValueError(
                    f"Profile point {n} outside cluster size "
                    f"{self.cluster.num_devices}"
                )
            time = self.timing_model.operator_time(
                op, n, include_backward=include_backward, pacing_flops=pacing_flops
            )
            if self.noise_std > 0:
                time *= float(
                    np.exp(self._rng.normal(0.0, self.noise_std))
                )
            samples.append(ProfileSample(n_devices=n, time_seconds=time))
        return samples

    def profile_points(self) -> list[int]:
        """Default allocation sizes profiled for this cluster."""
        return default_profile_points(self.cluster.num_devices)
