"""Analytic cost models: FLOPs, execution time, communication and memory."""

from repro.costmodel.comm import (
    LinkClass,
    all_gather_time,
    classify_link,
    group_allreduce_time,
    group_transfer_time,
    link_spec,
    p2p_time,
    reduce_scatter_time,
    ring_allreduce_time,
)
from repro.costmodel.flops import (
    LayerConfig,
    contrastive_loss_flops,
    embedding_flops,
    embedding_params,
    make_contrastive_loss_op,
    make_projection_op,
    make_transformer_layer_op,
    projection_flops,
    projection_params,
    transformer_layer_activation_bytes,
    transformer_layer_flops,
    transformer_layer_params,
)
from repro.costmodel.memory import MemoryModel, MemoryModelConfig
from repro.costmodel.profiler import (
    ProfileSample,
    SyntheticProfiler,
    default_profile_points,
)
from repro.costmodel.timing import (
    ExecutionTimeModel,
    ParallelSplit,
    TimingModelConfig,
    split_allocation,
)

__all__ = [
    "ExecutionTimeModel",
    "LayerConfig",
    "LinkClass",
    "MemoryModel",
    "MemoryModelConfig",
    "ParallelSplit",
    "ProfileSample",
    "SyntheticProfiler",
    "TimingModelConfig",
    "all_gather_time",
    "classify_link",
    "contrastive_loss_flops",
    "default_profile_points",
    "embedding_flops",
    "embedding_params",
    "group_allreduce_time",
    "group_transfer_time",
    "link_spec",
    "make_contrastive_loss_op",
    "make_projection_op",
    "make_transformer_layer_op",
    "p2p_time",
    "projection_flops",
    "projection_params",
    "reduce_scatter_time",
    "ring_allreduce_time",
    "split_allocation",
    "transformer_layer_activation_bytes",
    "transformer_layer_flops",
    "transformer_layer_params",
]
