"""Per-device memory estimation for operators and execution plans.

Used by the device placement pass (§3.5, "Device Memory Balance") and by the
memory-consumption experiment (Appendix G).  The accounting follows standard
mixed-precision Adam training:

* parameter + gradient + optimizer state: 16 bytes per parameter
  (fp16 weight, fp16 gradient, fp32 master weight, fp32 Adam moments),
* activations retained for the backward pass, proportional to the operator's
  activation footprint and divided across the devices that execute it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.timing import split_allocation
from repro.graph.ops import FP16_BYTES, Operator

#: Bytes of state per parameter for mixed-precision Adam training.
ADAM_STATE_BYTES_PER_PARAM = 16.0

#: Multiple of the layer-output size retained as intermediate activations.
ACTIVATION_RETENTION_MULTIPLIER = 4.0


@dataclass(frozen=True)
class MemoryModelConfig:
    """Tunable constants of the memory model."""

    state_bytes_per_param: float = ADAM_STATE_BYTES_PER_PARAM
    activation_multiplier: float = ACTIVATION_RETENTION_MULTIPLIER
    #: Fixed framework/workspace overhead reserved on every device (bytes).
    framework_overhead_bytes: float = 1.5 * 1024**3
    #: ZeRO-style optimizer state sharding factor (1.0 = fully replicated).
    optimizer_shard_over_dp: bool = True


class MemoryModel:
    """Estimates per-device memory consumption of operators and plans."""

    def __init__(self, config: MemoryModelConfig | None = None) -> None:
        self.config = config or MemoryModelConfig()

    def parameter_state_bytes(self, op: Operator, n_devices: int = 1) -> float:
        """Bytes of parameter + optimizer state held per device for ``op``."""
        if op.param_bytes == 0:
            return 0.0
        split = split_allocation(op.batch_size, max(1, n_devices))
        params = op.param_count
        state = params * self.config.state_bytes_per_param
        state /= split.tensor_parallel
        if self.config.optimizer_shard_over_dp and split.data_parallel > 1:
            # fp32 master weight + Adam moments (12 of the 16 bytes) shard
            # across data-parallel ranks, as in ZeRO stage 1/2.
            sharded = params * 12.0 / split.tensor_parallel
            state -= sharded * (1.0 - 1.0 / split.data_parallel)
        return state

    def activation_bytes(self, op: Operator, n_devices: int = 1) -> float:
        """Bytes of activations retained per device for the backward pass."""
        per_device = op.activation_bytes / max(1, n_devices)
        return per_device * self.config.activation_multiplier

    def operator_device_bytes(self, op: Operator, n_devices: int = 1) -> float:
        """Total per-device footprint of executing ``op`` with ``n`` devices."""
        return self.parameter_state_bytes(op, n_devices) + self.activation_bytes(
            op, n_devices
        )

    def framework_overhead(self) -> float:
        return self.config.framework_overhead_bytes

    @staticmethod
    def param_count(param_bytes: float) -> float:
        return param_bytes / FP16_BYTES
