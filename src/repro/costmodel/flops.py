"""Analytic FLOP, parameter and activation accounting for transformer operators.

These formulas provide the "ground truth" workload numbers used by the
synthetic profiler and the runtime simulator.  They follow the standard dense
transformer accounting (attention + MLP) used by Megatron-LM and by automatic
parallelisation planners such as Alpa/Galvatron, which is accurate enough to
reproduce the *relative* workload heterogeneity that Spindle exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.ops import FP16_BYTES, Operator, TensorSpec


@dataclass(frozen=True)
class LayerConfig:
    """Configuration of a transformer layer used to derive workload numbers."""

    hidden_size: int
    ffn_mult: float = 4.0
    num_heads: int = 16

    def __post_init__(self) -> None:
        if self.hidden_size <= 0:
            raise ValueError("hidden_size must be positive")
        if self.ffn_mult <= 0:
            raise ValueError("ffn_mult must be positive")
        if self.num_heads <= 0:
            raise ValueError("num_heads must be positive")


def transformer_layer_params(config: LayerConfig) -> float:
    """Parameter count of one transformer layer (attention + MLP + norms)."""
    h = config.hidden_size
    attention = 4 * h * h + 4 * h
    mlp = 2 * config.ffn_mult * h * h + (config.ffn_mult + 1) * h
    norms = 4 * h
    return attention + mlp + norms


def transformer_layer_flops(spec: TensorSpec, config: LayerConfig) -> float:
    """Forward FLOPs of one transformer layer over the full global batch.

    Uses the 2*MACs convention: a (m, k) x (k, n) matmul costs ``2*m*k*n``.
    """
    b, s, h = spec.batch, spec.seq_len, spec.hidden
    if h != config.hidden_size:
        raise ValueError(
            f"TensorSpec hidden {h} does not match LayerConfig hidden "
            f"{config.hidden_size}"
        )
    tokens = b * s
    qkv_proj = 2 * tokens * h * (3 * h)
    attn_scores = 2 * b * s * s * h
    attn_values = 2 * b * s * s * h
    out_proj = 2 * tokens * h * h
    mlp = 2 * 2 * tokens * h * (config.ffn_mult * h)
    return float(qkv_proj + attn_scores + attn_values + out_proj + mlp)


def transformer_layer_activation_bytes(spec: TensorSpec) -> float:
    """Bytes of the layer's output activation (what flows to the next layer)."""
    return float(spec.bytes)


def embedding_params(vocab_size: int, hidden_size: int) -> float:
    return float(vocab_size * hidden_size)


def embedding_flops(spec: TensorSpec, vocab_size: int) -> float:
    """Forward FLOPs of an embedding lookup plus output projection tie."""
    return float(2 * spec.batch * spec.seq_len * spec.hidden)


def projection_flops(spec: TensorSpec, out_dim: int) -> float:
    """Forward FLOPs of a dense projection from ``hidden`` to ``out_dim``."""
    return float(2 * spec.batch * spec.seq_len * spec.hidden * out_dim)


def projection_params(in_dim: int, out_dim: int) -> float:
    return float(in_dim * out_dim + out_dim)


def contrastive_loss_flops(batch: int, embed_dim: int) -> float:
    """Forward FLOPs of a CLIP-style contrastive loss over paired embeddings."""
    similarity = 2 * batch * batch * embed_dim
    softmax = 10 * batch * batch
    return float(similarity + softmax)


def make_transformer_layer_op(
    name: str,
    op_type: str,
    task: str,
    modality: str,
    spec: TensorSpec,
    config: LayerConfig,
    param_key: str | None,
) -> Operator:
    """Build a transformer-layer :class:`Operator` with analytic workloads."""
    return Operator(
        name=name,
        op_type=op_type,
        task=task,
        modality=modality,
        input_spec=spec,
        flops=transformer_layer_flops(spec, config),
        param_bytes=transformer_layer_params(config) * FP16_BYTES,
        activation_bytes=transformer_layer_activation_bytes(spec),
        param_key=param_key,
        metadata={"hidden_size": config.hidden_size, "ffn_mult": config.ffn_mult},
    )


def make_projection_op(
    name: str,
    op_type: str,
    task: str,
    modality: str,
    spec: TensorSpec,
    out_dim: int,
    param_key: str | None,
) -> Operator:
    """Build a projection/adapter :class:`Operator` (e.g. modality adaptor)."""
    out_spec = TensorSpec(batch=spec.batch, seq_len=spec.seq_len, hidden=out_dim)
    return Operator(
        name=name,
        op_type=op_type,
        task=task,
        modality=modality,
        input_spec=spec,
        flops=projection_flops(spec, out_dim),
        param_bytes=projection_params(spec.hidden, out_dim) * FP16_BYTES,
        activation_bytes=float(out_spec.bytes),
        param_key=param_key,
        metadata={"out_dim": out_dim},
    )


def make_contrastive_loss_op(
    name: str,
    task: str,
    batch: int,
    embed_dim: int,
) -> Operator:
    """Build the lightweight contrastive-loss operator of CLIP-style tasks."""
    spec = TensorSpec(batch=batch, seq_len=1, hidden=embed_dim)
    return Operator(
        name=name,
        op_type="contrastive_loss",
        task=task,
        modality="fusion",
        input_spec=spec,
        flops=contrastive_loss_flops(batch, embed_dim),
        param_bytes=0.0,
        activation_bytes=float(spec.bytes),
        param_key=None,
        metadata={"embed_dim": embed_dim},
    )
