"""Communication cost primitives (alpha-beta model over link classes).

The runtime engine charges three classes of communication:

* intra-operator collectives (tensor-parallel activation all-reduces),
* inter-wave point-to-point transmission of data flows (§3.6 step 2),
* parameter-group all-reduces for cross-task gradient synchronisation
  (§3.6 step 3).

All of them reduce to ring all-reduce and point-to-point transfers over one of
the three link classes of the cluster topology (intra-device copy, NVLink
island, inter-island InfiniBand).
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Sequence

from repro.cluster.topology import ClusterTopology, InterconnectSpec


class LinkClass(Enum):
    """Class of the link used by a transfer, ordered by decreasing bandwidth."""

    INTRA_DEVICE = "intra_device"
    INTRA_ISLAND = "intra_island"
    INTER_ISLAND = "inter_island"


def classify_link(
    cluster: ClusterTopology, src_devices: Sequence[int], dst_devices: Sequence[int]
) -> LinkClass:
    """Classify the slowest link a transfer between two device groups crosses."""
    src = list(src_devices)
    dst = list(dst_devices)
    if not src or not dst:
        raise ValueError("Device groups must not be empty")
    if set(src) & set(dst) and set(src) | set(dst) == set(src) & set(dst):
        return LinkClass.INTRA_DEVICE
    islands = {cluster.island_of(d) for d in src} | {cluster.island_of(d) for d in dst}
    if len(islands) == 1:
        if set(src) == set(dst):
            return LinkClass.INTRA_DEVICE
        return LinkClass.INTRA_ISLAND
    return LinkClass.INTER_ISLAND


def link_spec(cluster: ClusterTopology, link: LinkClass) -> InterconnectSpec:
    if link is LinkClass.INTRA_DEVICE:
        return cluster.intra_device
    if link is LinkClass.INTRA_ISLAND:
        return cluster.intra_island
    return cluster.inter_island


def ring_allreduce_time(
    volume_bytes: float, group_size: int, link: InterconnectSpec
) -> float:
    """Time of an all-reduce of ``volume_bytes`` across ``group_size`` ranks.

    Bandwidth follows the ring algorithm (``2 (g-1)/g`` traversals of the
    payload); the latency term follows the tree algorithm NCCL switches to for
    latency-bound messages (``2 log2(g)`` hops), so small collectives are not
    charged an unrealistically long ring of latencies.
    """
    if volume_bytes < 0:
        raise ValueError("volume must be non-negative")
    if group_size <= 0:
        raise ValueError("group size must be positive")
    if group_size == 1 or volume_bytes == 0:
        return 0.0
    bandwidth_term = 2 * (group_size - 1) / group_size * volume_bytes / link.bandwidth
    latency_term = 2 * math.ceil(math.log2(group_size)) * link.latency
    return latency_term + bandwidth_term


def all_gather_time(
    volume_bytes: float, group_size: int, link: InterconnectSpec
) -> float:
    """Time of an all-gather where each rank contributes ``volume/group`` bytes."""
    if group_size <= 1 or volume_bytes == 0:
        return 0.0
    bandwidth_term = (group_size - 1) / group_size * volume_bytes / link.bandwidth
    latency_term = math.ceil(math.log2(group_size)) * link.latency
    return latency_term + bandwidth_term


def reduce_scatter_time(
    volume_bytes: float, group_size: int, link: InterconnectSpec
) -> float:
    """Time of a reduce-scatter (same cost shape as all-gather)."""
    return all_gather_time(volume_bytes, group_size, link)


def p2p_time(volume_bytes: float, link: InterconnectSpec) -> float:
    """Point-to-point send/receive of ``volume_bytes`` over ``link``."""
    if volume_bytes < 0:
        raise ValueError("volume must be non-negative")
    if volume_bytes == 0:
        return 0.0
    return link.transfer_time(volume_bytes)


def group_allreduce_time(
    cluster: ClusterTopology, device_ids: Sequence[int], volume_bytes: float
) -> float:
    """All-reduce of ``volume_bytes`` within an arbitrary device group."""
    ids = list(device_ids)
    if len(ids) <= 1 or volume_bytes == 0:
        return 0.0
    link = cluster.group_bandwidth(ids)
    return ring_allreduce_time(volume_bytes, len(ids), link)


def group_transfer_time(
    cluster: ClusterTopology,
    src_devices: Sequence[int],
    dst_devices: Sequence[int],
    volume_bytes: float,
) -> float:
    """Transfer ``volume_bytes`` from one device group to another.

    The volume is assumed to be sharded across source devices and re-sharded
    across destination devices using batched point-to-point primitives, so
    ``min(len(src), len(dst))`` transfers proceed in parallel.
    """
    if volume_bytes < 0:
        raise ValueError("volume must be non-negative")
    if volume_bytes == 0:
        return 0.0
    link = link_spec(cluster, classify_link(cluster, src_devices, dst_devices))
    parallelism = max(1, min(len(set(src_devices)), len(set(dst_devices))))
    return p2p_time(volume_bytes / parallelism, link)
