"""Graph contraction: computation graph -> MetaGraph (§3.1).

Two adjacent operators ``i -> j`` are contracted into the same MetaOp when

1. the edge is exclusive — ``out_degree(i) == 1`` and ``in_degree(j) == 1`` —
   so they are direct predecessor/successor of each other, and
2. they share the same operator type and input data size, confirming identical
   workloads.

The graph is traversed in topological order and operators are merged until no
further pair satisfies the criteria, yielding the contracted MetaGraph
``G_M``.  MetaLevels are then assigned from the dependency topology.
"""

from __future__ import annotations

from repro.core.metagraph import MetaGraph, MetaOp
from repro.graph.graph import ComputationGraph


def can_contract(graph: ComputationGraph, src: str, dst: str) -> bool:
    """Whether the edge ``src -> dst`` satisfies the contraction criteria."""
    if graph.out_degree(src) != 1 or graph.in_degree(dst) != 1:
        return False
    src_op = graph.operator(src)
    dst_op = graph.operator(dst)
    return src_op.workload_signature() == dst_op.workload_signature()


def contract_graph(graph: ComputationGraph, assign_levels: bool = True) -> MetaGraph:
    """Contract ``graph`` into a MetaGraph of MetaOps.

    Parameters
    ----------
    graph:
        The unified multi-task computation graph.
    assign_levels:
        Assign MetaLevels after contraction (on by default; disable only when
        the caller wants to inspect the raw contraction).
    """
    graph.validate()
    order = graph.topological_order()

    # Chain assignment: operators that contract together share a chain id.
    chain_of: dict[str, int] = {}
    chain_members: dict[int, list[str]] = {}
    next_chain = 0
    for name in order:
        preds = graph.predecessors(name)
        merged = False
        if len(preds) == 1:
            pred = preds[0]
            if can_contract(graph, pred, name):
                chain_id = chain_of[pred]
                chain_of[name] = chain_id
                chain_members[chain_id].append(name)
                merged = True
        if not merged:
            chain_of[name] = next_chain
            chain_members[next_chain] = [name]
            next_chain += 1

    metagraph = MetaGraph()
    # MetaOps are indexed in order of first appearance (topological order of
    # their first operator), which matches the numbering of Fig. 3.
    for chain_id in sorted(chain_members, key=lambda cid: order.index(chain_members[cid][0])):
        members = chain_members[chain_id]
        operators = [graph.operator(name) for name in members]
        metagraph.add_metaop(MetaOp(index=metagraph.num_metaops, operators=operators))

    # Re-index chains to MetaOp indices for edge construction.
    metaop_of_operator: dict[str, int] = {}
    for metaop in metagraph.metaops.values():
        for op in metaop.operators:
            metaop_of_operator[op.name] = metaop.index

    for flow in graph.flows:
        src_meta = metaop_of_operator[flow.src]
        dst_meta = metaop_of_operator[flow.dst]
        if src_meta != dst_meta:
            metagraph.add_edge(src_meta, dst_meta, flow.volume_bytes)

    if assign_levels:
        metagraph.assign_levels()
    metagraph.validate()
    return metagraph
