"""Scalability estimator: piecewise alpha-beta scaling curves (§3.2, App. A).

The estimator profiles each MetaOp for a handful of discrete allocation sizes
and fits a *piecewise* alpha-beta function

    T_m(n) = alpha_i + beta_i / n        for n in [n_{i-1}, n_i]

through the measurements.  The piecewise form matters because MT MM workloads
invoke different kernels under different per-device workloads, so a single
alpha-beta fit (as used by homogeneous-model planners) misestimates lightweight
operators.  The resulting :class:`ScalingCurve` exposes:

* ``time(n)`` — estimated per-operator execution time on ``n`` devices,
* ``time_many(ns)`` — the same evaluation vectorized over an allocation grid,
* ``inverse(t)`` — the (possibly fractional) allocation needed to reach time
  ``t`` (the ``Find_Inverse_Value`` routine of Appendix B),
* ``speedup(n)`` — the resource scalability ``sigma(n) = T(1)/T(n)`` of Fig. 4.

``time``/``inverse`` locate their piece with ``bisect`` over precomputed
breakpoint arrays, so a single evaluation costs O(log k) in the number of
pieces and the allocator's bisection loop never scans pieces linearly.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.topology import SpecClass
from repro.core.metagraph import MetaGraph, MetaOp
from repro.costmodel.profiler import (
    ProfileSample,
    SyntheticProfiler,
    default_profile_points,
)


class EstimatorError(Exception):
    """Raised for malformed profiles or unusable curves."""


#: Key type of reusable scaling curves: the structural workload signature of a
#: MetaOp's representative operator.  Two MetaOps with equal keys profile
#: identically (on the same cluster and planner configuration), so a fitted
#: curve can be transferred between plans — the basis of incremental
#: re-planning in :mod:`repro.service.incremental`.
CurveKey = tuple


def metaop_curve_key(metaop: MetaOp) -> CurveKey:
    """Reuse key of a MetaOp's scaling curve (workload signature of its rep)."""
    return metaop.curve_key


@dataclass(frozen=True)
class AlphaBetaPiece:
    """One piece of the piecewise alpha-beta model: ``T(n) = alpha + beta/n``."""

    n_lo: float
    n_hi: float
    alpha: float
    beta: float

    def time(self, n: float) -> float:
        if n <= 0:
            raise EstimatorError("Allocation must be positive")
        return self.alpha + self.beta / n

    def covers(self, n: float) -> bool:
        return self.n_lo <= n <= self.n_hi


class ScalingCurve:
    """Piecewise alpha-beta execution-time curve of one MetaOp."""

    def __init__(self, samples: Sequence[ProfileSample]) -> None:
        if not samples:
            raise EstimatorError("Cannot fit a scaling curve with no samples")
        ordered = sorted(samples, key=lambda s: s.n_devices)
        deduped: list[ProfileSample] = []
        for sample in ordered:
            if deduped and deduped[-1].n_devices == sample.n_devices:
                continue
            deduped.append(sample)
        # Enforce the non-increasing property required by Theorem 1: noisy
        # measurements occasionally show a slowdown at larger allocations; the
        # allocator needs a monotone curve, so clip upward excursions.
        monotone: list[ProfileSample] = []
        for sample in deduped:
            time = sample.time_seconds
            if monotone:
                time = min(time, monotone[-1].time_seconds)
            monotone.append(ProfileSample(sample.n_devices, max(time, 1e-12)))
        self.samples = monotone
        self.pieces = self._fit_pieces(monotone)
        # Piece-lookup tables: upper breakpoints (strictly increasing) for the
        # bisect in time()/time_many(), boundary times for inverse(), and the
        # fitted coefficients as arrays for the vectorized evaluator.
        self._piece_n_his = [p.n_hi for p in self.pieces]
        self._piece_t_los = [p.time(p.n_lo) for p in self.pieces]
        self._piece_t_his = [p.time(p.n_hi) for p in self.pieces]
        # Boundary times are non-increasing; negated they are bisect-able.
        self._neg_t_his = [-t for t in self._piece_t_his]
        # Recomputed boundary times can deviate from exact monotonicity by
        # rounding ulps; bisect is only exact over a sorted column, so such
        # curves use the reference piece scan in inverse() instead.
        self._t_his_monotone = all(
            self._piece_t_his[i] >= self._piece_t_his[i + 1]
            for i in range(len(self._piece_t_his) - 1)
        )
        self._n_his_array = np.array(self._piece_n_his, dtype=float)
        self._alphas = np.array([p.alpha for p in self.pieces], dtype=float)
        self._betas = np.array([p.beta for p in self.pieces], dtype=float)

    @staticmethod
    def _fit_pieces(samples: list[ProfileSample]) -> list[AlphaBetaPiece]:
        if len(samples) == 1:
            only = samples[0]
            return [
                AlphaBetaPiece(
                    n_lo=only.n_devices,
                    n_hi=only.n_devices,
                    alpha=only.time_seconds,
                    beta=0.0,
                )
            ]
        pieces: list[AlphaBetaPiece] = []
        for left, right in zip(samples, samples[1:]):
            inv_lo, inv_hi = 1.0 / left.n_devices, 1.0 / right.n_devices
            if math.isclose(inv_lo, inv_hi):
                beta = 0.0
            else:
                beta = (left.time_seconds - right.time_seconds) / (inv_lo - inv_hi)
            alpha = left.time_seconds - beta * inv_lo
            pieces.append(
                AlphaBetaPiece(
                    n_lo=float(left.n_devices),
                    n_hi=float(right.n_devices),
                    alpha=alpha,
                    beta=beta,
                )
            )
        return pieces

    # -------------------------------------------------------------- evaluation
    @property
    def min_devices(self) -> int:
        return self.samples[0].n_devices

    @property
    def max_devices(self) -> int:
        return self.samples[-1].n_devices

    def _piece_index(self, n: float) -> int:
        """Index of the piece evaluating ``n``: the first piece whose upper
        breakpoint is >= ``n``, clamped to the last piece for extrapolation.

        Matches the reference linear scan (:meth:`_time_scan`): pieces tile
        ``[n_0, n_k]`` contiguously, so the first piece with ``n <= n_hi`` is
        the first piece covering ``n`` (and piece 0 also handles ``n`` below
        the profiled range).
        """
        index = bisect_left(self._piece_n_his, n)
        if index == len(self.pieces):
            return index - 1
        return index

    def time(self, n: float) -> float:
        """Estimated per-operator execution time for a (fractional) allocation."""
        if n <= 0:
            raise EstimatorError("Allocation must be positive")
        return self.pieces[self._piece_index(n)].time(n)

    def time_many(self, ns: Sequence[float] | np.ndarray) -> np.ndarray:
        """Vectorized :meth:`time` over an allocation grid.

        Element-for-element identical to calling :meth:`time` (same piece
        selection, same IEEE-754 arithmetic), evaluated with one
        ``searchsorted`` instead of one bisect per allocation.
        """
        grid = np.asarray(ns, dtype=float)
        if grid.size and float(grid.min()) <= 0:
            raise EstimatorError("Allocation must be positive")
        index = np.searchsorted(self._n_his_array, grid, side="left")
        index = np.minimum(index, len(self.pieces) - 1)
        return self._alphas[index] + self._betas[index] / grid

    def _time_scan(self, n: float) -> float:
        """Reference linear-scan evaluation (kept for equivalence tests)."""
        if n <= 0:
            raise EstimatorError("Allocation must be positive")
        if n <= self.pieces[0].n_lo:
            return self.pieces[0].time(n)
        for piece in self.pieces:
            if piece.covers(n):
                return piece.time(n)
        return self.pieces[-1].time(n)

    def inverse(self, target_time: float, max_devices: float | None = None) -> float:
        """Allocation ``n`` such that ``time(n) == target_time`` (Eq. 11).

        Values below one device are allowed (they signal that the MetaOp does
        not need a full device to meet the target, the "dummy allocation"
        situation of §3.3).  The result is capped at ``max_devices`` when the
        target is unreachable even with the largest profiled allocation.
        """
        if target_time <= 0:
            raise EstimatorError("Target time must be positive")
        cap = max_devices if max_devices is not None else float(self.max_devices)
        if target_time >= self.time(self.min_devices):
            piece = self.pieces[0]
            if piece.beta <= 0:
                return float(self.min_devices)
            if target_time <= piece.alpha:
                return float(self.min_devices)
            return max(1e-6, piece.beta / (target_time - piece.alpha))
        # Bisect for the first piece whose boundary times bracket the target
        # (exact while the boundary-time column is monotone: every earlier
        # piece has t_hi > target and therefore cannot bracket).  The
        # (equivalent) linear scan handles ulp-non-monotone curves and the
        # candidate failing its t_lo bound.
        if self._t_his_monotone:
            index = bisect_left(self._neg_t_his, -target_time)
            if (
                index < len(self.pieces)
                and self._piece_t_his[index]
                <= target_time
                <= self._piece_t_los[index]
            ):
                piece = self.pieces[index]
                t_lo = self._piece_t_los[index]
                t_hi = self._piece_t_his[index]
                if piece.beta <= 0 or math.isclose(t_lo, t_hi):
                    return float(piece.n_hi)
                return piece.beta / (target_time - piece.alpha)
        for piece, t_lo, t_hi in zip(self.pieces, self._piece_t_los, self._piece_t_his):
            if t_hi <= target_time <= t_lo:
                if piece.beta <= 0 or math.isclose(t_lo, t_hi):
                    return float(piece.n_hi)
                return piece.beta / (target_time - piece.alpha)
        # Target faster than anything profiled: extrapolate with the last piece.
        last = self.pieces[-1]
        if last.beta <= 0 or target_time <= last.alpha:
            return float(cap)
        return min(float(cap), last.beta / (target_time - last.alpha))

    def speedup(self, n: float) -> float:
        """Resource scalability ``sigma(n) = T(1) / T(n)`` (Fig. 4, right)."""
        return self.time(1.0) / self.time(n)

    def as_table(self) -> list[tuple[int, float, float]]:
        """Measured points as ``(n, time, speedup)`` rows (for reporting)."""
        base = self.samples[0].time_seconds
        return [
            (s.n_devices, s.time_seconds, base / s.time_seconds) for s in self.samples
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScalingCurve(n=[{self.min_devices}..{self.max_devices}], "
            f"T(1)={self.time(self.min_devices):.4e}s, pieces={len(self.pieces)})"
        )


class ScalabilityEstimator:
    """Profiles MetaOps and fits their scaling curves.

    With a noise-free profiler (the default), fitted curves are memoized per
    estimator instance under :attr:`MetaOp.curve_key`, so one planner never
    profiles the same workload signature twice — neither across the MetaOps of
    one plan (multi-task models repeat identical layer stacks per task) nor
    across successive plans through the same planner.  With measurement noise
    the cache is bypassed: each MetaOp must draw its own noisy samples to
    reproduce the reference estimator's RNG stream exactly.

    ``MetaOp.curve_key`` describes only the *workload*; a curve's values also
    embed the *cluster* the profiler measured it on.  Cache entries are
    therefore keyed by ``(topology signature, curve_key)``: if the profiler's
    cluster is ever swapped (elastic replanning after a failure/join event),
    curves fitted for the old topology can never be served for the new one.

    On heterogeneous clusters the same MetaOp additionally has one curve *per
    spec class* (profiled at the class's own pacing rate over the class's
    device range); those entries carry the class index as an extra key
    component — ``(topology signature, class index, curve_key)`` — so a fast
    island's curve is never served for a slow one.  Homogeneous clusters
    collapse to a single spec class and keep using the plain two-component
    key, i.e. the pre-existing cache path.
    """

    def __init__(
        self,
        profiler: SyntheticProfiler,
        profile_points: Sequence[int] | None = None,
        include_backward: bool = True,
        enable_curve_cache: bool = True,
        max_cached_curves: int = 4096,
    ) -> None:
        if max_cached_curves <= 0:
            raise ValueError("max_cached_curves must be positive")
        self.profiler = profiler
        self.profile_points = (
            list(profile_points) if profile_points is not None else None
        )
        self.include_backward = include_backward
        self.enable_curve_cache = enable_curve_cache
        self.max_cached_curves = max_cached_curves
        self._curve_cache: dict[CurveKey, ScalingCurve] = {}
        self._keyed_cluster = None
        self._cluster_signature: str | None = None

    @property
    def _cache_active(self) -> bool:
        return self.enable_curve_cache and self.profiler.noise_std == 0

    def _cache_key(self, curve_key: CurveKey) -> CurveKey:
        """Cache key of one MetaOp: its workload signature prefixed with the
        profiled topology's signature, so a swapped cluster never serves
        curves fitted for the old substrate."""
        cluster = self.profiler.cluster
        if cluster is not self._keyed_cluster:
            self._keyed_cluster = cluster
            self._cluster_signature = cluster.signature()
        return (self._cluster_signature, curve_key)

    def clear_cache(self) -> None:
        """Drop the memoized curves (e.g. after recalibrating the cost model)."""
        self._curve_cache.clear()

    def _cache_store(self, key: CurveKey, curve: ScalingCurve) -> None:
        """Insert with a FIFO bound so long-lived planners cannot grow the
        cache without limit across an unbounded stream of distinct workloads."""
        if len(self._curve_cache) >= self.max_cached_curves:
            self._curve_cache.pop(next(iter(self._curve_cache)))
        self._curve_cache[key] = curve

    def estimate_metaop(self, metaop: MetaOp) -> ScalingCurve:
        """Fit the per-operator scaling curve of one MetaOp."""
        if self._cache_active:
            cached = self._curve_cache.get(self._cache_key(metaop.curve_key))
            if cached is not None:
                return cached
        samples = self.profiler.profile_operator(
            metaop.representative,
            points=self.profile_points,
            include_backward=self.include_backward,
        )
        curve = ScalingCurve(samples)
        if self._cache_active:
            self._cache_store(self._cache_key(metaop.curve_key), curve)
        return curve

    def class_profile_points(self, spec_class: SpecClass) -> list[int]:
        """Allocation sizes profiled for one spec class.

        The configured profile points are clamped to the class's device count
        (a class is the largest group a class-assigned MetaOp can occupy);
        without configured points the power-of-two default over the class
        range is used.
        """
        if self.profile_points is None:
            return default_profile_points(spec_class.num_devices)
        clamped = sorted({min(p, spec_class.num_devices) for p in self.profile_points})
        return [p for p in clamped if p > 0] or [spec_class.num_devices]

    def estimate_metaops_for_class(
        self,
        metaops: Sequence[tuple[int, MetaOp]],
        spec_class: SpecClass,
    ) -> dict[int, ScalingCurve]:
        """Fit curves for ``(index, metaop)`` pairs paced on one spec class.

        Curves are profiled at the class's sustained rate over the class's
        device range and cached under ``(topology signature, class index,
        curve_key)``.  Under measurement noise the cache is bypassed and each
        MetaOp draws its own samples in the order given, exactly like the base
        estimation path, so optimized and reference planners consume the same
        RNG stream.
        """
        points = self.class_profile_points(spec_class)
        pacing = spec_class.achievable_flops
        curves: dict[int, ScalingCurve] = {}
        pending: list[tuple[int, MetaOp]] = []
        for index, metaop in metaops:
            if self._cache_active:
                key = self._class_cache_key(spec_class, metaop.curve_key)
                cached = self._curve_cache.get(key)
                if cached is not None:
                    curves[index] = cached
                    continue
            pending.append((index, metaop))
        if not pending:
            return curves
        if self._cache_active:
            seen: set[CurveKey] = set()
            unique: list[tuple[CurveKey, MetaOp]] = []
            for _, metaop in pending:
                if metaop.curve_key not in seen:
                    seen.add(metaop.curve_key)
                    unique.append((metaop.curve_key, metaop))
            sample_lists = self.profiler.profile_operators(
                [metaop.representative for _, metaop in unique],
                points=points,
                include_backward=self.include_backward,
                pacing_flops=pacing,
            )
            fitted = {
                key: ScalingCurve(samples)
                for (key, _), samples in zip(unique, sample_lists)
            }
            for key, curve in fitted.items():
                self._cache_store(self._class_cache_key(spec_class, key), curve)
            for index, metaop in pending:
                curves[index] = fitted[metaop.curve_key]
        else:
            sample_lists = self.profiler.profile_operators(
                [metaop.representative for _, metaop in pending],
                points=points,
                include_backward=self.include_backward,
                pacing_flops=pacing,
            )
            for (index, _), samples in zip(pending, sample_lists):
                curves[index] = ScalingCurve(samples)
        return curves

    def _class_cache_key(
        self, spec_class: SpecClass, curve_key: CurveKey
    ) -> CurveKey:
        """Cache key of one (spec class, workload) pair.

        The topology signature pins the substrate (and thereby the class
        partition, which the signature covers by construction), so the class
        *index* is a stable discriminator within it.  Three components never
        collide with the two-component base keys.
        """
        cluster = self.profiler.cluster
        if cluster is not self._keyed_cluster:
            self._keyed_cluster = cluster
            self._cluster_signature = cluster.signature()
        return (self._cluster_signature, spec_class.index, curve_key)

    def estimate(
        self,
        metagraph: MetaGraph,
        precomputed: Mapping[CurveKey, ScalingCurve] | None = None,
    ) -> dict[int, ScalingCurve]:
        """Fit scaling curves for every MetaOp in the MetaGraph.

        MetaOps whose curve key appears in ``precomputed`` reuse the supplied
        curve instead of being re-profiled.
        """
        curves, _ = self.estimate_with_reuse(metagraph, precomputed)
        return curves

    def estimate_with_reuse(
        self,
        metagraph: MetaGraph,
        precomputed: Mapping[CurveKey, ScalingCurve] | None = None,
    ) -> tuple[dict[int, ScalingCurve], int]:
        """Like :meth:`estimate`, also returning how many curves were reused.

        ``reused`` counts only *precomputed* curves (caller-supplied reuse, as
        reported in the planning report); hits in the estimator's own
        deterministic cache are not counted, so reports and incremental-planner
        statistics are unchanged by the memoization.
        """
        curves: dict[int, ScalingCurve] = {}
        reused = 0
        pending: list[tuple[int, MetaOp]] = []
        for index, metaop in metagraph.metaops.items():
            curve = (
                precomputed.get(metaop.curve_key)
                if precomputed is not None
                else None
            )
            if curve is not None:
                reused += 1
                curves[index] = curve
            elif (
                self._cache_active
                and self._cache_key(metaop.curve_key) in self._curve_cache
            ):
                curves[index] = self._curve_cache[self._cache_key(metaop.curve_key)]
            else:
                pending.append((index, metaop))
        if pending:
            self._profile_pending(pending, curves)
        # Restore MetaGraph iteration order (pending curves were appended last).
        return {index: curves[index] for index in metagraph.metaops}, reused

    # -------------------------------------------------------------- internals
    def _profile_pending(
        self,
        pending: list[tuple[int, MetaOp]],
        curves: dict[int, ScalingCurve],
    ) -> None:
        """Profile the MetaOps without a reusable curve, batched.

        Deterministic profiles are deduplicated by curve key before the
        batched profiler call; noisy profiles keep one profile per MetaOp in
        MetaGraph order so the noise RNG stream matches sequential profiling.
        """
        if self._cache_active:
            seen: set[CurveKey] = set()
            unique: list[tuple[CurveKey, MetaOp]] = []
            for _, metaop in pending:
                key = metaop.curve_key
                if key not in seen:
                    seen.add(key)
                    unique.append((key, metaop))
            sample_lists = self.profiler.profile_operators(
                [metaop.representative for _, metaop in unique],
                points=self.profile_points,
                include_backward=self.include_backward,
            )
            fitted = {
                key: ScalingCurve(samples)
                for (key, _), samples in zip(unique, sample_lists)
            }
            for key, curve in fitted.items():
                self._cache_store(self._cache_key(key), curve)
            for index, metaop in pending:
                curves[index] = fitted[metaop.curve_key]
        else:
            sample_lists = self.profiler.profile_operators(
                [metaop.representative for _, metaop in pending],
                points=self.profile_points,
                include_backward=self.include_backward,
            )
            for (index, _), samples in zip(pending, sample_lists):
                curves[index] = ScalingCurve(samples)
