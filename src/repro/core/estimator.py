"""Scalability estimator: piecewise alpha-beta scaling curves (§3.2, App. A).

The estimator profiles each MetaOp for a handful of discrete allocation sizes
and fits a *piecewise* alpha-beta function

    T_m(n) = alpha_i + beta_i / n        for n in [n_{i-1}, n_i]

through the measurements.  The piecewise form matters because MT MM workloads
invoke different kernels under different per-device workloads, so a single
alpha-beta fit (as used by homogeneous-model planners) misestimates lightweight
operators.  The resulting :class:`ScalingCurve` exposes:

* ``time(n)`` — estimated per-operator execution time on ``n`` devices,
* ``inverse(t)`` — the (possibly fractional) allocation needed to reach time
  ``t`` (the ``Find_Inverse_Value`` routine of Appendix B),
* ``speedup(n)`` — the resource scalability ``sigma(n) = T(1)/T(n)`` of Fig. 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.metagraph import MetaGraph, MetaOp
from repro.costmodel.profiler import ProfileSample, SyntheticProfiler


class EstimatorError(Exception):
    """Raised for malformed profiles or unusable curves."""


#: Key type of reusable scaling curves: the structural workload signature of a
#: MetaOp's representative operator.  Two MetaOps with equal keys profile
#: identically (on the same cluster and planner configuration), so a fitted
#: curve can be transferred between plans — the basis of incremental
#: re-planning in :mod:`repro.service.incremental`.
CurveKey = tuple


def metaop_curve_key(metaop: MetaOp) -> CurveKey:
    """Reuse key of a MetaOp's scaling curve (workload signature of its rep)."""
    op = metaop.representative
    return (
        op.op_type,
        op.modality,
        op.input_spec.as_tuple(),
        op.flops,
        op.param_bytes,
        op.activation_bytes,
    )


@dataclass(frozen=True)
class AlphaBetaPiece:
    """One piece of the piecewise alpha-beta model: ``T(n) = alpha + beta/n``."""

    n_lo: float
    n_hi: float
    alpha: float
    beta: float

    def time(self, n: float) -> float:
        if n <= 0:
            raise EstimatorError("Allocation must be positive")
        return self.alpha + self.beta / n

    def covers(self, n: float) -> bool:
        return self.n_lo <= n <= self.n_hi


class ScalingCurve:
    """Piecewise alpha-beta execution-time curve of one MetaOp."""

    def __init__(self, samples: Sequence[ProfileSample]) -> None:
        if not samples:
            raise EstimatorError("Cannot fit a scaling curve with no samples")
        ordered = sorted(samples, key=lambda s: s.n_devices)
        deduped: list[ProfileSample] = []
        for sample in ordered:
            if deduped and deduped[-1].n_devices == sample.n_devices:
                continue
            deduped.append(sample)
        # Enforce the non-increasing property required by Theorem 1: noisy
        # measurements occasionally show a slowdown at larger allocations; the
        # allocator needs a monotone curve, so clip upward excursions.
        monotone: list[ProfileSample] = []
        for sample in deduped:
            time = sample.time_seconds
            if monotone:
                time = min(time, monotone[-1].time_seconds)
            monotone.append(ProfileSample(sample.n_devices, max(time, 1e-12)))
        self.samples = monotone
        self.pieces = self._fit_pieces(monotone)

    @staticmethod
    def _fit_pieces(samples: list[ProfileSample]) -> list[AlphaBetaPiece]:
        if len(samples) == 1:
            only = samples[0]
            return [
                AlphaBetaPiece(
                    n_lo=only.n_devices,
                    n_hi=only.n_devices,
                    alpha=only.time_seconds,
                    beta=0.0,
                )
            ]
        pieces: list[AlphaBetaPiece] = []
        for left, right in zip(samples, samples[1:]):
            inv_lo, inv_hi = 1.0 / left.n_devices, 1.0 / right.n_devices
            if math.isclose(inv_lo, inv_hi):
                beta = 0.0
            else:
                beta = (left.time_seconds - right.time_seconds) / (inv_lo - inv_hi)
            alpha = left.time_seconds - beta * inv_lo
            pieces.append(
                AlphaBetaPiece(
                    n_lo=float(left.n_devices),
                    n_hi=float(right.n_devices),
                    alpha=alpha,
                    beta=beta,
                )
            )
        return pieces

    # -------------------------------------------------------------- evaluation
    @property
    def min_devices(self) -> int:
        return self.samples[0].n_devices

    @property
    def max_devices(self) -> int:
        return self.samples[-1].n_devices

    def time(self, n: float) -> float:
        """Estimated per-operator execution time for a (fractional) allocation."""
        if n <= 0:
            raise EstimatorError("Allocation must be positive")
        if n <= self.pieces[0].n_lo:
            return self.pieces[0].time(n)
        for piece in self.pieces:
            if piece.covers(n):
                return piece.time(n)
        return self.pieces[-1].time(n)

    def inverse(self, target_time: float, max_devices: float | None = None) -> float:
        """Allocation ``n`` such that ``time(n) == target_time`` (Eq. 11).

        Values below one device are allowed (they signal that the MetaOp does
        not need a full device to meet the target, the "dummy allocation"
        situation of §3.3).  The result is capped at ``max_devices`` when the
        target is unreachable even with the largest profiled allocation.
        """
        if target_time <= 0:
            raise EstimatorError("Target time must be positive")
        cap = max_devices if max_devices is not None else float(self.max_devices)
        if target_time >= self.time(self.min_devices):
            piece = self.pieces[0]
            if piece.beta <= 0:
                return float(self.min_devices)
            if target_time <= piece.alpha:
                return float(self.min_devices)
            return max(1e-6, piece.beta / (target_time - piece.alpha))
        for piece in self.pieces:
            t_lo = piece.time(piece.n_lo)
            t_hi = piece.time(piece.n_hi)
            if t_hi <= target_time <= t_lo:
                if piece.beta <= 0 or math.isclose(t_lo, t_hi):
                    return float(piece.n_hi)
                return piece.beta / (target_time - piece.alpha)
        # Target faster than anything profiled: extrapolate with the last piece.
        last = self.pieces[-1]
        if last.beta <= 0 or target_time <= last.alpha:
            return float(cap)
        return min(float(cap), last.beta / (target_time - last.alpha))

    def speedup(self, n: float) -> float:
        """Resource scalability ``sigma(n) = T(1) / T(n)`` (Fig. 4, right)."""
        return self.time(1.0) / self.time(n)

    def as_table(self) -> list[tuple[int, float, float]]:
        """Measured points as ``(n, time, speedup)`` rows (for reporting)."""
        base = self.samples[0].time_seconds
        return [
            (s.n_devices, s.time_seconds, base / s.time_seconds) for s in self.samples
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScalingCurve(n=[{self.min_devices}..{self.max_devices}], "
            f"T(1)={self.time(self.min_devices):.4e}s, pieces={len(self.pieces)})"
        )


class ScalabilityEstimator:
    """Profiles MetaOps and fits their scaling curves."""

    def __init__(
        self,
        profiler: SyntheticProfiler,
        profile_points: Sequence[int] | None = None,
        include_backward: bool = True,
    ) -> None:
        self.profiler = profiler
        self.profile_points = (
            list(profile_points) if profile_points is not None else None
        )
        self.include_backward = include_backward

    def estimate_metaop(self, metaop: MetaOp) -> ScalingCurve:
        """Fit the per-operator scaling curve of one MetaOp."""
        samples = self.profiler.profile_operator(
            metaop.representative,
            points=self.profile_points,
            include_backward=self.include_backward,
        )
        return ScalingCurve(samples)

    def estimate(
        self,
        metagraph: MetaGraph,
        precomputed: Mapping[CurveKey, ScalingCurve] | None = None,
    ) -> dict[int, ScalingCurve]:
        """Fit scaling curves for every MetaOp in the MetaGraph.

        MetaOps whose curve key appears in ``precomputed`` reuse the supplied
        curve instead of being re-profiled.
        """
        curves, _ = self.estimate_with_reuse(metagraph, precomputed)
        return curves

    def estimate_with_reuse(
        self,
        metagraph: MetaGraph,
        precomputed: Mapping[CurveKey, ScalingCurve] | None = None,
    ) -> tuple[dict[int, ScalingCurve], int]:
        """Like :meth:`estimate`, also returning how many curves were reused."""
        curves: dict[int, ScalingCurve] = {}
        reused = 0
        for index, metaop in metagraph.metaops.items():
            curve = (
                precomputed.get(metaop_curve_key(metaop))
                if precomputed is not None
                else None
            )
            if curve is not None:
                reused += 1
            else:
                curve = self.estimate_metaop(metaop)
            curves[index] = curve
        return curves, reused
