"""The Spindle execution planner: contraction, estimation, allocation,
wavefront scheduling and device placement."""

from repro.core.allocator import (
    AllocationError,
    ContinuousAllocation,
    InverseTable,
    ResourceAllocator,
    ValidAllocationGrid,
    default_valid_allocations,
    find_inverse_value,
)
from repro.core.contraction import can_contract, contract_graph
from repro.core.estimator import (
    AlphaBetaPiece,
    CurveKey,
    EstimatorError,
    ScalabilityEstimator,
    ScalingCurve,
    metaop_curve_key,
)
from repro.core.metagraph import MetaGraph, MetaGraphError, MetaOp
from repro.core.placement import (
    LocalityAwarePlacer,
    PlacementError,
    SequentialPlacer,
)
from repro.core.plan import (
    ASLTuple,
    ExecutionPlan,
    LevelAllocation,
    PlacementResult,
    PlanError,
    PlanningReport,
    Wave,
    WaveEntry,
    WavefrontSchedule,
)
from repro.core.planner import ExecutionPlanner
from repro.core.scheduler import SchedulerError, WavefrontScheduler
from repro.core.serialization import (
    SerializationError,
    load_plan_document,
    plan_to_dict,
    plan_to_json,
    save_plan,
)

__all__ = [
    "ASLTuple",
    "AllocationError",
    "AlphaBetaPiece",
    "ContinuousAllocation",
    "InverseTable",
    "EstimatorError",
    "ExecutionPlan",
    "ExecutionPlanner",
    "LevelAllocation",
    "LocalityAwarePlacer",
    "MetaGraph",
    "MetaGraphError",
    "MetaOp",
    "PlacementError",
    "PlacementResult",
    "PlanError",
    "PlanningReport",
    "ResourceAllocator",
    "ValidAllocationGrid",
    "ScalabilityEstimator",
    "ScalingCurve",
    "SchedulerError",
    "SequentialPlacer",
    "SerializationError",
    "load_plan_document",
    "plan_to_dict",
    "plan_to_json",
    "save_plan",
    "Wave",
    "WaveEntry",
    "WavefrontSchedule",
    "WavefrontScheduler",
    "CurveKey",
    "can_contract",
    "contract_graph",
    "default_valid_allocations",
    "find_inverse_value",
    "metaop_curve_key",
]
