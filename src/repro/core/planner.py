"""End-to-end execution planner tying the pipeline of Fig. 2 together.

``ExecutionPlanner.plan`` takes the user-defined tasks (or an already-merged
computation graph) and the target cluster, and runs

    graph contraction (§3.1) → scalability estimation (§3.2)
    → per-MetaLevel resource allocation (§3.3) → wavefront scheduling (§3.4)
    → device placement (§3.5)

producing an :class:`~repro.core.plan.ExecutionPlan` that the runtime engine
(§3.6) instantiates and executes.  Planning-stage wall-clock timings are
recorded in the plan's :class:`~repro.core.plan.PlanningReport` (Fig. 12);
each stage additionally runs inside a ``planner.<stage>`` span and feeds the
``planner.solve_seconds{stage=...}`` histogram of :mod:`repro.obs`, so the
report, the metrics registry and an exported trace share one clock window.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Mapping, Sequence, Union

from repro.cluster.topology import ClusterTopology
from repro.core.allocator import (
    ResourceAllocator,
    ValidAllocationFn,
    ValidAllocationGrid,
)
from repro.core.contraction import contract_graph
from repro.core.estimator import CurveKey, ScalabilityEstimator, ScalingCurve
from repro.core.placement import LocalityAwarePlacer, SequentialPlacer
from repro.core.plan import ExecutionPlan, PlanningReport
from repro.core.scheduler import WavefrontScheduler
from repro.costmodel.memory import MemoryModel
from repro.costmodel.profiler import SyntheticProfiler
from repro.costmodel.timing import ExecutionTimeModel, TimingModelConfig
from repro.graph.builder import build_unified_graph
from repro.graph.graph import ComputationGraph
from repro.graph.task import SpindleTask
from repro.obs import get_metrics, get_tracer

PlannerInput = Union[ComputationGraph, Sequence[SpindleTask]]

#: Observer invoked after each planning stage with ``(stage_name, seconds)``.
StageHook = Callable[[str, float], None]


def _function_signature(fn: Any) -> str:
    """Identity string for a configuration callable, for fingerprinting.

    Named module-level functions are identified by ``module.qualname`` (stable
    across planner instances and processes).  Closures may capture different
    state under one qualname, so the repr of their captured cell contents is
    folded in — closures over equal-repr values share a signature, closures
    over different configuration values never do.
    """
    qualname = getattr(fn, "__qualname__", None)
    if qualname is None:
        return repr(fn)
    signature = f"{getattr(fn, '__module__', '')}.{qualname}"
    closure = getattr(fn, "__closure__", None)
    if closure:
        cells = ",".join(repr(cell.cell_contents) for cell in closure)
        signature += f"[{cells}]"
    return signature


class ExecutionPlanner:
    """The Spindle execution planner (Fig. 2, left half)."""

    def __init__(
        self,
        cluster: ClusterTopology,
        timing_config: TimingModelConfig | None = None,
        profiler: SyntheticProfiler | None = None,
        memory_model: MemoryModel | None = None,
        valid_allocation_fn: ValidAllocationFn | None = None,
        placement_strategy: str = "locality",
        profile_noise_std: float = 0.0,
        optimized: bool = True,
        spec_aware: bool = True,
    ) -> None:
        """``optimized`` selects the vectorized hot path (cached allocation
        grids, estimator curve memoization, table-driven bisection); the
        ``False`` setting runs the reference implementations instead and
        exists so plan-equivalence tests can prove both paths emit identical
        plans.  The flag never affects plan contents and is therefore not part
        of :meth:`config_signature`.

        ``spec_aware`` enables heterogeneity-aware planning on clusters with
        more than one spec class (per-class scaling curves, spec-class
        partitioned levels, per-group pacing).  It has no effect whatsoever on
        homogeneous clusters — those short-circuit to the classic pipeline —
        and ``False`` forces the classic slowest-device-paced plan everywhere
        (the baseline the heterogeneous benchmarks compare against).
        """
        if placement_strategy not in ("locality", "sequential"):
            raise ValueError(
                f"Unknown placement strategy {placement_strategy!r}; "
                "expected 'locality' or 'sequential'"
            )
        self.cluster = cluster
        self.timing_model = ExecutionTimeModel(cluster, timing_config)
        self.profiler = profiler or SyntheticProfiler(
            cluster, self.timing_model, noise_std=profile_noise_std
        )
        self.memory_model = memory_model or MemoryModel()
        self.optimized = optimized
        self.spec_aware = spec_aware
        self._hetero_allocator: "HeterogeneousLevelAllocator | None" = None
        self.estimator = ScalabilityEstimator(
            self.profiler, enable_curve_cache=optimized
        )
        # One memoized valid-allocation grid store shared by the allocator
        # (bisection + discretization) and the scheduler (wave extension).
        self.allocation_grid = ValidAllocationGrid(valid_allocation_fn)
        self.allocator = ResourceAllocator(
            cluster.num_devices,
            valid_allocation_fn=valid_allocation_fn,
            allocation_grid=self.allocation_grid,
            optimized=optimized,
        )
        self.scheduler = WavefrontScheduler(
            cluster.num_devices,
            valid_allocation_fn=valid_allocation_fn
            or self.allocator.valid_allocation_fn,
            allocation_grid=self.allocation_grid,
        )
        if placement_strategy == "locality":
            self.placer = LocalityAwarePlacer(cluster, self.memory_model)
        else:
            self.placer = SequentialPlacer(cluster, self.memory_model)
        self.placement_strategy = placement_strategy

    # ------------------------------------------------------------- public API
    def plan(
        self,
        workload: PlannerInput,
        *,
        precomputed_curves: Mapping[CurveKey, ScalingCurve] | None = None,
        stage_hook: StageHook | None = None,
        fingerprint: str | None = None,
    ) -> ExecutionPlan:
        """Produce the full Spindle execution plan for ``workload``.

        Parameters
        ----------
        precomputed_curves:
            Scaling curves keyed by
            :func:`~repro.core.estimator.metaop_curve_key`; MetaOps with a
            matching key skip the (dominant) profiling/fitting step.  Curves
            must come from the same cluster and planner configuration.
        stage_hook:
            Called with ``(stage_name, seconds)`` after each pipeline stage,
            so callers can observe planning progress without re-timing it.
        fingerprint:
            The workload's canonical fingerprint, if the caller (a plan cache
            or service) already computed it; omitted, it is derived here.
        """
        report = PlanningReport()
        tracer = get_tracer()
        metrics = get_metrics()

        def finish_stage(name: str, span) -> None:
            # Span, report and hook all observe the *same* clock window, so
            # the trace and the reported timings can never disagree.
            seconds = span.seconds
            report.stage_seconds[name] = seconds
            metrics.observe("planner.solve_seconds", seconds, stage=name)
            if stage_hook is not None:
                stage_hook(name, seconds)

        if fingerprint is None:
            fingerprint = self._fingerprint(workload)
        graph = self._resolve_graph(workload)

        with tracer.timed(
            "planner.plan", category="planner", fingerprint=fingerprint[:12]
        ) as plan_span:
            with tracer.timed("planner.graph_contraction", category="planner") as span:
                metagraph = contract_graph(graph)
            finish_stage("graph_contraction", span)
            report.num_metaops = metagraph.num_metaops
            report.num_levels = metagraph.num_levels
            plan_span.set(
                num_metaops=metagraph.num_metaops, num_levels=metagraph.num_levels
            )

            with tracer.timed(
                "planner.scalability_estimation", category="planner"
            ) as span:
                curves, reused = self.estimator.estimate_with_reuse(
                    metagraph, precomputed_curves
                )
            finish_stage("scalability_estimation", span)
            report.reused_curves = reused

            with tracer.timed("planner.resource_allocation", category="planner") as span:
                if self.spec_aware and self.cluster.num_spec_classes > 1:
                    hetero = self._hetero()
                    allocation = hetero.allocate(metagraph, curves)
                    level_allocations = allocation.level_allocations
                    scheduling_curves = allocation.curves
                    report.partitioned_levels = len(allocation.partitioned_levels)
                else:
                    level_allocations = self.allocator.allocate(metagraph, curves)
                    scheduling_curves = curves
            finish_stage("resource_allocation", span)
            report.level_c_star = {
                level: alloc.c_star for level, alloc in level_allocations.items()
            }

            with tracer.timed(
                "planner.wavefront_scheduling", category="planner"
            ) as span:
                metaops_by_level = {
                    level: metagraph.metaops_at_level(level)
                    for level in level_allocations
                }
                schedule = self.scheduler.schedule(
                    level_allocations, metaops_by_level, scheduling_curves
                )
            finish_stage("wavefront_scheduling", span)
            report.num_waves = schedule.num_waves

            with tracer.timed("planner.device_placement", category="planner") as span:
                placement = self.placer.place(schedule.waves, metagraph)
            finish_stage("device_placement", span)

            plan = ExecutionPlan(
                metagraph=metagraph,
                cluster=self.cluster,
                schedule=schedule,
                placement=placement,
                curves=curves,
                level_allocations=level_allocations,
                report=report,
                fingerprint=fingerprint,
            )
            plan.validate()
        return plan

    def config_signature(self) -> dict[str, Any]:
        """Canonical description of everything that shapes this planner's plans.

        Together with the workload and the cluster this fully determines the
        produced plan; the planning service folds it into cache fingerprints
        so planners with different configurations never share cache entries.
        """
        signature = {
            "placement_strategy": self.placement_strategy,
            "profile_noise_std": self.profiler.noise_std,
            "timing": dataclasses.asdict(self.timing_model.config),
            "memory": dataclasses.asdict(self.memory_model.config),
            "profile_points": self.estimator.profile_points,
            "include_backward": self.estimator.include_backward,
            "valid_allocation_fn": _function_signature(
                self.allocator.valid_allocation_fn
            ),
        }
        # The default (spec-aware) configuration omits the key so that every
        # fingerprint minted before spec-class planning existed stays valid;
        # only the non-default slowest-device-paced configuration is marked,
        # which is all the cache needs to keep the two apart.
        if not self.spec_aware:
            signature["spec_aware"] = False
        return signature

    # -------------------------------------------------------------- internals
    def _hetero(self) -> "HeterogeneousLevelAllocator":
        """Lazily built heterogeneity-aware level allocator (hetero clusters)."""
        if self._hetero_allocator is None:
            from repro.core.hetero import HeterogeneousLevelAllocator

            self._hetero_allocator = HeterogeneousLevelAllocator(
                self.cluster, self.allocator, self.estimator
            )
        return self._hetero_allocator

    def _fingerprint(self, workload: PlannerInput) -> str:
        # Imported lazily: the service package depends on the core package.
        from repro.service.fingerprint import fingerprint_workload

        return fingerprint_workload(workload, self.cluster, self.config_signature())

    def _resolve_graph(self, workload: PlannerInput) -> ComputationGraph:
        if isinstance(workload, ComputationGraph):
            return workload
        tasks = list(workload)
        if not tasks:
            raise ValueError("Planner needs at least one task")
        return build_unified_graph(tasks)
