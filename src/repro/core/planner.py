"""End-to-end execution planner tying the pipeline of Fig. 2 together.

``ExecutionPlanner.plan`` takes the user-defined tasks (or an already-merged
computation graph) and the target cluster, and runs

    graph contraction (§3.1) → scalability estimation (§3.2)
    → per-MetaLevel resource allocation (§3.3) → wavefront scheduling (§3.4)
    → device placement (§3.5)

producing an :class:`~repro.core.plan.ExecutionPlan` that the runtime engine
(§3.6) instantiates and executes.  Planning-stage wall-clock timings are
recorded in the plan's :class:`~repro.core.plan.PlanningReport` (Fig. 12).
"""

from __future__ import annotations

import time
from typing import Sequence, Union

from repro.cluster.topology import ClusterTopology
from repro.core.allocator import ResourceAllocator, ValidAllocationFn
from repro.core.contraction import contract_graph
from repro.core.estimator import ScalabilityEstimator
from repro.core.placement import LocalityAwarePlacer, SequentialPlacer
from repro.core.plan import ExecutionPlan, PlanningReport
from repro.core.scheduler import WavefrontScheduler
from repro.costmodel.memory import MemoryModel
from repro.costmodel.profiler import SyntheticProfiler
from repro.costmodel.timing import ExecutionTimeModel, TimingModelConfig
from repro.graph.builder import build_unified_graph
from repro.graph.graph import ComputationGraph
from repro.graph.task import SpindleTask

PlannerInput = Union[ComputationGraph, Sequence[SpindleTask]]


class ExecutionPlanner:
    """The Spindle execution planner (Fig. 2, left half)."""

    def __init__(
        self,
        cluster: ClusterTopology,
        timing_config: TimingModelConfig | None = None,
        profiler: SyntheticProfiler | None = None,
        memory_model: MemoryModel | None = None,
        valid_allocation_fn: ValidAllocationFn | None = None,
        placement_strategy: str = "locality",
        profile_noise_std: float = 0.0,
    ) -> None:
        if placement_strategy not in ("locality", "sequential"):
            raise ValueError(
                f"Unknown placement strategy {placement_strategy!r}; "
                "expected 'locality' or 'sequential'"
            )
        self.cluster = cluster
        self.timing_model = ExecutionTimeModel(cluster, timing_config)
        self.profiler = profiler or SyntheticProfiler(
            cluster, self.timing_model, noise_std=profile_noise_std
        )
        self.memory_model = memory_model or MemoryModel()
        self.estimator = ScalabilityEstimator(self.profiler)
        self.allocator = ResourceAllocator(
            cluster.num_devices, valid_allocation_fn=valid_allocation_fn
        )
        self.scheduler = WavefrontScheduler(
            cluster.num_devices,
            valid_allocation_fn=valid_allocation_fn
            or self.allocator.valid_allocation_fn,
        )
        if placement_strategy == "locality":
            self.placer = LocalityAwarePlacer(cluster, self.memory_model)
        else:
            self.placer = SequentialPlacer(cluster, self.memory_model)
        self.placement_strategy = placement_strategy

    # ------------------------------------------------------------- public API
    def plan(self, workload: PlannerInput) -> ExecutionPlan:
        """Produce the full Spindle execution plan for ``workload``."""
        report = PlanningReport()

        graph = self._resolve_graph(workload)

        start = time.perf_counter()
        metagraph = contract_graph(graph)
        report.stage_seconds["graph_contraction"] = time.perf_counter() - start
        report.num_metaops = metagraph.num_metaops
        report.num_levels = metagraph.num_levels

        start = time.perf_counter()
        curves = self.estimator.estimate(metagraph)
        report.stage_seconds["scalability_estimation"] = time.perf_counter() - start

        start = time.perf_counter()
        level_allocations = self.allocator.allocate(metagraph, curves)
        report.stage_seconds["resource_allocation"] = time.perf_counter() - start
        report.level_c_star = {
            level: alloc.c_star for level, alloc in level_allocations.items()
        }

        start = time.perf_counter()
        metaops_by_level = {
            level: metagraph.metaops_at_level(level)
            for level in level_allocations
        }
        schedule = self.scheduler.schedule(level_allocations, metaops_by_level, curves)
        report.stage_seconds["wavefront_scheduling"] = time.perf_counter() - start
        report.num_waves = schedule.num_waves

        start = time.perf_counter()
        placement = self.placer.place(schedule.waves, metagraph)
        report.stage_seconds["device_placement"] = time.perf_counter() - start

        plan = ExecutionPlan(
            metagraph=metagraph,
            cluster=self.cluster,
            schedule=schedule,
            placement=placement,
            curves=curves,
            level_allocations=level_allocations,
            report=report,
        )
        plan.validate()
        return plan

    # -------------------------------------------------------------- internals
    def _resolve_graph(self, workload: PlannerInput) -> ComputationGraph:
        if isinstance(workload, ComputationGraph):
            return workload
        tasks = list(workload)
        if not tasks:
            raise ValueError("Planner needs at least one task")
        return build_unified_graph(tasks)
