"""End-to-end execution planner tying the pipeline of Fig. 2 together.

``ExecutionPlanner.plan`` takes the user-defined tasks (or an already-merged
computation graph) and the target cluster, and runs

    graph contraction (§3.1) → scalability estimation (§3.2)
    → per-MetaLevel resource allocation (§3.3) → wavefront scheduling (§3.4)
    → device placement (§3.5)

producing an :class:`~repro.core.plan.ExecutionPlan` that the runtime engine
(§3.6) instantiates and executes.  Planning-stage wall-clock timings are
recorded in the plan's :class:`~repro.core.plan.PlanningReport` (Fig. 12);
each stage additionally runs inside a ``planner.<stage>`` span and feeds the
``planner.solve_seconds{stage=...}`` histogram of :mod:`repro.obs`, so the
report, the metrics registry and an exported trace share one clock window.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Mapping, Sequence, Union

from repro.cluster.topology import ClusterTopology
from repro.core.allocator import (
    ResourceAllocator,
    ValidAllocationFn,
    ValidAllocationGrid,
)
from repro.core.contraction import contract_graph
from repro.core.estimator import CurveKey, ScalabilityEstimator, ScalingCurve
from repro.core.placement import LocalityAwarePlacer, SequentialPlacer
from repro.core.plan import (
    ASLTuple,
    ExecutionPlan,
    LevelAllocation,
    PlacementResult,
    PlanningReport,
    Wave,
    WaveEntry,
    WavefrontSchedule,
)
from repro.core.plandiff import NO_REUSE, diff_metagraphs, remap_indices
from repro.core.scheduler import WavefrontScheduler
from repro.costmodel.memory import MemoryModel
from repro.costmodel.profiler import SyntheticProfiler
from repro.costmodel.timing import ExecutionTimeModel, TimingModelConfig
from repro.graph.builder import build_unified_graph
from repro.graph.graph import ComputationGraph
from repro.graph.task import SpindleTask
from repro.obs import get_metrics, get_tracer

PlannerInput = Union[ComputationGraph, Sequence[SpindleTask]]

#: Observer invoked after each planning stage with ``(stage_name, seconds)``.
StageHook = Callable[[str, float], None]


def _function_signature(fn: Any) -> str:
    """Identity string for a configuration callable, for fingerprinting.

    Named module-level functions are identified by ``module.qualname`` (stable
    across planner instances and processes).  Closures may capture different
    state under one qualname, so the repr of their captured cell contents is
    folded in — closures over equal-repr values share a signature, closures
    over different configuration values never do.
    """
    qualname = getattr(fn, "__qualname__", None)
    if qualname is None:
        return repr(fn)
    signature = f"{getattr(fn, '__module__', '')}.{qualname}"
    closure = getattr(fn, "__closure__", None)
    if closure:
        cells = ",".join(repr(cell.cell_contents) for cell in closure)
        signature += f"[{cells}]"
    return signature


class ExecutionPlanner:
    """The Spindle execution planner (Fig. 2, left half)."""

    def __init__(
        self,
        cluster: ClusterTopology,
        timing_config: TimingModelConfig | None = None,
        profiler: SyntheticProfiler | None = None,
        memory_model: MemoryModel | None = None,
        valid_allocation_fn: ValidAllocationFn | None = None,
        placement_strategy: str = "locality",
        profile_noise_std: float = 0.0,
        optimized: bool = True,
        spec_aware: bool = True,
    ) -> None:
        """``optimized`` selects the vectorized hot path (cached allocation
        grids, estimator curve memoization, table-driven bisection); the
        ``False`` setting runs the reference implementations instead and
        exists so plan-equivalence tests can prove both paths emit identical
        plans.  The flag never affects plan contents and is therefore not part
        of :meth:`config_signature`.

        ``spec_aware`` enables heterogeneity-aware planning on clusters with
        more than one spec class (per-class scaling curves, spec-class
        partitioned levels, per-group pacing).  It has no effect whatsoever on
        homogeneous clusters — those short-circuit to the classic pipeline —
        and ``False`` forces the classic slowest-device-paced plan everywhere
        (the baseline the heterogeneous benchmarks compare against).
        """
        if placement_strategy not in ("locality", "sequential"):
            raise ValueError(
                f"Unknown placement strategy {placement_strategy!r}; "
                "expected 'locality' or 'sequential'"
            )
        self.cluster = cluster
        self.timing_model = ExecutionTimeModel(cluster, timing_config)
        self.profiler = profiler or SyntheticProfiler(
            cluster, self.timing_model, noise_std=profile_noise_std
        )
        self.memory_model = memory_model or MemoryModel()
        self.optimized = optimized
        self.spec_aware = spec_aware
        self._hetero_allocator: "HeterogeneousLevelAllocator | None" = None
        self.estimator = ScalabilityEstimator(
            self.profiler, enable_curve_cache=optimized
        )
        # One memoized valid-allocation grid store shared by the allocator
        # (bisection + discretization) and the scheduler (wave extension).
        self.allocation_grid = ValidAllocationGrid(valid_allocation_fn)
        self.allocator = ResourceAllocator(
            cluster.num_devices,
            valid_allocation_fn=valid_allocation_fn,
            allocation_grid=self.allocation_grid,
            optimized=optimized,
        )
        self.scheduler = WavefrontScheduler(
            cluster.num_devices,
            valid_allocation_fn=valid_allocation_fn
            or self.allocator.valid_allocation_fn,
            allocation_grid=self.allocation_grid,
        )
        if placement_strategy == "locality":
            self.placer = LocalityAwarePlacer(cluster, self.memory_model)
        else:
            self.placer = SequentialPlacer(cluster, self.memory_model)
        self.placement_strategy = placement_strategy

    # ------------------------------------------------------------- public API
    def plan(
        self,
        workload: PlannerInput,
        *,
        precomputed_curves: Mapping[CurveKey, ScalingCurve] | None = None,
        stage_hook: StageHook | None = None,
        fingerprint: str | None = None,
    ) -> ExecutionPlan:
        """Produce the full Spindle execution plan for ``workload``.

        Parameters
        ----------
        precomputed_curves:
            Scaling curves keyed by
            :func:`~repro.core.estimator.metaop_curve_key`; MetaOps with a
            matching key skip the (dominant) profiling/fitting step.  Curves
            must come from the same cluster and planner configuration.
        stage_hook:
            Called with ``(stage_name, seconds)`` after each pipeline stage,
            so callers can observe planning progress without re-timing it.
        fingerprint:
            The workload's canonical fingerprint, if the caller (a plan cache
            or service) already computed it; omitted, it is derived here.
        """
        return self._solve(
            workload,
            precomputed_curves=precomputed_curves,
            stage_hook=stage_hook,
            fingerprint=fingerprint,
            previous=None,
        )

    def plan_incremental(
        self,
        workload: PlannerInput,
        *,
        previous: ExecutionPlan | None,
        precomputed_curves: Mapping[CurveKey, ScalingCurve] | None = None,
        stage_hook: StageHook | None = None,
        fingerprint: str | None = None,
    ) -> ExecutionPlan:
        """Plan ``workload``, reusing solved pieces of ``previous`` when sound.

        The produced plan is **byte-identical** to what :meth:`plan` would
        return for the same ``workload`` — identical fingerprint, identical
        serialized document apart from ``planning_report`` stage timings and
        reuse counters.  Only the solve cost changes; the equivalence tests
        pin this contract on every reuse tier.

        Reuse tiers (see :mod:`repro.core.plandiff`):

        1. **Full-structure reuse** — the new contracted graph is structurally
           identical to ``previous``'s under the identity index mapping
           (e.g. a departed job replaced by an isomorphic one under a fresh
           name): allocations, waves *and* device placement transfer; only
           contraction and (pool-served) estimation run.
        2. **Per-level reuse** — individual MetaLevels whose signatures match
           positionally adopt the previous ``LevelAllocation`` (indices
           remapped); scheduling and placement re-run in full, because both
           are global.
        3. **Fallback** — no reuse: behaves exactly like :meth:`plan`.

        Reuse is refused entirely (tier 3) when ``previous`` is ``None``, was
        planned for a different cluster signature, carries spec-class
        partitions, when profiling noise is enabled (the RNG stream must not
        be perturbed), or on heterogeneity-aware multi-class planning.
        ``previous`` must come from a planner with this planner's
        configuration (:meth:`config_signature`); callers such as
        :class:`~repro.service.IncrementalPlanner` guarantee that by
        construction, and the cluster signature is re-checked here.
        """
        if previous is not None and not self._reuse_sound(previous):
            previous = None
        return self._solve(
            workload,
            precomputed_curves=precomputed_curves,
            stage_hook=stage_hook,
            fingerprint=fingerprint,
            previous=previous,
        )

    def _solve(
        self,
        workload: PlannerInput,
        *,
        precomputed_curves: Mapping[CurveKey, ScalingCurve] | None,
        stage_hook: StageHook | None,
        fingerprint: str | None,
        previous: ExecutionPlan | None,
    ) -> ExecutionPlan:
        report = PlanningReport()
        tracer = get_tracer()
        metrics = get_metrics()

        def finish_stage(name: str, span) -> None:
            # Span, report and hook all observe the *same* clock window, so
            # the trace and the reported timings can never disagree.
            seconds = span.seconds
            report.stage_seconds[name] = seconds
            metrics.observe("planner.solve_seconds", seconds, stage=name)
            if stage_hook is not None:
                stage_hook(name, seconds)

        if fingerprint is None:
            fingerprint = self._fingerprint(workload)
        graph = self._resolve_graph(workload)

        with tracer.timed(
            "planner.plan", category="planner", fingerprint=fingerprint[:12]
        ) as plan_span:
            with tracer.timed("planner.graph_contraction", category="planner") as span:
                metagraph = contract_graph(graph)
            finish_stage("graph_contraction", span)
            report.num_metaops = metagraph.num_metaops
            report.num_levels = metagraph.num_levels
            plan_span.set(
                num_metaops=metagraph.num_metaops, num_levels=metagraph.num_levels
            )

            # Structural diff against the previous plan (incremental replans
            # only).  Cheap — signature tuples over MetaOps and edges — and
            # purely structural, so it cannot observe names or wall-clock.
            diff = NO_REUSE
            if previous is not None:
                diff = diff_metagraphs(previous.metagraph, metagraph)

            with tracer.timed(
                "planner.scalability_estimation", category="planner"
            ) as span:
                curves, reused = self.estimator.estimate_with_reuse(
                    metagraph, precomputed_curves
                )
            finish_stage("scalability_estimation", span)
            report.reused_curves = reused

            with tracer.timed("planner.resource_allocation", category="planner") as span:
                if self.spec_aware and self.cluster.num_spec_classes > 1:
                    hetero = self._hetero()
                    allocation = hetero.allocate(metagraph, curves)
                    level_allocations = allocation.level_allocations
                    scheduling_curves = allocation.curves
                    report.partitioned_levels = len(allocation.partitioned_levels)
                elif diff.full_structure:
                    level_allocations = _copy_allocations(previous.level_allocations)
                    scheduling_curves = curves
                    report.reused_levels = len(level_allocations)
                elif diff.reusable_levels:
                    level_allocations = self._allocate_mixed(
                        previous, metagraph, curves, set(diff.reusable_levels), report
                    )
                    scheduling_curves = curves
                else:
                    level_allocations = self.allocator.allocate(metagraph, curves)
                    scheduling_curves = curves
            finish_stage("resource_allocation", span)
            report.level_c_star = {
                level: alloc.c_star for level, alloc in level_allocations.items()
            }

            with tracer.timed(
                "planner.wavefront_scheduling", category="planner"
            ) as span:
                if diff.full_structure:
                    schedule = _copy_schedule(previous.schedule)
                else:
                    metaops_by_level = {
                        level: metagraph.metaops_at_level(level)
                        for level in level_allocations
                    }
                    schedule = self.scheduler.schedule(
                        level_allocations, metaops_by_level, scheduling_curves
                    )
            finish_stage("wavefront_scheduling", span)
            report.num_waves = schedule.num_waves

            with tracer.timed("planner.device_placement", category="planner") as span:
                if diff.full_structure:
                    placement = _copy_placement(previous.placement)
                else:
                    placement = self.placer.place(schedule.waves, metagraph)
            finish_stage("device_placement", span)

            if previous is not None:
                metrics.inc(
                    "planner.levels",
                    float(report.reused_levels),
                    outcome="reused",
                )
                metrics.inc(
                    "planner.levels",
                    float(report.num_levels - report.reused_levels),
                    outcome="solved",
                )
                plan_span.set(reused_levels=report.reused_levels)

            plan = ExecutionPlan(
                metagraph=metagraph,
                cluster=self.cluster,
                schedule=schedule,
                placement=placement,
                curves=curves,
                level_allocations=level_allocations,
                report=report,
                fingerprint=fingerprint,
            )
            plan.validate()
        return plan

    def config_signature(self) -> dict[str, Any]:
        """Canonical description of everything that shapes this planner's plans.

        Together with the workload and the cluster this fully determines the
        produced plan; the planning service folds it into cache fingerprints
        so planners with different configurations never share cache entries.
        """
        signature = {
            "placement_strategy": self.placement_strategy,
            "profile_noise_std": self.profiler.noise_std,
            "timing": dataclasses.asdict(self.timing_model.config),
            "memory": dataclasses.asdict(self.memory_model.config),
            "profile_points": self.estimator.profile_points,
            "include_backward": self.estimator.include_backward,
            "valid_allocation_fn": _function_signature(
                self.allocator.valid_allocation_fn
            ),
        }
        # The default (spec-aware) configuration omits the key so that every
        # fingerprint minted before spec-class planning existed stays valid;
        # only the non-default slowest-device-paced configuration is marked,
        # which is all the cache needs to keep the two apart.
        if not self.spec_aware:
            signature["spec_aware"] = False
        return signature

    # -------------------------------------------------------------- internals
    def _reuse_sound(self, previous: ExecutionPlan) -> bool:
        """Whether any structural reuse of ``previous`` can be byte-faithful."""
        if self.profiler.noise_std != 0.0:
            # Reuse skips profiling calls and would shift the RNG stream the
            # noisy reference path depends on.
            return False
        if self.spec_aware and self.cluster.num_spec_classes > 1:
            # Spec-class partitions are solved across levels; per-level reuse
            # has no sound unit there yet.
            return False
        if any(
            alloc.spec_classes is not None
            for alloc in previous.level_allocations.values()
        ):
            return False
        return previous.cluster.signature() == self.cluster.signature()

    def _allocate_mixed(
        self,
        previous: ExecutionPlan,
        metagraph: "MetaGraph",
        curves: dict[int, ScalingCurve],
        reusable: set[int],
        report: PlanningReport,
    ) -> dict[int, LevelAllocation]:
        """Per-level allocation: adopt matched levels, solve the rest.

        Mirrors :meth:`ResourceAllocator.allocate` exactly (same iteration
        order, same dict key order) so the mixed result is indistinguishable
        from a fresh allocation of the same values.
        """
        allocations: dict[int, LevelAllocation] = {}
        reused = 0
        for level, indices in enumerate(metagraph.levels()):
            metaops = [metagraph.metaop(i) for i in indices]
            adopted = None
            if level in reusable:
                prev_alloc = previous.level_allocations.get(level)
                index_map = remap_indices(previous.metagraph, metagraph, level)
                if prev_alloc is not None and index_map is not None:
                    adopted = _remap_allocation(prev_alloc, level, index_map)
            if adopted is not None:
                allocations[level] = adopted
                reused += 1
            else:
                allocations[level] = self.allocator.allocate_level(
                    level, metaops, curves
                )
        report.reused_levels = reused
        return allocations

    def _hetero(self) -> "HeterogeneousLevelAllocator":
        """Lazily built heterogeneity-aware level allocator (hetero clusters)."""
        if self._hetero_allocator is None:
            from repro.core.hetero import HeterogeneousLevelAllocator

            self._hetero_allocator = HeterogeneousLevelAllocator(
                self.cluster, self.allocator, self.estimator
            )
        return self._hetero_allocator

    def _fingerprint(self, workload: PlannerInput) -> str:
        # Imported lazily: the service package depends on the core package.
        from repro.service.fingerprint import fingerprint_workload

        return fingerprint_workload(workload, self.cluster, self.config_signature())

    def _resolve_graph(self, workload: PlannerInput) -> ComputationGraph:
        if isinstance(workload, ComputationGraph):
            return workload
        tasks = list(workload)
        if not tasks:
            raise ValueError("Planner needs at least one task")
        return build_unified_graph(tasks)


# ------------------------------------------------- structural-reuse copying
# Reused pieces are deep-copied into fresh objects: plans own mutable state
# (placement mutates ``WaveEntry.devices``; the simulator reads allocations),
# and two plans must never alias it.


def _remap_allocation(
    alloc: LevelAllocation, level: int, index_map: dict[int, int]
) -> LevelAllocation:
    """Adopt one level's allocation under the new graph's MetaOp indices."""
    return LevelAllocation(
        level=level,
        c_star=alloc.c_star,
        continuous={index_map[i]: v for i, v in alloc.continuous.items()},
        plan={
            index_map[i]: [ASLTuple(t.n_devices, t.layers, t.start) for t in tuples]
            for i, tuples in alloc.plan.items()
        },
    )


def _copy_allocations(
    level_allocations: dict[int, LevelAllocation],
) -> dict[int, LevelAllocation]:
    """Identity-mapped deep copy of a full allocation set."""
    return {
        level: _remap_allocation(
            alloc, alloc.level, {i: i for i in alloc.continuous}
        )
        for level, alloc in level_allocations.items()
    }


def _copy_schedule(schedule: WavefrontSchedule) -> WavefrontSchedule:
    """Deep copy of a wavefront schedule (placed devices carried over)."""
    waves = [
        Wave(
            index=wave.index,
            level=wave.level,
            start=wave.start,
            duration=wave.duration,
            entries=[
                WaveEntry(
                    metaop_index=entry.metaop_index,
                    n_devices=entry.n_devices,
                    layers=entry.layers,
                    duration=entry.duration,
                    operator_offset=entry.operator_offset,
                    devices=tuple(entry.devices),
                    spec_class=entry.spec_class,
                )
                for entry in wave.entries
            ],
        )
        for wave in schedule.waves
    ]
    return WavefrontSchedule(waves=waves, makespan=schedule.makespan)


def _copy_placement(placement: PlacementResult) -> PlacementResult:
    """Deep copy of a placement result (assignments, memory, OOM records)."""
    return PlacementResult(
        assignments=dict(placement.assignments),
        device_memory_bytes=dict(placement.device_memory_bytes),
        oom_events=list(placement.oom_events),
        backtracks=placement.backtracks,
    )
