"""Data structures describing allocation plans, waves and execution plans.

These types are shared by the resource allocator (§3.3), the wavefront
scheduler (§3.4), the device placement pass (§3.5) and the runtime engine
(§3.6):

* :class:`ASLTuple` — the paper's ⟨n, s, l⟩ tuple: ``l`` consecutive operators
  of a MetaOp allocated ``n`` devices starting at time ``s``.
* :class:`WaveEntry` / :class:`Wave` — one concurrent execution of sliced
  MetaOps on disjoint device groups; the smallest scheduling unit of Spindle.
* :class:`WavefrontSchedule` — the waves of all MetaLevels merged in order.
* :class:`ExecutionPlan` — the final product of the execution planner,
  consumed by the runtime engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.cluster.topology import ClusterTopology
    from repro.core.estimator import ScalingCurve
    from repro.core.metagraph import MetaGraph


class PlanError(Exception):
    """Raised when a plan component is internally inconsistent."""


@dataclass
class ASLTuple:
    """Allocation-Schedule-Length tuple ⟨n, s, l⟩ of §3.3.

    ``layers`` consecutive operators of the owning MetaOp are allocated
    ``n_devices`` devices and scheduled to start at ``start`` (``None`` until
    the wavefront scheduler assigns start times).
    """

    n_devices: int
    layers: int
    start: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_devices < 0:
            raise PlanError("ASL-tuple device count must be non-negative")
        if self.layers < 0:
            raise PlanError("ASL-tuple layer count must be non-negative")

    @property
    def is_dummy(self) -> bool:
        """Dummy allocations (n = 0) preserve the optimum but are ignored."""
        return self.n_devices == 0 or self.layers == 0


@dataclass
class WaveEntry:
    """One sliced MetaOp scheduled inside a wave.

    ``spec_class`` is the index of the cluster spec class this entry is
    allocated from and paced on (heterogeneity-aware plans only).  ``None``
    means the entry may span the whole cluster and paces on the cluster-wide
    sustained-throughput floor — the only mode on homogeneous clusters, and
    the conservative fallback on heterogeneous ones.
    """

    metaop_index: int
    n_devices: int
    layers: int
    duration: float
    operator_offset: int = 0
    devices: tuple[int, ...] = ()
    spec_class: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_devices <= 0:
            raise PlanError("Wave entries must use at least one device")
        if self.layers <= 0:
            raise PlanError("Wave entries must execute at least one operator")
        if self.duration < 0:
            raise PlanError("Wave entry duration must be non-negative")

    @property
    def is_placed(self) -> bool:
        return len(self.devices) == self.n_devices


@dataclass
class Wave:
    """The smallest scheduling unit: one concurrent execution of sliced MetaOps.

    Within a wave the device allocation is fixed; data flows are transmitted
    only at wave boundaries (§3.4).
    """

    index: int
    level: int
    start: float
    duration: float
    entries: list[WaveEntry] = field(default_factory=list)

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def devices_used(self) -> int:
        return sum(entry.n_devices for entry in self.entries)

    def entry_for(self, metaop_index: int) -> Optional[WaveEntry]:
        for entry in self.entries:
            if entry.metaop_index == metaop_index:
                return entry
        return None

    def validate(self, num_devices: int) -> None:
        if self.devices_used > num_devices:
            raise PlanError(
                f"Wave {self.index} uses {self.devices_used} devices, cluster has "
                f"{num_devices}"
            )
        seen = set()
        for entry in self.entries:
            if entry.metaop_index in seen:
                raise PlanError(
                    f"Wave {self.index} schedules MetaOp {entry.metaop_index} twice"
                )
            seen.add(entry.metaop_index)


@dataclass
class WavefrontSchedule:
    """All waves of the execution plan, ordered by start time."""

    waves: list[Wave] = field(default_factory=list)
    makespan: float = 0.0

    @property
    def num_waves(self) -> int:
        return len(self.waves)

    def waves_at_level(self, level: int) -> list[Wave]:
        return [wave for wave in self.waves if wave.level == level]

    def levels(self) -> list[int]:
        seen: dict[int, None] = {}
        for wave in self.waves:
            seen.setdefault(wave.level, None)
        return list(seen)

    def scheduled_layers(self, metaop_index: int) -> int:
        """Total operators of ``metaop_index`` scheduled across all waves."""
        return sum(
            entry.layers
            for wave in self.waves
            for entry in wave.entries
            if entry.metaop_index == metaop_index
        )

    def validate(self, num_devices: int) -> None:
        previous_end = 0.0
        for wave in self.waves:
            wave.validate(num_devices)
            if wave.start + 1e-9 < previous_end:
                raise PlanError(
                    f"Wave {wave.index} starts at {wave.start} before the previous "
                    f"wave ends at {previous_end}"
                )
            previous_end = wave.end


@dataclass
class PlacementResult:
    """Device assignment for every (wave, MetaOp) pair plus memory accounting."""

    assignments: dict[tuple[int, int], tuple[int, ...]] = field(default_factory=dict)
    device_memory_bytes: dict[int, float] = field(default_factory=dict)
    oom_events: list[tuple[int, int]] = field(default_factory=list)
    backtracks: int = 0

    def devices_for(self, wave_index: int, metaop_index: int) -> tuple[int, ...]:
        try:
            return self.assignments[(wave_index, metaop_index)]
        except KeyError as exc:
            raise PlanError(
                f"No placement for MetaOp {metaop_index} in wave {wave_index}"
            ) from exc

    @property
    def peak_memory_bytes(self) -> float:
        if not self.device_memory_bytes:
            return 0.0
        return max(self.device_memory_bytes.values())

    def memory_imbalance(self) -> float:
        """Ratio of max to mean per-device memory (1.0 = perfectly balanced)."""
        if not self.device_memory_bytes:
            return 1.0
        values = list(self.device_memory_bytes.values())
        mean = sum(values) / len(values)
        if mean == 0:
            return 1.0
        return max(values) / mean


@dataclass
class LevelAllocation:
    """Allocation plan of one MetaLevel produced by the resource allocator.

    On heterogeneity-aware levels, ``spec_classes`` maps each MetaOp index to
    the spec class it was assigned to (allocated from and paced on) and
    ``class_sizes`` gives each assigned class's device count — the per-class
    budgets the wavefront scheduler enforces.  Both are ``None`` on levels
    allocated the classic way (homogeneous clusters, or heterogeneous levels
    where cluster-spanning floor pacing won the comparison).
    """

    level: int
    c_star: float
    continuous: dict[int, float]
    plan: dict[int, list[ASLTuple]]
    spec_classes: Optional[dict[int, int]] = None
    class_sizes: Optional[dict[int, int]] = None

    def tuples_for(self, metaop_index: int) -> list[ASLTuple]:
        return list(self.plan.get(metaop_index, []))

    def total_layers(self, metaop_index: int) -> int:
        return sum(t.layers for t in self.plan.get(metaop_index, []))

    def spec_class_of(self, metaop_index: int) -> Optional[int]:
        if self.spec_classes is None:
            return None
        return self.spec_classes.get(metaop_index)


@dataclass
class PlanningReport:
    """Timings and intermediate results of the planning pipeline (Fig. 12)."""

    stage_seconds: dict[str, float] = field(default_factory=dict)
    level_c_star: dict[int, float] = field(default_factory=dict)
    num_metaops: int = 0
    num_levels: int = 0
    num_waves: int = 0
    #: MetaOps whose scaling curve was supplied precomputed (incremental
    #: re-planning) instead of being profiled and fitted in this run.
    reused_curves: int = 0
    #: MetaLevels that adopted a spec-class partition (heterogeneous clusters
    #: only; zero on homogeneous clusters and classic plans).
    partitioned_levels: int = 0
    #: MetaLevels whose allocation was adopted from a structurally matching
    #: previous plan (:meth:`ExecutionPlanner.plan_incremental`) instead of
    #: being re-solved.  Equals ``num_levels`` on a full-structure reuse.
    reused_levels: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())


@dataclass
class ExecutionPlan:
    """The final Spindle execution plan consumed by the runtime engine."""

    metagraph: "MetaGraph"
    cluster: "ClusterTopology"
    schedule: WavefrontSchedule
    placement: PlacementResult
    curves: dict[int, "ScalingCurve"]
    level_allocations: dict[int, LevelAllocation]
    report: PlanningReport = field(default_factory=PlanningReport)
    #: Canonical content hash of (workload, cluster, planner configuration);
    #: the cache key of the planning service (``None`` for hand-built plans).
    fingerprint: Optional[str] = None

    @property
    def waves(self) -> list[Wave]:
        return self.schedule.waves

    @property
    def estimated_compute_makespan(self) -> float:
        """Planner's estimate of the compute completion time C (eq. 1)."""
        return self.schedule.makespan

    @property
    def theoretical_optimum(self) -> float:
        """Sum of per-level continuous optima (Theorem 1 lower bound)."""
        return sum(alloc.c_star for alloc in self.level_allocations.values())

    def validate(self) -> None:
        self.schedule.validate(self.cluster.num_devices)
        for wave in self.schedule.waves:
            for entry in wave.entries:
                devices = self.placement.devices_for(wave.index, entry.metaop_index)
                if len(devices) != entry.n_devices:
                    raise PlanError(
                        f"Wave {wave.index} MetaOp {entry.metaop_index}: "
                        f"{len(devices)} devices placed, {entry.n_devices} allocated"
                    )
        for metaop in self.metagraph.metaops.values():
            scheduled = self.schedule.scheduled_layers(metaop.index)
            if scheduled != metaop.num_operators:
                raise PlanError(
                    f"MetaOp {metaop.index} schedules {scheduled} operators, "
                    f"expected {metaop.num_operators}"
                )
