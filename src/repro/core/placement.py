"""Device placement: mapping wave entries to physical devices (§3.5).

The locality-aware placer follows the paper's three guidelines:

* **Intra-device-island placement** — MetaOps and the data flows between them
  prefer devices inside one island (NVLink-connected node).
* **Prioritising high communication workloads** — when not everything fits
  inside an island, the MetaOps with the largest inter-wave data-flow volume
  get the best locality.
* **Device memory balance** — parameter/optimizer state and retained
  activations are tracked per device; placement prefers the devices with the
  most free memory and falls back to alternative (less local) placements, with
  bounded backtracking, when a device would run out of memory.

A deliberately naive :class:`SequentialPlacer` is provided for the placement
ablation of Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.topology import ClusterTopology
from repro.core.metagraph import MetaGraph
from repro.core.plan import PlacementResult, Wave, WaveEntry
from repro.costmodel.comm import group_transfer_time
from repro.costmodel.memory import MemoryModel


class PlacementError(Exception):
    """Raised when no feasible placement exists."""


@dataclass
class _DeviceState:
    """Mutable per-device bookkeeping during placement."""

    memory_bytes: float = 0.0
    param_keys: set[str] = field(default_factory=set)


class LocalityAwarePlacer:
    """Greedy, wave-by-wave locality- and memory-aware device placement."""

    def __init__(
        self,
        cluster: ClusterTopology,
        memory_model: MemoryModel | None = None,
        memory_weight: float = 0.15,
        max_backtracks: int = 32,
    ) -> None:
        self.cluster = cluster
        self.memory_model = memory_model or MemoryModel()
        self.memory_weight = memory_weight
        self.max_backtracks = max_backtracks
        # Per-device capacity checks are only needed on mixed-HBM clusters;
        # the homogeneous fast path keeps the scoring loop a single compare.
        self._homogeneous = cluster.is_homogeneous
        # Spec-class device pools: entries carrying a spec-class assignment
        # must be placed inside their class's islands (the scheduler budgeted
        # the class's devices for them, and their pacing assumes the class's
        # sustained rate).  Homogeneous plans never set spec_class, so these
        # pools go unused there.
        self._class_devices = {
            cls.index: frozenset(cls.device_ids) for cls in cluster.spec_classes()
        }
        self._class_islands = {
            cls.index: cls.islands for cls in cluster.spec_classes()
        }

    # ------------------------------------------------------------- public API
    def place(self, waves: Sequence[Wave], metagraph: MetaGraph) -> PlacementResult:
        result = PlacementResult()
        states = {
            device.device_id: _DeviceState(
                memory_bytes=self.memory_model.framework_overhead()
            )
            for device in self.cluster.devices
        }
        last_devices: dict[int, tuple[int, ...]] = {}

        for wave in waves:
            free = set(range(self.cluster.num_devices))
            entries = sorted(
                wave.entries,
                key=lambda e: self._communication_priority(e, metagraph, last_devices),
                reverse=True,
            )
            for entry in entries:
                devices = self._place_entry(
                    entry, wave, metagraph, free, states, last_devices, result
                )
                entry.devices = devices
                result.assignments[(wave.index, entry.metaop_index)] = devices
                free -= set(devices)
                last_devices[entry.metaop_index] = devices
                self._charge_memory(entry, devices, metagraph, states)

        result.device_memory_bytes = {
            device_id: state.memory_bytes for device_id, state in states.items()
        }
        return result

    # -------------------------------------------------------------- heuristics
    def _communication_priority(
        self,
        entry: WaveEntry,
        metagraph: MetaGraph,
        last_devices: dict[int, tuple[int, ...]],
    ) -> float:
        metaop = metagraph.metaop(entry.metaop_index)
        volume = 0.0
        if entry.metaop_index in last_devices:
            # Residual slice of the same MetaOp: activations of the previous
            # slice flow into this one.
            volume += metaop.representative.activation_bytes
        for pred in metagraph.predecessors(entry.metaop_index):
            if pred in last_devices:
                volume += metagraph.edge_volume(pred, entry.metaop_index)
        return volume

    def _candidate_blocks(
        self,
        entry: WaveEntry,
        free: set[int],
        preferred: list[int],
    ) -> list[tuple[int, ...]]:
        """Enumerate candidate device groups for an entry, best-first.

        Entries bound to a spec class only see that class's islands and
        devices; classic entries see the whole cluster.
        """
        n = entry.n_devices
        candidates: list[tuple[int, ...]] = []

        if entry.spec_class is not None:
            allowed = self._class_devices[entry.spec_class]
            free = {d for d in free if d in allowed}
            preferred = [d for d in preferred if d in allowed]
            island_pool: Sequence[int] = self._class_islands[entry.spec_class]
        else:
            island_pool = range(self.cluster.num_nodes)

        # Preferred devices may be suggested by several sources (previous slice
        # of the same MetaOp, several predecessors); keep first occurrences.
        preferred = list(dict.fromkeys(preferred))
        preferred_free = [d for d in preferred if d in free]
        if len(preferred_free) >= n:
            candidates.append(tuple(preferred_free[:n]))

        preferred_islands = {self.cluster.island_of(d) for d in preferred}
        islands = sorted(
            island_pool,
            key=lambda i: (i not in preferred_islands, i),
        )
        for island in islands:
            island_free = [d for d in self.cluster.island_devices(island) if d in free]
            if len(island_free) >= n:
                candidates.append(tuple(island_free[:n]))
        spill = sorted(free)
        if len(spill) >= n:
            # Prefer spilling devices from preferred islands first.
            spill.sort(key=lambda d: (self.cluster.island_of(d) not in preferred_islands, d))
            candidates.append(tuple(spill[:n]))
        # Deduplicate while preserving order.
        unique: list[tuple[int, ...]] = []
        seen = set()
        for cand in candidates:
            if cand not in seen:
                unique.append(cand)
                seen.add(cand)
        return unique

    def _place_entry(
        self,
        entry: WaveEntry,
        wave: Wave,
        metagraph: MetaGraph,
        free: set[int],
        states: dict[int, _DeviceState],
        last_devices: dict[int, tuple[int, ...]],
        result: PlacementResult,
    ) -> tuple[int, ...]:
        if len(free) < entry.n_devices:
            raise PlacementError(
                f"Wave {wave.index}: MetaOp {entry.metaop_index} needs "
                f"{entry.n_devices} devices but only {len(free)} are free"
            )
        metaop = metagraph.metaop(entry.metaop_index)
        preferred: list[int] = list(last_devices.get(entry.metaop_index, ()))
        for pred in metagraph.predecessors(entry.metaop_index):
            preferred.extend(last_devices.get(pred, ()))

        candidates = self._candidate_blocks(entry, free, preferred)
        if not candidates:
            raise PlacementError(
                f"No candidate device block of size {entry.n_devices} for MetaOp "
                f"{entry.metaop_index} in wave {wave.index}"
            )

        scored: list[tuple[float, bool, tuple[int, ...]]] = []
        per_device_bytes = self._entry_device_bytes(entry, metaop)
        # The smallest device normalises the balance score; fit checks run
        # against each device's own capacity on mixed-HBM clusters.  On a
        # homogeneous cluster both reduce to device_spec.memory_bytes and the
        # fit check is the single peak compare this hot loop always had.
        capacity = self.cluster.min_memory_bytes
        for devices in candidates:
            comm = self._transfer_cost(entry, metaop, metagraph, devices, last_devices)
            projected = [states[d].memory_bytes + per_device_bytes for d in devices]
            peak = max(projected)
            if self._homogeneous:
                fits = peak <= capacity
            else:
                fits = all(
                    used <= self.cluster.spec_of(d).memory_bytes
                    for used, d in zip(projected, devices)
                )
            score = comm + self.memory_weight * (peak / capacity) * max(comm, 1e-6)
            scored.append((score, fits, devices))

        feasible = [item for item in scored if item[1]]
        if feasible:
            feasible.sort(key=lambda item: item[0])
            return feasible[0][2]

        # All candidates would exceed memory: record the OOM, pick the one with
        # the lowest projected peak (best memory balance, §3.5 backtracking).
        result.oom_events.append((wave.index, entry.metaop_index))
        result.backtracks += 1
        if result.backtracks > self.max_backtracks:
            raise PlacementError(
                "Exceeded backtracking budget while balancing device memory"
            )
        best = min(
            scored,
            key=lambda item: max(
                states[d].memory_bytes + per_device_bytes for d in item[2]
            ),
        )
        return best[2]

    def _transfer_cost(
        self,
        entry: WaveEntry,
        metaop,
        metagraph: MetaGraph,
        devices: tuple[int, ...],
        last_devices: dict[int, tuple[int, ...]],
    ) -> float:
        cost = 0.0
        prev = last_devices.get(entry.metaop_index)
        if prev:
            cost += group_transfer_time(
                self.cluster, prev, devices, metaop.representative.activation_bytes
            )
        for pred in metagraph.predecessors(entry.metaop_index):
            pred_devices = last_devices.get(pred)
            if pred_devices:
                cost += group_transfer_time(
                    self.cluster,
                    pred_devices,
                    devices,
                    metagraph.edge_volume(pred, entry.metaop_index),
                )
        return cost

    def _entry_device_bytes(self, entry: WaveEntry, metaop) -> float:
        op = metaop.representative
        per_layer = self.memory_model.operator_device_bytes(op, entry.n_devices)
        return per_layer * entry.layers

    def _charge_memory(
        self,
        entry: WaveEntry,
        devices: tuple[int, ...],
        metagraph: MetaGraph,
        states: dict[int, _DeviceState],
    ) -> None:
        metaop = metagraph.metaop(entry.metaop_index)
        op = metaop.representative
        param_bytes = self.memory_model.parameter_state_bytes(op, entry.n_devices)
        act_bytes = self.memory_model.activation_bytes(op, entry.n_devices)
        key = op.param_key
        for device in devices:
            state = states[device]
            # Parameters shared across tasks (same param_key) are stored once
            # per device; activations accumulate for every executed layer.
            if key is None or key not in state.param_keys:
                state.memory_bytes += param_bytes * entry.layers
                if key is not None:
                    state.param_keys.add(key)
            state.memory_bytes += act_bytes * entry.layers


class SequentialPlacer:
    """Naive placement baseline for the Fig. 10 ablation.

    Assigns each wave entry a block of consecutive device ids starting from
    device 0 in MetaOp-index order, ignoring where previous waves placed the
    same MetaOp and ignoring island boundaries.
    """

    def __init__(
        self, cluster: ClusterTopology, memory_model: MemoryModel | None = None
    ) -> None:
        self.cluster = cluster
        self.memory_model = memory_model or MemoryModel()

    def place(self, waves: Sequence[Wave], metagraph: MetaGraph) -> PlacementResult:
        result = PlacementResult()
        memory = {
            device.device_id: self.memory_model.framework_overhead()
            for device in self.cluster.devices
        }
        for wave in waves:
            cursor = 0
            for entry in sorted(wave.entries, key=lambda e: e.metaop_index):
                devices = tuple(range(cursor, cursor + entry.n_devices))
                if cursor + entry.n_devices > self.cluster.num_devices:
                    raise PlacementError(
                        f"Wave {wave.index} does not fit on the cluster"
                    )
                cursor += entry.n_devices
                entry.devices = devices
                result.assignments[(wave.index, entry.metaop_index)] = devices
                op = metagraph.metaop(entry.metaop_index).representative
                per_device = (
                    self.memory_model.operator_device_bytes(op, entry.n_devices)
                    * entry.layers
                )
                for device in devices:
                    memory[device] += per_device
        result.device_memory_bytes = memory
        return result
