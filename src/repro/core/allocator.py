"""Resource allocator: MPSP relaxation + bi-point discretization (§3.3, App. B).

For each MetaLevel the allocator

1. relaxes the problem to the malleable project scheduling problem (MPSP) with
   continuously divisible devices and operators, and finds the optimum
   completion time ``C*`` and allocations ``n*_m`` by bisection search over
   ``sum_m T_m^{-1}(C*/L_m) = N`` (Theorem 1, Algorithm 2);
2. discretizes each continuous allocation ``n*_m`` into at most two *valid*
   integer allocations ⟨n̄, l̄⟩, ⟨n̲, l̲⟩ whose combined execution time equals
   ``C*`` (conditions 10a/10b), rounding layer counts to integers at the end.

Valid allocations respect practical parallelism constraints: a MetaOp's device
count must divide its global batch size (pure data parallelism) or be a
multiple of it (hybrid data/tensor parallelism), mirroring §3.3.

Hot-path layout
---------------
The bisection loop evaluates ``Find_Inverse_Value`` for every MetaOp at every
iteration, which is the planner's dominant cost at scale (Fig. 12).  Three
quantities are loop-invariant and are therefore computed exactly once per
solve:

* the *valid-allocation grid* of each MetaOp (memoized across solves, waves
  and discretization in :class:`ValidAllocationGrid` — ``default_valid_allocations``
  enumerates ``range(1, N+1)``, which must not happen per call on a
  4096-device cluster),
* the curve evaluations over that grid (one vectorized
  :meth:`~repro.core.estimator.ScalingCurve.time_many` call), and
* the resulting :class:`InverseTable`, whose per-iteration lookup is a single
  O(log G) bisect instead of an O(G) scan preceded by an O(G log G) sort.

Each bisection step additionally exploits that every MetaOp's allocation —
and hence the total — is monotonically non-increasing in the completion time
``C``: the per-iteration summation stops as soon as the running total settles
the comparison against the device count, without evaluating the remaining
MetaOps.  All of this is value-preserving: the optimized solver walks the
exact same bisection iterates and produces bit-identical allocations to the
reference implementation (kept as ``optimized=False`` for equivalence tests).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.estimator import ScalingCurve
from repro.core.metagraph import MetaGraph, MetaOp
from repro.core.plan import ASLTuple, LevelAllocation


class AllocationError(Exception):
    """Raised when no feasible allocation exists."""


ValidAllocationFn = Callable[[MetaOp, int], list[int]]


def default_valid_allocations(metaop: MetaOp, max_devices: int) -> list[int]:
    """Valid device counts for a MetaOp on a cluster of ``max_devices`` GPUs.

    ``n`` is valid when it divides the MetaOp's global batch size (so data
    parallelism partitions samples evenly) or is a multiple of the batch size
    (each sample group adds tensor-parallel ranks).
    """
    if max_devices <= 0:
        raise AllocationError("max_devices must be positive")
    batch = metaop.batch_size
    valid = [
        n
        for n in range(1, max_devices + 1)
        if batch % n == 0 or n % batch == 0
    ]
    if not valid:
        valid = [1]
    return valid


class ValidAllocationGrid:
    """Memoized, normalized valid-allocation grids.

    The default rule depends only on the MetaOp's global batch size, so grids
    are cached under ``(batch_size, max_devices)`` — one enumeration per
    distinct batch size instead of one per ``solve_continuous`` /
    ``discretize`` / wave-extension call.  (The bound callable is the third
    key component: each instance caches for exactly one function.)  Custom
    allocation rules may inspect arbitrary MetaOp state, so they are called
    through uncached.

    Grids are normalized exactly as ``Find_Inverse_Value`` requires: sorted,
    duplicate-free integer device counts, returned as an immutable tuple.
    """

    def __init__(self, fn: ValidAllocationFn | None = None) -> None:
        self.fn = fn or default_valid_allocations
        self._cacheable = self.fn is default_valid_allocations
        self._cache: dict[tuple[int, int], tuple[int, ...]] = {}

    def grid(self, metaop: MetaOp, max_devices: int) -> tuple[int, ...]:
        """The normalized valid-allocation grid of ``metaop``."""
        if not self._cacheable:
            return self._normalize(self.fn(metaop, max_devices))
        key = (metaop.batch_size, max_devices)
        grid = self._cache.get(key)
        if grid is None:
            grid = self._normalize(self.fn(metaop, max_devices))
            self._cache[key] = grid
        return grid

    @staticmethod
    def _normalize(valid: Sequence[int]) -> tuple[int, ...]:
        grid = tuple(sorted(set(int(n) for n in valid)))
        if not grid:
            raise AllocationError("Valid allocation grid is empty")
        return grid

    def __len__(self) -> int:
        return len(self._cache)


class InverseTable:
    """Precomputed ``Find_Inverse_Value`` lookup for one (curve, grid) pair.

    Holds the valid grid and the curve's execution times over it (computed
    once, vectorized); :meth:`inverse` then answers each bisection iteration
    with a single bisect over the (monotonically non-increasing) time column.
    Results are bit-identical to the reference scan in
    :func:`_find_inverse_value_scan`.
    """

    __slots__ = ("grid", "times", "_neg_times", "_max_float", "_monotone")

    def __init__(self, curve: ScalingCurve, grid: Sequence[int]) -> None:
        self.grid = tuple(grid)
        if not self.grid:
            raise AllocationError("Valid allocation grid is empty")
        self.times: list[float] = curve.time_many(self.grid).tolist()
        self._neg_times = [-t for t in self.times]
        self._max_float = float(self.grid[-1])
        # Bisect is exact only over a sorted column.  Curve evaluations at
        # grid points straddling a piece breakpoint can break monotonicity by
        # rounding ulps — checked once here; such tables use the reference
        # pair scan, which does not assume monotone times.
        self._monotone = all(
            self.times[i] >= self.times[i + 1] for i in range(len(self.times) - 1)
        )

    @property
    def max_valid(self) -> int:
        return self.grid[-1]

    def inverse(self, target_time: float) -> float:
        """The (fractional) allocation meeting ``target_time`` (Eq. 11)."""
        if target_time <= 0:
            raise AllocationError("Target time must be positive")
        grid, times = self.grid, self.times
        if target_time >= times[0]:
            # Fewer devices than the smallest valid allocation would suffice.
            return grid[0] * times[0] / target_time
        if target_time <= times[-1]:
            return self._max_float
        if self._monotone:
            # First index whose time is <= target; times are non-increasing,
            # so (j-1, j) is exactly the first bracketing pair the reference
            # scan finds.
            j = bisect_left(self._neg_times, -target_time)
        else:
            for j in range(1, len(times)):
                if times[j] <= target_time <= times[j - 1]:
                    break
            else:
                return self._max_float
        n_lo, n_hi = grid[j - 1], grid[j]
        t_lo, t_hi = times[j - 1], times[j]
        if abs(t_lo - t_hi) < 1e-15:
            return float(n_hi)
        return ((target_time - t_hi) * n_lo + (t_lo - target_time) * n_hi) / (
            t_lo - t_hi
        )

    def capped_inverse(self, target_time: float) -> float:
        """:meth:`inverse`, saturated at the largest valid allocation."""
        value = self.inverse(target_time)
        return self._max_float if value > self._max_float else value


def _find_inverse_value_scan(
    curve: ScalingCurve,
    target_time: float,
    valid: Sequence[int],
) -> float:
    """Reference linear-scan ``Find_Inverse_Value`` (kept for equivalence tests)."""
    if target_time <= 0:
        raise AllocationError("Target time must be positive")
    grid = sorted(set(int(n) for n in valid))
    if not grid:
        raise AllocationError("Valid allocation grid is empty")
    times = [curve.time(n) for n in grid]

    if target_time >= times[0]:
        return grid[0] * times[0] / target_time
    if target_time <= times[-1]:
        return float(grid[-1])
    for (n_lo, t_lo), (n_hi, t_hi) in zip(zip(grid, times), zip(grid[1:], times[1:])):
        if t_hi <= target_time <= t_lo:
            if abs(t_lo - t_hi) < 1e-15:
                return float(n_hi)
            return ((target_time - t_hi) * n_lo + (t_lo - target_time) * n_hi) / (
                t_lo - t_hi
            )
    return float(grid[-1])


def find_inverse_value(
    curve: ScalingCurve,
    target_time: float,
    valid: Sequence[int],
) -> float:
    """``Find_Inverse_Value`` of Appendix B over the valid allocation grid.

    Finds the closest valid allocations ``n̲, n̄`` such that
    ``target_time ∈ [T(n̄), T(n̲)]`` and returns the linear combination of
    Eq. (11).  Targets slower than ``T(n_min)`` extrapolate below one device
    (fractional allocations signal the dummy-allocation case); targets faster
    than ``T(n_max)`` saturate at the largest valid allocation.

    One-shot convenience entry point: normalizes the grid and evaluates the
    curve per call.  The allocator's bisection loop instead builds one
    :class:`InverseTable` per (MetaOp, solve) and reuses it across iterations.
    """
    if target_time <= 0:
        raise AllocationError("Target time must be positive")
    return InverseTable(curve, sorted(set(int(n) for n in valid))).inverse(
        target_time
    )


@dataclass(frozen=True)
class ContinuousAllocation:
    """Optimum of the continuous (MPSP) relaxation for one MetaLevel."""

    c_star: float
    allocations: dict[int, float]

    def total_devices(self) -> float:
        return sum(self.allocations.values())


class ResourceAllocator:
    """Derives the allocation plan of each MetaLevel."""

    def __init__(
        self,
        num_devices: int,
        valid_allocation_fn: ValidAllocationFn | None = None,
        bisection_tolerance: float = 1e-4,
        max_bisection_iters: int = 200,
        allocation_grid: ValidAllocationGrid | None = None,
        optimized: bool = True,
    ) -> None:
        if num_devices <= 0:
            raise AllocationError("num_devices must be positive")
        self.num_devices = num_devices
        self.valid_allocation_fn = valid_allocation_fn or default_valid_allocations
        self.bisection_tolerance = bisection_tolerance
        self.max_bisection_iters = max_bisection_iters
        if allocation_grid is not None and allocation_grid.fn is not self.valid_allocation_fn:
            raise AllocationError(
                "allocation_grid must be bound to the allocator's "
                "valid_allocation_fn"
            )
        # `is None`, not truthiness: a freshly created shared grid is empty
        # and ValidAllocationGrid.__len__ would make it falsy.
        self.allocation_grid = (
            allocation_grid
            if allocation_grid is not None
            else ValidAllocationGrid(self.valid_allocation_fn)
        )
        self.optimized = optimized

    # ---------------------------------------------------------- continuous
    def solve_continuous(
        self,
        metaops: Sequence[MetaOp],
        curves: dict[int, ScalingCurve],
    ) -> ContinuousAllocation:
        """Bisection search for the MPSP optimum ``C*`` (Algorithm 2)."""
        if not metaops:
            raise AllocationError("Cannot allocate an empty MetaLevel")
        if not self.optimized:
            return self._solve_continuous_reference(metaops, curves)

        # Loop-invariant hoisting: one normalized grid, one vectorized curve
        # evaluation and one inverse table per MetaOp for the whole search.
        tables = {
            m.index: InverseTable(
                curves[m.index], self.allocation_grid.grid(m, self.num_devices)
            )
            for m in metaops
        }

        c_low = max(
            tables[m.index].times[-1] * m.num_operators for m in metaops
        )
        c_high = sum(curves[m.index].time(1) * m.num_operators for m in metaops)
        c_high = max(c_high, c_low * (1 + self.bisection_tolerance))

        # If even the fastest completion (every MetaOp at its largest valid
        # allocation) fits in the cluster, the lower bound is already optimal.
        allocations = self._allocations_at(c_low, metaops, tables)
        if sum(allocations.values()) <= self.num_devices:
            return ContinuousAllocation(c_star=c_low, allocations=allocations)

        for _ in range(self.max_bisection_iters):
            if c_high - c_low <= self.bisection_tolerance * c_high:
                break
            c_mid = 0.5 * (c_low + c_high)
            if self._fits(c_mid, metaops, tables):
                c_high = c_mid
            else:
                c_low = c_mid
        c_star = c_high
        return ContinuousAllocation(
            c_star=c_star,
            allocations=self._allocations_at(c_star, metaops, tables),
        )

    def _allocations_at(
        self,
        c: float,
        metaops: Sequence[MetaOp],
        tables: dict[int, InverseTable],
    ) -> dict[int, float]:
        return {
            m.index: tables[m.index].capped_inverse(c / m.num_operators)
            for m in metaops
        }

    def _fits(
        self,
        c: float,
        metaops: Sequence[MetaOp],
        tables: dict[int, InverseTable],
    ) -> bool:
        """Whether the total allocation at ``C`` is below the device count.

        Allocations are positive, so the running total is monotone: once it
        reaches ``num_devices`` the comparison is settled and the remaining
        MetaOps need not be evaluated.
        """
        total = 0.0
        for m in metaops:
            total += tables[m.index].capped_inverse(c / m.num_operators)
            if total >= self.num_devices:
                return False
        return True

    def _solve_continuous_reference(
        self,
        metaops: Sequence[MetaOp],
        curves: dict[int, ScalingCurve],
    ) -> ContinuousAllocation:
        """Unoptimized Algorithm 2 (per-iteration grid enumeration and scans).

        Retained verbatim from the pre-vectorization implementation as the
        ground truth the plan-equivalence tests compare against.
        """
        valid = {
            m.index: self.valid_allocation_fn(m, self.num_devices) for m in metaops
        }
        max_valid = {idx: max(v) for idx, v in valid.items()}

        def level_allocations(c: float) -> dict[int, float]:
            return {
                m.index: min(
                    float(max_valid[m.index]),
                    _find_inverse_value_scan(
                        curves[m.index], c / m.num_operators, valid[m.index]
                    ),
                )
                for m in metaops
            }

        c_low = max(
            curves[m.index].time(max_valid[m.index]) * m.num_operators for m in metaops
        )
        c_high = sum(curves[m.index].time(1) * m.num_operators for m in metaops)
        c_high = max(c_high, c_low * (1 + self.bisection_tolerance))

        if sum(level_allocations(c_low).values()) <= self.num_devices:
            allocations = level_allocations(c_low)
            return ContinuousAllocation(c_star=c_low, allocations=allocations)

        for _ in range(self.max_bisection_iters):
            if c_high - c_low <= self.bisection_tolerance * c_high:
                break
            c_mid = 0.5 * (c_low + c_high)
            total = sum(level_allocations(c_mid).values())
            if total < self.num_devices:
                c_high = c_mid
            else:
                c_low = c_mid
        c_star = c_high
        return ContinuousAllocation(c_star=c_star, allocations=level_allocations(c_star))

    # --------------------------------------------------------- discretization
    def discretize(
        self,
        metaop: MetaOp,
        n_star: float,
        c_star: float,
        curve: ScalingCurve,
    ) -> list[ASLTuple]:
        """Bi-point discretized allocation of one MetaOp (conditions 10a/10b)."""
        if self.optimized:
            valid: Sequence[int] = self.allocation_grid.grid(metaop, self.num_devices)
        else:
            valid = self.valid_allocation_fn(metaop, self.num_devices)
        total_layers = metaop.num_operators
        lower = [n for n in valid if n <= n_star]
        upper = [n for n in valid if n >= n_star]

        if not lower:
            # The continuous optimum needs less than the smallest valid
            # allocation: the lower point is a dummy allocation (n = 0) that
            # preserves condition (10b) as idle time and is then ignored.  All
            # operators run on the smallest valid allocation.
            return [ASLTuple(n_devices=min(valid), layers=total_layers)]
        if not upper:
            return [ASLTuple(n_devices=max(valid), layers=total_layers)]

        n_lo, n_hi = max(lower), min(upper)
        if n_lo == n_hi:
            return [ASLTuple(n_devices=n_lo, layers=total_layers)]

        t_lo, t_hi = curve.time(n_lo), curve.time(n_hi)
        if abs(t_lo - t_hi) < 1e-15:
            return [ASLTuple(n_devices=n_lo, layers=total_layers)]
        # Solve l_hi * t_hi + l_lo * t_lo = c_star with l_hi + l_lo = L.
        layers_hi = (c_star - total_layers * t_lo) / (t_hi - t_lo)
        layers_hi = min(float(total_layers), max(0.0, layers_hi))
        layers_hi_int = int(round(layers_hi))
        layers_lo_int = total_layers - layers_hi_int

        tuples: list[ASLTuple] = []
        if layers_hi_int > 0:
            tuples.append(ASLTuple(n_devices=n_hi, layers=layers_hi_int))
        if layers_lo_int > 0:
            tuples.append(ASLTuple(n_devices=n_lo, layers=layers_lo_int))
        if not tuples:
            tuples.append(ASLTuple(n_devices=n_hi, layers=total_layers))
        return tuples

    # ----------------------------------------------------------------- levels
    def allocate_level(
        self,
        level: int,
        metaops: Sequence[MetaOp],
        curves: dict[int, ScalingCurve],
    ) -> LevelAllocation:
        """Full allocation pipeline (continuous optimum + discretization)."""
        continuous = self.solve_continuous(metaops, curves)
        plan = {
            m.index: self.discretize(
                m,
                continuous.allocations[m.index],
                continuous.c_star,
                curves[m.index],
            )
            for m in metaops
        }
        return LevelAllocation(
            level=level,
            c_star=continuous.c_star,
            continuous=dict(continuous.allocations),
            plan=plan,
        )

    def allocate(
        self, metagraph: MetaGraph, curves: dict[int, ScalingCurve]
    ) -> dict[int, LevelAllocation]:
        """Allocate every MetaLevel of the MetaGraph individually."""
        allocations: dict[int, LevelAllocation] = {}
        for level, indices in enumerate(metagraph.levels()):
            metaops = [metagraph.metaop(i) for i in indices]
            allocations[level] = self.allocate_level(level, metaops, curves)
        return allocations
