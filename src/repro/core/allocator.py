"""Resource allocator: MPSP relaxation + bi-point discretization (§3.3, App. B).

For each MetaLevel the allocator

1. relaxes the problem to the malleable project scheduling problem (MPSP) with
   continuously divisible devices and operators, and finds the optimum
   completion time ``C*`` and allocations ``n*_m`` by bisection search over
   ``sum_m T_m^{-1}(C*/L_m) = N`` (Theorem 1, Algorithm 2);
2. discretizes each continuous allocation ``n*_m`` into at most two *valid*
   integer allocations ⟨n̄, l̄⟩, ⟨n̲, l̲⟩ whose combined execution time equals
   ``C*`` (conditions 10a/10b), rounding layer counts to integers at the end.

Valid allocations respect practical parallelism constraints: a MetaOp's device
count must divide its global batch size (pure data parallelism) or be a
multiple of it (hybrid data/tensor parallelism), mirroring §3.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.estimator import ScalingCurve
from repro.core.metagraph import MetaGraph, MetaOp
from repro.core.plan import ASLTuple, LevelAllocation


class AllocationError(Exception):
    """Raised when no feasible allocation exists."""


ValidAllocationFn = Callable[[MetaOp, int], list[int]]


def default_valid_allocations(metaop: MetaOp, max_devices: int) -> list[int]:
    """Valid device counts for a MetaOp on a cluster of ``max_devices`` GPUs.

    ``n`` is valid when it divides the MetaOp's global batch size (so data
    parallelism partitions samples evenly) or is a multiple of the batch size
    (each sample group adds tensor-parallel ranks).
    """
    if max_devices <= 0:
        raise AllocationError("max_devices must be positive")
    batch = metaop.batch_size
    valid = [
        n
        for n in range(1, max_devices + 1)
        if batch % n == 0 or n % batch == 0
    ]
    if not valid:
        valid = [1]
    return valid


@dataclass(frozen=True)
class ContinuousAllocation:
    """Optimum of the continuous (MPSP) relaxation for one MetaLevel."""

    c_star: float
    allocations: dict[int, float]

    def total_devices(self) -> float:
        return sum(self.allocations.values())


def find_inverse_value(
    curve: ScalingCurve,
    target_time: float,
    valid: Sequence[int],
) -> float:
    """``Find_Inverse_Value`` of Appendix B over the valid allocation grid.

    Finds the closest valid allocations ``n̲, n̄`` such that
    ``target_time ∈ [T(n̄), T(n̲)]`` and returns the linear combination of
    Eq. (11).  Targets slower than ``T(n_min)`` extrapolate below one device
    (fractional allocations signal the dummy-allocation case); targets faster
    than ``T(n_max)`` saturate at the largest valid allocation.
    """
    if target_time <= 0:
        raise AllocationError("Target time must be positive")
    grid = sorted(set(int(n) for n in valid))
    if not grid:
        raise AllocationError("Valid allocation grid is empty")
    times = [curve.time(n) for n in grid]

    if target_time >= times[0]:
        # Fewer devices than the smallest valid allocation would suffice.
        return grid[0] * times[0] / target_time
    if target_time <= times[-1]:
        return float(grid[-1])
    for (n_lo, t_lo), (n_hi, t_hi) in zip(zip(grid, times), zip(grid[1:], times[1:])):
        if t_hi <= target_time <= t_lo:
            if abs(t_lo - t_hi) < 1e-15:
                return float(n_hi)
            return ((target_time - t_hi) * n_lo + (t_lo - target_time) * n_hi) / (
                t_lo - t_hi
            )
    return float(grid[-1])


class ResourceAllocator:
    """Derives the allocation plan of each MetaLevel."""

    def __init__(
        self,
        num_devices: int,
        valid_allocation_fn: ValidAllocationFn | None = None,
        bisection_tolerance: float = 1e-4,
        max_bisection_iters: int = 200,
    ) -> None:
        if num_devices <= 0:
            raise AllocationError("num_devices must be positive")
        self.num_devices = num_devices
        self.valid_allocation_fn = valid_allocation_fn or default_valid_allocations
        self.bisection_tolerance = bisection_tolerance
        self.max_bisection_iters = max_bisection_iters

    # ---------------------------------------------------------- continuous
    def solve_continuous(
        self,
        metaops: Sequence[MetaOp],
        curves: dict[int, ScalingCurve],
    ) -> ContinuousAllocation:
        """Bisection search for the MPSP optimum ``C*`` (Algorithm 2)."""
        if not metaops:
            raise AllocationError("Cannot allocate an empty MetaLevel")
        valid = {
            m.index: self.valid_allocation_fn(m, self.num_devices) for m in metaops
        }
        max_valid = {idx: max(v) for idx, v in valid.items()}

        def level_allocations(c: float) -> dict[int, float]:
            return {
                m.index: min(
                    float(max_valid[m.index]),
                    find_inverse_value(
                        curves[m.index], c / m.num_operators, valid[m.index]
                    ),
                )
                for m in metaops
            }

        c_low = max(
            curves[m.index].time(max_valid[m.index]) * m.num_operators for m in metaops
        )
        c_high = sum(curves[m.index].time(1) * m.num_operators for m in metaops)
        c_high = max(c_high, c_low * (1 + self.bisection_tolerance))

        # If even the fastest completion (every MetaOp at its largest valid
        # allocation) fits in the cluster, the lower bound is already optimal.
        if sum(level_allocations(c_low).values()) <= self.num_devices:
            allocations = level_allocations(c_low)
            return ContinuousAllocation(c_star=c_low, allocations=allocations)

        for _ in range(self.max_bisection_iters):
            if c_high - c_low <= self.bisection_tolerance * c_high:
                break
            c_mid = 0.5 * (c_low + c_high)
            total = sum(level_allocations(c_mid).values())
            if total < self.num_devices:
                c_high = c_mid
            else:
                c_low = c_mid
        c_star = c_high
        return ContinuousAllocation(c_star=c_star, allocations=level_allocations(c_star))

    # --------------------------------------------------------- discretization
    def discretize(
        self,
        metaop: MetaOp,
        n_star: float,
        c_star: float,
        curve: ScalingCurve,
    ) -> list[ASLTuple]:
        """Bi-point discretized allocation of one MetaOp (conditions 10a/10b)."""
        valid = self.valid_allocation_fn(metaop, self.num_devices)
        total_layers = metaop.num_operators
        lower = [n for n in valid if n <= n_star]
        upper = [n for n in valid if n >= n_star]

        if not lower:
            # The continuous optimum needs less than the smallest valid
            # allocation: the lower point is a dummy allocation (n = 0) that
            # preserves condition (10b) as idle time and is then ignored.  All
            # operators run on the smallest valid allocation.
            return [ASLTuple(n_devices=min(valid), layers=total_layers)]
        if not upper:
            return [ASLTuple(n_devices=max(valid), layers=total_layers)]

        n_lo, n_hi = max(lower), min(upper)
        if n_lo == n_hi:
            return [ASLTuple(n_devices=n_lo, layers=total_layers)]

        t_lo, t_hi = curve.time(n_lo), curve.time(n_hi)
        if abs(t_lo - t_hi) < 1e-15:
            return [ASLTuple(n_devices=n_lo, layers=total_layers)]
        # Solve l_hi * t_hi + l_lo * t_lo = c_star with l_hi + l_lo = L.
        layers_hi = (c_star - total_layers * t_lo) / (t_hi - t_lo)
        layers_hi = min(float(total_layers), max(0.0, layers_hi))
        layers_hi_int = int(round(layers_hi))
        layers_lo_int = total_layers - layers_hi_int

        tuples: list[ASLTuple] = []
        if layers_hi_int > 0:
            tuples.append(ASLTuple(n_devices=n_hi, layers=layers_hi_int))
        if layers_lo_int > 0:
            tuples.append(ASLTuple(n_devices=n_lo, layers=layers_lo_int))
        if not tuples:
            tuples.append(ASLTuple(n_devices=n_hi, layers=total_layers))
        return tuples

    # ----------------------------------------------------------------- levels
    def allocate_level(
        self,
        level: int,
        metaops: Sequence[MetaOp],
        curves: dict[int, ScalingCurve],
    ) -> LevelAllocation:
        """Full allocation pipeline (continuous optimum + discretization)."""
        continuous = self.solve_continuous(metaops, curves)
        plan = {
            m.index: self.discretize(
                m,
                continuous.allocations[m.index],
                continuous.c_star,
                curves[m.index],
            )
            for m in metaops
        }
        return LevelAllocation(
            level=level,
            c_star=continuous.c_star,
            continuous=dict(continuous.allocations),
            plan=plan,
        )

    def allocate(
        self, metagraph: MetaGraph, curves: dict[int, ScalingCurve]
    ) -> dict[int, LevelAllocation]:
        """Allocate every MetaLevel of the MetaGraph individually."""
        allocations: dict[int, LevelAllocation] = {}
        for level, indices in enumerate(metagraph.levels()):
            metaops = [metagraph.metaop(i) for i in indices]
            allocations[level] = self.allocate_level(level, metaops, curves)
        return allocations
