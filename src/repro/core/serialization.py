"""Serialization of execution plans to plain dictionaries / JSON.

A real deployment wants to generate the execution plan once (the planner is the
expensive, profiled step) and ship it to the training job; this module provides
a stable, framework-agnostic representation of a plan — the wavefront schedule,
the device placement and the per-level allocation summary — that can be saved
to JSON and reloaded for inspection or comparison.

The serialized form intentionally describes the *plan* rather than the model:
MetaOps are referenced by index, name, task and operator count, which is what
an external runtime needs in order to map plan entries back onto its own module
objects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.plan import ExecutionPlan

#: Version tag of the serialization format.
PLAN_FORMAT_VERSION = 1


class SerializationError(Exception):
    """Raised when a plan document is malformed or from an unknown version."""


def plan_to_dict(plan: ExecutionPlan) -> dict[str, Any]:
    """Convert an execution plan into a JSON-serializable dictionary."""
    metaops = [
        {
            "index": metaop.index,
            "name": metaop.name,
            "task": metaop.task,
            "op_type": metaop.op_type,
            "level": metaop.level,
            "num_operators": metaop.num_operators,
            "input_shape": list(metaop.input_spec.as_tuple()),
        }
        for metaop in plan.metagraph.metaops.values()
    ]
    def entry_document(wave, entry) -> dict[str, Any]:
        document: dict[str, Any] = {
            "metaop": entry.metaop_index,
            "n_devices": entry.n_devices,
            "layers": entry.layers,
            "operator_offset": entry.operator_offset,
            "devices": list(
                plan.placement.devices_for(wave.index, entry.metaop_index)
            ),
        }
        # Spec-class pacing only exists on heterogeneity-aware plans; classic
        # (and every homogeneous) plan document stays byte-identical to the
        # pre-spec-class format.
        if entry.spec_class is not None:
            document["spec_class"] = entry.spec_class
        return document

    waves = [
        {
            "index": wave.index,
            "level": wave.level,
            "start": wave.start,
            "duration": wave.duration,
            "entries": [entry_document(wave, entry) for entry in wave.entries],
        }
        for wave in plan.waves
    ]

    def allocation_document(allocation) -> dict[str, Any]:
        document: dict[str, Any] = {
            "c_star": allocation.c_star,
            "continuous": {str(k): v for k, v in allocation.continuous.items()},
            "tuples": {
                str(k): [[t.n_devices, t.layers] for t in tuples]
                for k, tuples in allocation.plan.items()
            },
        }
        if allocation.spec_classes is not None:
            document["spec_classes"] = {
                str(k): v for k, v in sorted(allocation.spec_classes.items())
            }
            document["class_sizes"] = {
                str(k): v for k, v in sorted((allocation.class_sizes or {}).items())
            }
        return document

    allocations = {
        str(level): allocation_document(allocation)
        for level, allocation in plan.level_allocations.items()
    }
    return {
        "format_version": PLAN_FORMAT_VERSION,
        "fingerprint": plan.fingerprint,
        "cluster": {
            "num_nodes": plan.cluster.num_nodes,
            "devices_per_node": plan.cluster.devices_per_node,
            "num_devices": plan.cluster.num_devices,
            "device": plan.cluster.device_spec.name,
        },
        "metaops": metaops,
        "waves": waves,
        "level_allocations": allocations,
        "makespan": plan.schedule.makespan,
        "theoretical_optimum": plan.theoretical_optimum,
        "planning_report": {
            "stage_seconds": dict(plan.report.stage_seconds),
            "num_waves": plan.report.num_waves,
            "num_metaops": plan.report.num_metaops,
            "num_levels": plan.report.num_levels,
            "reused_curves": plan.report.reused_curves,
        },
    }


def plan_to_json(plan: ExecutionPlan, indent: int = 2) -> str:
    """Serialize an execution plan to a JSON string."""
    return json.dumps(plan_to_dict(plan), indent=indent)


def save_plan(plan: ExecutionPlan, path: str | Path) -> Path:
    """Write the plan document to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(plan_to_json(plan), encoding="utf-8")
    return path


def load_plan_document(path: str | Path) -> dict[str, Any]:
    """Load and validate a serialized plan document.

    Returns the raw dictionary; reconstruction into live planner objects is not
    needed by any consumer in this repository (the document is self-contained),
    but the structure is validated so downstream tools can rely on it.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"Invalid plan JSON in {path}: {exc}") from exc
    validate_plan_document(document)
    return document


def validate_plan_document(document: dict[str, Any]) -> None:
    """Raise :class:`SerializationError` if the document is malformed."""
    if document.get("format_version") != PLAN_FORMAT_VERSION:
        raise SerializationError(
            f"Unsupported plan format version {document.get('format_version')!r}"
        )
    for key in ("cluster", "metaops", "waves", "level_allocations", "makespan"):
        if key not in document:
            raise SerializationError(f"Plan document is missing the {key!r} field")
    metaop_indices = {m["index"] for m in document["metaops"]}
    # Irregular (elastic) clusters carry an explicit device count; rectangular
    # documents from older writers fall back to nodes x devices-per-node.
    num_devices = document["cluster"].get(
        "num_devices",
        document["cluster"]["num_nodes"] * document["cluster"]["devices_per_node"],
    )
    for wave in document["waves"]:
        used = 0
        for entry in wave["entries"]:
            if entry["metaop"] not in metaop_indices:
                raise SerializationError(
                    f"Wave {wave['index']} references unknown MetaOp {entry['metaop']}"
                )
            if len(entry["devices"]) != entry["n_devices"]:
                raise SerializationError(
                    f"Wave {wave['index']} MetaOp {entry['metaop']}: device list does "
                    f"not match n_devices"
                )
            used += entry["n_devices"]
        if used > num_devices:
            raise SerializationError(
                f"Wave {wave['index']} uses {used} devices, cluster has {num_devices}"
            )
