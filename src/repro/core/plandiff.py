"""Structural plan diffing for incremental replanning.

Incremental replanning (see ``docs/architecture.md``) reuses solved pieces of
a previous :class:`~repro.core.plan.ExecutionPlan` when the contracted graph of
a new request is structurally equal — wholly or level by level — to the graph
the previous plan was solved for.  "Structurally equal" means equal in every
attribute the downstream stages read, and nothing else:

* **per-MetaOp signature** — the estimator's ``curve_key`` (op type, modality,
  input spec, FLOPs, parameter/activation bytes), the operator count and the
  batch size: everything resource allocation and wavefront scheduling consume.
  Task and operator *names* are deliberately excluded; no solver stage reads
  them (the same rule the canonical workload fingerprint applies).
* **level signature** — the tuple of per-MetaOp signatures of one MetaLevel in
  MetaOp-index order.  Two levels with equal signatures receive byte-identical
  :class:`~repro.core.plan.LevelAllocation` solutions (modulo index relabeling)
  from the same planner, because the MPSP bisection is deterministic and
  value-driven.
* **graph signature** — all level signatures plus the inter-MetaOp adjacency
  (edges with communication volumes) and the parameter-sharing pattern
  (canonicalised: distinct ``param_key`` strings replaced by first-occurrence
  ordinals, ``None`` kept apart).  Equal graph signatures make scheduling *and*
  locality-aware placement isomorphic, because placement additionally reads
  predecessors, edge volumes and shared-parameter memory accounting.

The diff itself is intentionally dumb: levels are matched positionally (level
``k`` against level ``k``).  Cross-level matching would only fire when an
event reshapes the level structure, in which case upstream levels changed
anyway and the fallback full solve is the honest path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.metagraph import MetaGraph, MetaOp

#: Signature of one MetaOp: everything allocation/scheduling read from it.
MetaOpSignature = Tuple
#: Signature of one MetaLevel: per-MetaOp signatures in index order.
LevelSignature = Tuple[MetaOpSignature, ...]


def metaop_signature(metaop: MetaOp) -> MetaOpSignature:
    """Name-free structural identity of one MetaOp.

    ``curve_key`` already folds in op type, modality, input spec, FLOPs and
    parameter/activation bytes — the inputs of curve fitting, bisection and
    discretization.  ``num_operators`` and ``batch_size`` complete what the
    allocator and scheduler read.
    """
    return (metaop.curve_key, metaop.num_operators, metaop.batch_size)


def level_signature(metagraph: MetaGraph, level: int) -> LevelSignature:
    """Signature of one MetaLevel, in MetaOp-index order."""
    return tuple(
        metaop_signature(metaop) for metaop in metagraph.metaops_at_level(level)
    )


def level_signatures(metagraph: MetaGraph) -> list[LevelSignature]:
    """All level signatures, index 0 .. ``num_levels - 1``."""
    return [level_signature(metagraph, level) for level in range(metagraph.num_levels)]


def _param_pattern(metagraph: MetaGraph) -> tuple:
    """Canonicalised parameter-sharing pattern of the whole graph.

    Distinct ``param_key`` strings are replaced by their first-occurrence
    ordinal (scanning MetaOps in index order, operators in chain order), so a
    renamed-but-isomorphic task set produces the same pattern.  ``None``
    (parameter-free operators) maps to ``-1``.
    """
    ordinals: dict[str, int] = {}
    pattern: list[tuple[int, ...]] = []
    for index in sorted(metagraph.metaops):
        keys = []
        for op in metagraph.metaop(index).operators:
            if op.param_key is None:
                keys.append(-1)
            else:
                keys.append(ordinals.setdefault(op.param_key, len(ordinals)))
        pattern.append(tuple(keys))
    return tuple(pattern)


def graph_signature(metagraph: MetaGraph) -> tuple:
    """Complete name-free structural identity of a contracted graph.

    Covers per-MetaOp signatures and levels (allocation + scheduling),
    adjacency with communication volumes (scheduling tie-breaks + placement
    locality) and the parameter-sharing pattern (placement memory accounting).
    Two graphs with equal signatures are solved identically by every planner
    stage after contraction, including device placement.
    """
    indices = sorted(metagraph.metaops)
    sigs = tuple(metaop_signature(metagraph.metaop(i)) for i in indices)
    levels = tuple(metagraph.metaop(i).level for i in indices)
    edges = tuple(sorted((src, dst, vol) for (src, dst), vol in metagraph.edges.items()))
    return (sigs, levels, edges, _param_pattern(metagraph))


@dataclass(frozen=True)
class PlanDiff:
    """Outcome of diffing a previous plan's graph against a new graph.

    ``full_structure`` means the two graphs are structurally identical under
    the *identity* index mapping: allocations, waves and the device placement
    of the previous plan all transfer verbatim.  ``reusable_levels`` lists the
    level indices whose signatures match positionally — their
    ``LevelAllocation`` transfers (with MetaOp indices remapped); scheduling
    and placement still re-run.  The two fields are independent views:
    ``full_structure`` implies every level is reusable, not the converse.
    """

    full_structure: bool
    reusable_levels: Tuple[int, ...]

    @property
    def any_reuse(self) -> bool:
        return self.full_structure or bool(self.reusable_levels)


NO_REUSE = PlanDiff(full_structure=False, reusable_levels=())


def diff_metagraphs(previous: MetaGraph, current: MetaGraph) -> PlanDiff:
    """Structural diff driving :meth:`ExecutionPlanner.plan_incremental`.

    Deterministic and purely structural: no names, no wall-clock state.  The
    equivalence tests in ``tests/test_incremental_replan.py`` pin the
    contract — any reuse this diff authorises must reproduce the full
    solver's plan byte for byte (minus stage timings).
    """
    if graph_signature(previous) == graph_signature(current):
        return PlanDiff(full_structure=True, reusable_levels=tuple(range(current.num_levels)))
    previous_levels = level_signatures(previous)
    current_levels = level_signatures(current)
    reusable = tuple(
        level
        for level in range(min(len(previous_levels), len(current_levels)))
        if previous_levels[level]
        and previous_levels[level] == current_levels[level]
    )
    return PlanDiff(full_structure=False, reusable_levels=reusable)


def remap_indices(
    previous: MetaGraph, current: MetaGraph, level: int
) -> Optional[dict[int, int]]:
    """Positional MetaOp index map (previous -> current) for one matched level.

    Returns ``None`` when the levels do not align (different op counts) —
    callers should have checked the level signatures first.
    """
    prev_ops = previous.metaops_at_level(level)
    cur_ops = current.metaops_at_level(level)
    if len(prev_ops) != len(cur_ops):
        return None
    return {p.index: c.index for p, c in zip(prev_ops, cur_ops)}
