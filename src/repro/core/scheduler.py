"""Wavefront scheduler: greedy construction of waves (§3.4, Algorithm 1).

Given the allocation plan of a MetaLevel, the scheduler iteratively crafts
waves.  For each wave it

1. proposes ASL-tuples to occupy as many devices as possible,
2. extends the allocation of the MetaOps with the largest remaining execution
   time when devices would otherwise sit idle,
3. aligns execution time spans by slicing the proposed tuples to the shortest
   one, and
4. fixes the start times and removes the scheduled operators from the
   remaining set.

MetaLevels are scheduled individually and merged back-to-back, which reinstates
the operator dependencies (§3.4, "Merging MetaLevels").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.allocator import (
    ValidAllocationFn,
    ValidAllocationGrid,
    default_valid_allocations,
)
from repro.core.estimator import ScalingCurve
from repro.core.metagraph import MetaOp
from repro.core.plan import LevelAllocation, Wave, WaveEntry, WavefrontSchedule


class SchedulerError(Exception):
    """Raised when the scheduler cannot make progress."""


@dataclass
class _PendingTuple:
    """Mutable view of an ASL-tuple while it is being consumed by waves."""

    n_devices: int
    layers_remaining: int


@dataclass
class _PendingMetaOp:
    """Remaining work of one MetaOp during wavefront scheduling."""

    metaop: MetaOp
    curve: ScalingCurve
    tuples: list[_PendingTuple]
    operator_cursor: int = 0

    @property
    def exhausted(self) -> bool:
        return all(t.layers_remaining == 0 for t in self.tuples)

    def next_tuple(self) -> _PendingTuple | None:
        for t in self.tuples:
            if t.layers_remaining > 0:
                return t
        return None

    def largest_fitting_tuple(self, device_budget: int) -> _PendingTuple | None:
        best: _PendingTuple | None = None
        for t in self.tuples:
            if t.layers_remaining == 0 or t.n_devices > device_budget:
                continue
            if best is None or t.n_devices > best.n_devices:
                best = t
        return best

    def remaining_time(self) -> float:
        return sum(
            self.curve.time(t.n_devices) * t.layers_remaining
            for t in self.tuples
            if t.layers_remaining > 0
        )


@dataclass
class _Candidate:
    """One MetaOp slice proposed for the wave being crafted.

    ``spec_class`` is the budget pool the candidate draws devices from:
    ``None`` for classic cluster-wide scheduling, a spec-class index on
    heterogeneity-aware levels.
    """

    pending: _PendingMetaOp
    source: _PendingTuple
    n_devices: int
    spec_class: int | None = None

    @property
    def per_layer_time(self) -> float:
        return self.pending.curve.time(self.n_devices)

    @property
    def tuple_time(self) -> float:
        return self.per_layer_time * self.source.layers_remaining


@dataclass
class WavefrontScheduler:
    """Greedy wavefront scheduling of one MetaLevel (Algorithm 1)."""

    num_devices: int
    valid_allocation_fn: ValidAllocationFn = field(default=default_valid_allocations)
    #: Shared memoized valid-allocation grids; created (bound to
    #: ``valid_allocation_fn``) when not supplied by the planner.  The resource
    #: extension step queries valid allocations per candidate per wave, which
    #: without memoization re-enumerates ``range(1, N+1)`` each time.
    allocation_grid: ValidAllocationGrid | None = None

    def __post_init__(self) -> None:
        if self.num_devices <= 0:
            raise SchedulerError("num_devices must be positive")
        if self.allocation_grid is None:
            self.allocation_grid = ValidAllocationGrid(self.valid_allocation_fn)
        elif self.allocation_grid.fn is not self.valid_allocation_fn:
            raise SchedulerError(
                "allocation_grid must be bound to the scheduler's "
                "valid_allocation_fn"
            )

    # ------------------------------------------------------------- public API
    def schedule_level(
        self,
        allocation: LevelAllocation,
        metaops: Sequence[MetaOp],
        curves: dict[int, ScalingCurve],
        start_time: float = 0.0,
        wave_index_offset: int = 0,
    ) -> tuple[list[Wave], float]:
        """Craft the waves of one MetaLevel; returns (waves, end_time).

        On spec-class-partitioned levels (``allocation.spec_classes`` set),
        every wave enforces one device budget per spec class: a MetaOp's
        slices only ever occupy — and extend into — devices of the class it
        was allocated on, so each entry is paced on its own group's sustained
        rate.  Classic levels run with the single cluster-wide budget.
        """
        pending = self._build_pending(allocation, metaops, curves)
        class_of = allocation.spec_classes
        if class_of is None:
            budgets: dict[int | None, int] = {None: self.num_devices}
        else:
            budgets = dict(allocation.class_sizes or {})
            if not budgets:
                raise SchedulerError(
                    "spec-class level allocation is missing its class sizes"
                )
        waves: list[Wave] = []
        current_time = start_time
        wave_index = wave_index_offset
        while any(not p.exhausted for p in pending.values()):
            wave = self._craft_wave(
                pending, wave_index, allocation.level, current_time,
                class_of, budgets,
            )
            waves.append(wave)
            current_time = wave.end
            wave_index += 1
        return waves, current_time

    def schedule(
        self,
        level_allocations: dict[int, LevelAllocation],
        metaops_by_level: dict[int, list[MetaOp]],
        curves: dict[int, ScalingCurve],
        start_time: float = 0.0,
    ) -> WavefrontSchedule:
        """Schedule every MetaLevel and merge the waves (§3.4)."""
        waves: list[Wave] = []
        current = start_time
        for level in sorted(level_allocations):
            level_waves, current = self.schedule_level(
                level_allocations[level],
                metaops_by_level[level],
                curves,
                start_time=current,
                wave_index_offset=len(waves),
            )
            waves.extend(level_waves)
        return WavefrontSchedule(waves=waves, makespan=current)

    # -------------------------------------------------------------- internals
    def _build_pending(
        self,
        allocation: LevelAllocation,
        metaops: Sequence[MetaOp],
        curves: dict[int, ScalingCurve],
    ) -> dict[int, _PendingMetaOp]:
        pending: dict[int, _PendingMetaOp] = {}
        for metaop in metaops:
            tuples = [
                _PendingTuple(
                    n_devices=min(t.n_devices, self.num_devices),
                    layers_remaining=t.layers,
                )
                for t in allocation.tuples_for(metaop.index)
                if not t.is_dummy
            ]
            if not tuples:
                raise SchedulerError(
                    f"MetaOp {metaop.index} has no non-dummy allocation tuples"
                )
            total = sum(t.layers_remaining for t in tuples)
            if total != metaop.num_operators:
                raise SchedulerError(
                    f"Allocation of MetaOp {metaop.index} covers {total} operators, "
                    f"expected {metaop.num_operators}"
                )
            pending[metaop.index] = _PendingMetaOp(
                metaop=metaop, curve=curves[metaop.index], tuples=tuples
            )
        return pending

    def _craft_wave(
        self,
        pending: dict[int, _PendingMetaOp],
        wave_index: int,
        level: int,
        start_time: float,
        class_of: dict[int, int] | None = None,
        budgets: dict[int | None, int] | None = None,
    ) -> Wave:
        if budgets is None:
            budgets = {None: self.num_devices}
        candidates = self._propose_candidates(pending, class_of, budgets)
        if not candidates:
            raise SchedulerError("No candidate ASL-tuples fit into the wave")
        self._extend_resources(candidates, budgets)
        entries, duration = self._align_time_span(candidates)
        wave = Wave(
            index=wave_index,
            level=level,
            start=start_time,
            duration=duration,
            entries=entries,
        )
        self._commit(wave, pending)
        return wave

    def _propose_candidates(
        self,
        pending: dict[int, _PendingMetaOp],
        class_of: dict[int, int] | None,
        budgets: dict[int | None, int],
    ) -> list[_Candidate]:
        """Step 1: greedily occupy as many devices as possible.

        Each candidate draws devices from its MetaOp's budget pool — the
        whole cluster on classic levels, its assigned spec class on
        partitioned ones — so a heavy MetaOp can never crowd a light one off
        the light one's own islands.
        """
        active = [p for p in pending.values() if not p.exhausted]
        # Prefer MetaOps whose next tuple uses many devices, breaking ties by
        # the amount of remaining work (balances workloads over waves).
        active.sort(
            key=lambda p: (
                -(p.next_tuple().n_devices if p.next_tuple() else 0),
                -p.remaining_time(),
            )
        )
        remaining = dict(budgets)
        candidates: list[_Candidate] = []
        for p in active:
            cls = class_of.get(p.metaop.index) if class_of is not None else None
            source = p.largest_fitting_tuple(remaining.get(cls, 0))
            if source is None:
                continue
            candidates.append(
                _Candidate(
                    pending=p,
                    source=source,
                    n_devices=source.n_devices,
                    spec_class=cls,
                )
            )
            remaining[cls] -= source.n_devices
            if sum(remaining.values()) == 0:
                break
        if not candidates and active:
            # Nothing fits (a single tuple larger than the cluster should have
            # been clamped already); force the smallest pending tuple in.
            p = min(active, key=lambda p: p.next_tuple().n_devices)
            source = p.next_tuple()
            assert source is not None
            cls = class_of.get(p.metaop.index) if class_of is not None else None
            cap = budgets.get(cls, self.num_devices)
            candidates.append(
                _Candidate(
                    pending=p,
                    source=source,
                    n_devices=min(source.n_devices, cap),
                    spec_class=cls,
                )
            )
        return candidates

    def _extend_resources(
        self,
        candidates: list[_Candidate],
        budgets: dict[int | None, int],
    ) -> None:
        """Step 2: extend allocations so no device sits idle.

        Extension is prioritised for the MetaOps with the largest remaining
        execution time, balancing the residual workload across MetaOps.  Each
        candidate only grows within its own budget pool: devices of a spec
        class that scheduled no work this wave stay idle rather than hosting
        a slice paced for a different class.
        """
        idle = dict(budgets)
        for c in candidates:
            idle[c.spec_class] -= c.n_devices
        if all(value <= 0 for value in idle.values()):
            return
        by_remaining = sorted(
            candidates, key=lambda c: c.pending.remaining_time(), reverse=True
        )
        progress = True
        while any(value > 0 for value in idle.values()) and progress:
            progress = False
            for candidate in by_remaining:
                pool = candidate.spec_class
                if idle[pool] <= 0:
                    continue
                valid = self.allocation_grid.grid(
                    candidate.pending.metaop, budgets[pool]
                )
                larger = [
                    n
                    for n in valid
                    if candidate.n_devices < n <= candidate.n_devices + idle[pool]
                ]
                if not larger:
                    continue
                new_n = min(larger)
                idle[pool] -= new_n - candidate.n_devices
                candidate.n_devices = new_n
                progress = True
                if all(value <= 0 for value in idle.values()):
                    break

    def _align_time_span(
        self, candidates: list[_Candidate]
    ) -> tuple[list[WaveEntry], float]:
        """Step 3: slice the proposed tuples to align their time spans."""
        wave_span = min(c.tuple_time for c in candidates)
        entries: list[WaveEntry] = []
        duration = 0.0
        for candidate in candidates:
            per_layer = candidate.per_layer_time
            if per_layer <= 0:
                layers = candidate.source.layers_remaining
            else:
                layers = min(
                    candidate.source.layers_remaining,
                    max(1, math.floor(wave_span / per_layer + 1e-9)),
                )
            entry_duration = layers * per_layer
            entries.append(
                WaveEntry(
                    metaop_index=candidate.pending.metaop.index,
                    n_devices=candidate.n_devices,
                    layers=layers,
                    duration=entry_duration,
                    operator_offset=candidate.pending.operator_cursor,
                    spec_class=candidate.spec_class,
                )
            )
            duration = max(duration, entry_duration)
        return entries, duration

    def _commit(self, wave: Wave, pending: dict[int, _PendingMetaOp]) -> None:
        """Step 4: fix start times and remove scheduled work."""
        for entry in wave.entries:
            p = pending[entry.metaop_index]
            remaining = entry.layers
            p.operator_cursor += entry.layers
            for t in p.tuples:
                if remaining == 0:
                    break
                if t.layers_remaining == 0:
                    continue
                consumed = min(t.layers_remaining, remaining)
                t.layers_remaining -= consumed
                remaining -= consumed
            if remaining:
                raise SchedulerError(
                    f"Wave {wave.index} over-schedules MetaOp {entry.metaop_index}"
                )
