"""Heterogeneity-aware allocation: spec-class partitioning of MetaLevels.

The classic allocator (§3.3) treats the cluster as ``N`` interchangeable
devices paced on the slowest device's sustained throughput — correct on the
paper's homogeneous testbed, but wasteful on the mixed-spec substrates the
elastic subsystem produces: a fast island dragged to a slow island's rate
contributes none of its surplus capacity.

This module allocates each MetaLevel *per spec class* instead:

1. **Partition** — the level's MetaOps are split across the cluster's spec
   classes, heaviest MetaOps onto the fastest class first, with each class
   receiving a share of the level's total work proportional to its aggregate
   sustained capacity (devices x per-device rate).
2. **Per-class MPSP** — each class's MetaOp subset is solved as an
   independent malleable-project-scheduling relaxation (Algorithm 2) over the
   class's own device count, using curves profiled *at the class's own
   pacing rate*; classes execute concurrently on disjoint devices, so the
   level's completion estimate is the maximum per-class ``C*``.
3. **Fallback comparison** — the classic cluster-spanning allocation is
   computed as well, and the cheaper of the two (by estimated completion)
   wins.  This guarantees heterogeneity-awareness never regresses below
   slowest-device pacing: levels where spanning every device beats
   partitioning (one huge MetaOp, nearly-equal specs) keep the classic plan.

Homogeneous clusters never reach this module — a single spec class makes the
partition the identity and the planner short-circuits to the classic path,
keeping homogeneous plans byte-identical to the pre-spec-class planner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import ClusterTopology, SpecClass
from repro.core.allocator import AllocationError, ResourceAllocator
from repro.core.estimator import ScalabilityEstimator, ScalingCurve
from repro.core.metagraph import MetaGraph, MetaOp
from repro.core.plan import LevelAllocation


def partition_level(
    metaops: list[MetaOp],
    base_curves: dict[int, ScalingCurve],
    classes: tuple[SpecClass, ...],
) -> dict[int, int]:
    """Assign each MetaOp of one level to a spec class, heavy work first.

    MetaOps are walked in descending order of estimated serial work
    (``T(1) * num_operators`` on the base curve, ties broken by index) and
    poured into the classes in fastest-first order; the walk advances to the
    next class once the cumulative work crosses the current class's share of
    the level's total — the share being the class's fraction of the cluster's
    aggregate sustained FLOP/s.  Deterministic: pure arithmetic over the
    fitted curves, no RNG.
    """
    work = {
        m.index: base_curves[m.index].time(1) * m.num_operators for m in metaops
    }
    total_work = sum(work.values())
    total_capacity = sum(cls.capacity_flops for cls in classes)
    ordered = sorted(metaops, key=lambda m: (-work[m.index], m.index))

    # Cumulative work boundary after which the walk leaves class k.
    boundaries = []
    prefix = 0.0
    for cls in classes:
        prefix += cls.capacity_flops
        boundaries.append(total_work * prefix / total_capacity)

    assignment: dict[int, int] = {}
    cls_cursor = 0
    cumulative = 0.0
    for metaop in ordered:
        assignment[metaop.index] = classes[cls_cursor].index
        cumulative += work[metaop.index]
        while cls_cursor < len(classes) - 1 and cumulative >= boundaries[cls_cursor]:
            cls_cursor += 1
    return assignment


@dataclass
class HeterogeneousAllocation:
    """Result of allocating one MetaGraph heterogeneity-aware.

    ``curves`` maps every MetaOp index to the curve its allocation was made
    with — the class-paced curve on partitioned levels, the base (floor-paced)
    curve on levels where the classic allocation won.  The wavefront scheduler
    must consume these, not the base curves, so wave slicing and alignment use
    the same pacing the allocator did.
    """

    level_allocations: dict[int, LevelAllocation]
    curves: dict[int, ScalingCurve]
    #: Levels that adopted the spec-class partition (diagnostics/reporting).
    partitioned_levels: tuple[int, ...] = ()


class HeterogeneousLevelAllocator:
    """Per-level arbiter between classic floor pacing and spec-class partitioning.

    Bound to one planner: shares the planner's allocator (valid-allocation
    rule, memoized grids, ``optimized`` flag) and estimator (per-class curve
    cache), and builds one sub-allocator per distinct spec-class size.
    """

    def __init__(
        self,
        cluster: ClusterTopology,
        allocator: ResourceAllocator,
        estimator: ScalabilityEstimator,
    ) -> None:
        self.cluster = cluster
        self.base_allocator = allocator
        self.estimator = estimator
        self.classes = cluster.spec_classes()
        if len(self.classes) < 2:
            raise AllocationError(
                "heterogeneous allocation needs at least two spec classes; "
                "homogeneous clusters take the classic path"
            )
        self._class_allocators: dict[int, ResourceAllocator] = {}

    # ------------------------------------------------------------- public API
    def allocate(
        self,
        metagraph: MetaGraph,
        base_curves: dict[int, ScalingCurve],
    ) -> HeterogeneousAllocation:
        """Allocate every MetaLevel, choosing partitioned vs classic per level."""
        curves = dict(base_curves)
        allocations: dict[int, LevelAllocation] = {}
        partitioned_levels: list[int] = []
        for level, indices in enumerate(metagraph.levels()):
            metaops = [metagraph.metaop(i) for i in indices]
            classic = self.base_allocator.allocate_level(level, metaops, base_curves)
            try:
                partitioned, class_curves = self._allocate_partitioned(
                    level, metaops, base_curves
                )
            except AllocationError:
                # A class-restricted sub-problem can be infeasible where the
                # cluster-spanning one is not (e.g. a custom valid-allocation
                # rule with no valid count within one class's few devices).
                # The fallback guarantee must hold: keep the classic plan.
                partitioned = None
            if partitioned is not None and partitioned.c_star < classic.c_star:
                allocations[level] = partitioned
                curves.update(class_curves)
                partitioned_levels.append(level)
            else:
                allocations[level] = classic
        return HeterogeneousAllocation(
            level_allocations=allocations,
            curves=curves,
            partitioned_levels=tuple(partitioned_levels),
        )

    # -------------------------------------------------------------- internals
    def _allocator_for(self, spec_class: SpecClass) -> ResourceAllocator:
        """Sub-allocator over one class's device count (shared grids/config)."""
        allocator = self._class_allocators.get(spec_class.num_devices)
        if allocator is None:
            base = self.base_allocator
            allocator = ResourceAllocator(
                spec_class.num_devices,
                valid_allocation_fn=base.valid_allocation_fn,
                bisection_tolerance=base.bisection_tolerance,
                max_bisection_iters=base.max_bisection_iters,
                allocation_grid=base.allocation_grid,
                optimized=base.optimized,
            )
            self._class_allocators[spec_class.num_devices] = allocator
        return allocator

    def _allocate_partitioned(
        self,
        level: int,
        metaops: list[MetaOp],
        base_curves: dict[int, ScalingCurve],
    ) -> tuple[LevelAllocation, dict[int, ScalingCurve]]:
        """Partition the level and solve one MPSP per populated spec class."""
        assignment = partition_level(metaops, base_curves, self.classes)
        by_class: dict[int, list[MetaOp]] = {}
        for metaop in metaops:
            by_class.setdefault(assignment[metaop.index], []).append(metaop)

        c_star = 0.0
        continuous: dict[int, float] = {}
        plan: dict[int, list] = {}
        class_curves: dict[int, ScalingCurve] = {}
        class_sizes: dict[int, int] = {}
        for cls_index in sorted(by_class):
            spec_class = self.classes[cls_index]
            members = by_class[cls_index]
            curves = self.estimator.estimate_metaops_for_class(
                [(m.index, m) for m in members], spec_class
            )
            allocation = self._allocator_for(spec_class).allocate_level(
                level, members, curves
            )
            c_star = max(c_star, allocation.c_star)
            continuous.update(allocation.continuous)
            plan.update(allocation.plan)
            class_curves.update(curves)
            class_sizes[cls_index] = spec_class.num_devices
        return (
            LevelAllocation(
                level=level,
                c_star=c_star,
                continuous=continuous,
                plan=plan,
                spec_classes=dict(assignment),
                class_sizes=class_sizes,
            ),
            class_curves,
        )
