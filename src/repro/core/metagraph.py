"""MetaOps, MetaGraph and MetaLevels (§3.1).

A MetaOp groups ``L_m`` consecutive operators with identical workload so the
planner reasons about one execution-time function ``T_m(n)`` per group instead
of one per operator.  MetaLevels disentangle dependencies: MetaOps at the same
level are mutually independent, so the allocation problem can be solved level
by level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.graph.ops import Operator, TensorSpec


class MetaGraphError(Exception):
    """Raised for malformed MetaGraphs."""


@dataclass
class MetaOp:
    """A maximal chain of consecutive operators with identical workloads."""

    index: int
    operators: list[Operator]
    level: int = -1

    def __post_init__(self) -> None:
        if not self.operators:
            raise MetaGraphError(f"MetaOp {self.index} has no operators")
        signature = self.operators[0].workload_signature()
        for op in self.operators[1:]:
            if op.workload_signature() != signature:
                raise MetaGraphError(
                    f"MetaOp {self.index} mixes workload signatures "
                    f"{signature} and {op.workload_signature()}"
                )

    # ------------------------------------------------------------ delegation
    @property
    def representative(self) -> Operator:
        """One operator standing in for the identical workload of the group."""
        return self.operators[0]

    @property
    def op_type(self) -> str:
        return self.representative.op_type

    @property
    def task(self) -> str:
        return self.representative.task

    @property
    def modality(self) -> str:
        return self.representative.modality

    @property
    def input_spec(self) -> TensorSpec:
        return self.representative.input_spec

    @property
    def batch_size(self) -> int:
        return self.representative.batch_size

    @cached_property
    def curve_key(self) -> tuple:
        """Reuse key of this MetaOp's scaling curve (workload signature of its
        representative operator).

        Two MetaOps with equal keys profile identically on the same cluster
        and planner configuration, so fitted curves can be shared between them
        (intra-plan) and transferred between plans (incremental re-planning).
        Cached because estimate/reuse lookups and incremental-planner passes
        recompute it per MetaOp many times; the operator list is treated as
        immutable once the MetaGraph is built.
        """
        op = self.representative
        return (
            op.op_type,
            op.modality,
            op.input_spec.as_tuple(),
            op.flops,
            op.param_bytes,
            op.activation_bytes,
        )

    # ------------------------------------------------------------ aggregates
    @property
    def num_operators(self) -> int:
        """The paper's ``L_m``: number of consecutive operators contracted."""
        return len(self.operators)

    @property
    def flops_per_operator(self) -> float:
        return self.representative.flops

    @property
    def total_flops(self) -> float:
        return sum(op.flops for op in self.operators)

    @property
    def param_bytes(self) -> float:
        return sum(op.param_bytes for op in self.operators)

    @property
    def output_activation_bytes(self) -> float:
        return self.operators[-1].activation_bytes

    @property
    def name(self) -> str:
        first, last = self.operators[0].name, self.operators[-1].name
        if first == last:
            return first
        return f"{first}..{last}"

    def operator_slice(self, offset: int, layers: int) -> list[Operator]:
        """Operators executed by a wave entry starting at ``offset``."""
        if offset < 0 or layers < 0 or offset + layers > self.num_operators:
            raise MetaGraphError(
                f"Invalid slice [{offset}, {offset + layers}) of MetaOp "
                f"{self.index} with {self.num_operators} operators"
            )
        return self.operators[offset : offset + layers]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetaOp(index={self.index}, type={self.op_type!r}, task={self.task!r}, "
            f"L={self.num_operators}, level={self.level})"
        )


@dataclass
class MetaGraph:
    """Contracted graph ``G_M`` whose nodes are MetaOps."""

    metaops: dict[int, MetaOp] = field(default_factory=dict)
    edges: dict[tuple[int, int], float] = field(default_factory=dict)

    # ---------------------------------------------------------------- mutation
    def add_metaop(self, metaop: MetaOp) -> MetaOp:
        if metaop.index in self.metaops:
            raise MetaGraphError(f"Duplicate MetaOp index {metaop.index}")
        self.metaops[metaop.index] = metaop
        return metaop

    def add_edge(self, src: int, dst: int, volume_bytes: float) -> None:
        if src not in self.metaops or dst not in self.metaops:
            raise MetaGraphError(f"Unknown MetaOp in edge ({src}, {dst})")
        if src == dst:
            raise MetaGraphError(f"Self edge on MetaOp {src}")
        key = (src, dst)
        self.edges[key] = self.edges.get(key, 0.0) + float(volume_bytes)

    # ----------------------------------------------------------------- lookup
    def metaop(self, index: int) -> MetaOp:
        try:
            return self.metaops[index]
        except KeyError as exc:
            raise MetaGraphError(f"Unknown MetaOp index {index}") from exc

    @property
    def num_metaops(self) -> int:
        return len(self.metaops)

    @property
    def num_operators(self) -> int:
        return sum(m.num_operators for m in self.metaops.values())

    def predecessors(self, index: int) -> list[int]:
        return [src for (src, dst) in self.edges if dst == index]

    def successors(self, index: int) -> list[int]:
        return [dst for (src, dst) in self.edges if src == index]

    def edge_volume(self, src: int, dst: int) -> float:
        return self.edges.get((src, dst), 0.0)

    # ----------------------------------------------------------------- levels
    def assign_levels(self) -> None:
        """Assign MetaLevels so that same-level MetaOps are independent.

        Levels follow the dependency topology: a MetaOp's level is one more
        than the deepest level among its predecessors, which guarantees that
        every edge crosses from a strictly lower level to a higher one.
        """
        order = self._topological_order()
        levels: dict[int, int] = {}
        for index in order:
            preds = self.predecessors(index)
            level = 0 if not preds else 1 + max(levels[p] for p in preds)
            levels[index] = level
            self.metaops[index].level = level

    def levels(self) -> list[list[int]]:
        """MetaOp indices grouped by level (levels must be assigned)."""
        self._require_levels()
        max_level = max(m.level for m in self.metaops.values())
        groups: list[list[int]] = [[] for _ in range(max_level + 1)]
        for metaop in self.metaops.values():
            groups[metaop.level].append(metaop.index)
        return groups

    def metaops_at_level(self, level: int) -> list[MetaOp]:
        self._require_levels()
        return [m for m in self.metaops.values() if m.level == level]

    @property
    def num_levels(self) -> int:
        self._require_levels()
        return max(m.level for m in self.metaops.values()) + 1

    def _require_levels(self) -> None:
        if not self.metaops:
            raise MetaGraphError("MetaGraph is empty")
        if any(m.level < 0 for m in self.metaops.values()):
            raise MetaGraphError("MetaLevels have not been assigned")

    def _topological_order(self) -> list[int]:
        in_deg = {index: 0 for index in self.metaops}
        for (_, dst) in self.edges:
            in_deg[dst] += 1
        queue = [index for index, deg in in_deg.items() if deg == 0]
        order: list[int] = []
        while queue:
            index = queue.pop(0)
            order.append(index)
            for succ in self.successors(index):
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    queue.append(succ)
        if len(order) != len(self.metaops):
            raise MetaGraphError("MetaGraph contains a cycle")
        return order

    # --------------------------------------------------------------- validate
    def validate(self) -> None:
        self._topological_order()
        if any(m.level >= 0 for m in self.metaops.values()):
            for (src, dst) in self.edges:
                if self.metaops[src].level >= self.metaops[dst].level >= 0:
                    raise MetaGraphError(
                        f"Edge ({src}, {dst}) does not increase MetaLevel"
                    )

    def tasks(self) -> list[str]:
        seen: dict[str, None] = {}
        for metaop in self.metaops.values():
            seen.setdefault(metaop.task, None)
        return list(seen)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetaGraph(metaops={self.num_metaops}, edges={len(self.edges)}, "
            f"operators={self.num_operators})"
        )
