"""Utilization traces produced by the simulated runtime engine.

These traces back the case-study figures of the paper: cluster utilization over
the iteration timeline (Fig. 1 lower, Fig. 9a), per-device utilization and
per-MetaOp utilization spider charts (Fig. 9b).  Utilization is measured in
achieved FLOP/s, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class TraceSegment:
    """A contiguous busy period of one device."""

    device_id: int
    start: float
    end: float
    flops_per_second: float
    metaop_index: Optional[int] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("Trace segment ends before it starts")
        if self.flops_per_second < 0:
            raise ValueError("Trace segment has negative throughput")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def flops(self) -> float:
        return self.flops_per_second * self.duration


@dataclass
class UtilizationTrace:
    """Collection of busy segments over one (or more) training iterations."""

    num_devices: int
    peak_flops_per_device: float
    segments: list[TraceSegment] = field(default_factory=list)
    end_time: float = 0.0

    def add_segment(self, segment: TraceSegment) -> None:
        if not 0 <= segment.device_id < self.num_devices:
            raise ValueError(
                f"Device id {segment.device_id} outside [0, {self.num_devices})"
            )
        self.segments.append(segment)
        self.end_time = max(self.end_time, segment.end)

    def add_busy(
        self,
        device_id: int,
        start: float,
        duration: float,
        flops_per_second: float,
        metaop_index: Optional[int] = None,
        label: str = "",
    ) -> None:
        self.add_segment(
            TraceSegment(
                device_id=device_id,
                start=start,
                end=start + duration,
                flops_per_second=flops_per_second,
                metaop_index=metaop_index,
                label=label,
            )
        )

    # ------------------------------------------------------------- aggregates
    def device_busy_time(self) -> dict[int, float]:
        busy = {d: 0.0 for d in range(self.num_devices)}
        for seg in self.segments:
            busy[seg.device_id] += seg.duration
        return busy

    def device_average_flops(self) -> dict[int, float]:
        """Average achieved FLOP/s per device over the full timeline."""
        if self.end_time <= 0:
            return {d: 0.0 for d in range(self.num_devices)}
        totals = {d: 0.0 for d in range(self.num_devices)}
        for seg in self.segments:
            totals[seg.device_id] += seg.flops
        return {d: total / self.end_time for d, total in totals.items()}

    def device_utilization(self) -> dict[int, float]:
        """Average utilization of each device as a fraction of peak FLOP/s."""
        return {
            d: flops / self.peak_flops_per_device
            for d, flops in self.device_average_flops().items()
        }

    def cluster_average_flops(self) -> float:
        """Cluster-wide average achieved FLOP/s over the timeline."""
        if self.end_time <= 0:
            return 0.0
        return sum(seg.flops for seg in self.segments) / self.end_time

    def cluster_timeline(self, num_points: int = 200) -> list[tuple[float, float]]:
        """Sampled cluster FLOP/s over time (the curve of Fig. 9a)."""
        if num_points <= 0:
            raise ValueError("num_points must be positive")
        if self.end_time <= 0:
            return [(0.0, 0.0)]
        step = self.end_time / num_points
        points = []
        for i in range(num_points):
            t_lo, t_hi = i * step, (i + 1) * step
            total = 0.0
            for seg in self.segments:
                overlap = min(seg.end, t_hi) - max(seg.start, t_lo)
                if overlap > 0:
                    total += seg.flops_per_second * overlap
            points.append((t_lo, total / step))
        return points

    def metaop_average_flops(self) -> dict[int, float]:
        """Average achieved FLOP/s of each MetaOp while it executes (Fig. 9b)."""
        time_per_metaop: dict[int, float] = {}
        flops_per_metaop: dict[int, float] = {}
        for seg in self.segments:
            if seg.metaop_index is None:
                continue
            time_per_metaop[seg.metaop_index] = (
                time_per_metaop.get(seg.metaop_index, 0.0) + seg.duration
            )
            flops_per_metaop[seg.metaop_index] = (
                flops_per_metaop.get(seg.metaop_index, 0.0) + seg.flops
            )
        return {
            idx: flops_per_metaop[idx] / time_per_metaop[idx]
            for idx in time_per_metaop
            if time_per_metaop[idx] > 0
        }

    def metaop_utilization(self) -> dict[int, float]:
        """Per-MetaOp utilization as a fraction of per-device peak FLOP/s."""
        return {
            idx: flops / self.peak_flops_per_device
            for idx, flops in self.metaop_average_flops().items()
        }
