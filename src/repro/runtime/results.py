"""Result types shared by the runtime engine and the baseline systems."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.trace import UtilizationTrace


@dataclass(frozen=True)
class TimeBreakdown:
    """Iteration time decomposition used by the Fig. 10 experiment."""

    forward_backward: float
    param_sync: float
    send_recv: float

    def __post_init__(self) -> None:
        for name, value in (
            ("forward_backward", self.forward_backward),
            ("param_sync", self.param_sync),
            ("send_recv", self.send_recv),
        ):
            if value < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def total(self) -> float:
        return self.forward_backward + self.param_sync + self.send_recv

    def fraction(self, component: str) -> float:
        """Fraction of iteration time spent in ``component``."""
        total = self.total
        if total <= 0:
            return 0.0
        return getattr(self, component) / total


@dataclass
class IterationResult:
    """Outcome of simulating one training iteration."""

    iteration_time: float
    breakdown: TimeBreakdown
    trace: UtilizationTrace
    device_memory_bytes: dict[int, float] = field(default_factory=dict)
    num_waves: int = 0
    metadata: dict = field(default_factory=dict)

    @property
    def cluster_average_flops(self) -> float:
        return self.trace.cluster_average_flops()

    @property
    def peak_device_memory_bytes(self) -> float:
        if not self.device_memory_bytes:
            return 0.0
        return max(self.device_memory_bytes.values())


@dataclass
class TrainingRunResult:
    """Outcome of simulating several iterations (used by Appendix D)."""

    iteration_results: list[IterationResult] = field(default_factory=list)
    planning_seconds: float = 0.0

    @property
    def num_iterations(self) -> int:
        return len(self.iteration_results)

    @property
    def total_time(self) -> float:
        return self.planning_seconds + sum(
            r.iteration_time for r in self.iteration_results
        )

    @property
    def mean_iteration_time(self) -> float:
        if not self.iteration_results:
            return 0.0
        return sum(r.iteration_time for r in self.iteration_results) / len(
            self.iteration_results
        )
