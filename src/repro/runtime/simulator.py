"""Discrete-event simulation of wave-by-wave execution on the cluster.

This module substitutes the paper's physical testbed: it executes an
:class:`~repro.core.plan.ExecutionPlan` against the analytic cost models,
charging per-wave compute on the allocated device groups, inter-wave
transmission at wave boundaries, and group-wise parameter synchronisation at
the end of the iteration.  The same methodology backs the paper's own
larger-scale simulations (Appendix E).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import ExecutionPlan
from repro.costmodel.timing import ExecutionTimeModel
from repro.obs import get_metrics, get_tracer
from repro.runtime.param_groups import ParameterDeviceGroupPool
from repro.runtime.results import IterationResult, TimeBreakdown
from repro.runtime.trace import UtilizationTrace
from repro.runtime.transmission import TransmissionOp


@dataclass
class WaveSimulation:
    """Timing of one simulated wave."""

    wave_index: int
    start: float
    compute_duration: float
    boundary_duration: float

    @property
    def end(self) -> float:
        return self.start + self.compute_duration + self.boundary_duration


class WaveExecutionSimulator:
    """Simulates one training iteration of an execution plan."""

    def __init__(
        self,
        plan: ExecutionPlan,
        timing_model: ExecutionTimeModel,
        transmissions: list[TransmissionOp],
        param_pool: ParameterDeviceGroupPool,
    ) -> None:
        self.plan = plan
        self.timing_model = timing_model
        self.transmissions = transmissions
        self.param_pool = param_pool
        # Per-spec-class pacing rates: entries of a heterogeneity-aware plan
        # carry the spec class they were allocated on and are charged at that
        # class's sustained throughput.  Classic entries (spec_class None —
        # every entry of a homogeneous plan) pace on the cluster floor exactly
        # as before.
        self._class_pacing = {
            cls.index: cls.achievable_flops
            for cls in plan.cluster.spec_classes()
        }
        # The transmission list is immutable per plan, so the per-boundary
        # grouping and each boundary's critical-path duration are computed
        # once here instead of on every simulated iteration.
        self._boundary_transmissions: dict[int, list[TransmissionOp]] = {}
        for t in transmissions:
            self._boundary_transmissions.setdefault(
                t.boundary_after_wave, []
            ).append(t)
        self._boundary_durations = {
            boundary: self._boundary_duration(grouped)
            for boundary, grouped in self._boundary_transmissions.items()
        }

    def run_iteration(self) -> IterationResult:
        cluster = self.plan.cluster
        tracer = get_tracer()
        metrics = get_metrics()
        trace = UtilizationTrace(
            num_devices=cluster.num_devices,
            # The fastest device normalises utilization, so heterogeneous
            # traces stay within [0, 1]; uniform clusters are unaffected.
            peak_flops_per_device=cluster.max_peak_flops,
        )

        current_time = 0.0
        compute_total = 0.0
        send_recv_total = 0.0
        wave_timings: list[WaveSimulation] = []

        with tracer.span(
            "simulator.run_iteration",
            category="simulator",
            num_waves=len(self.plan.waves),
            num_devices=cluster.num_devices,
        ):
            for wave in self.plan.waves:
                wave_start = current_time
                compute_duration = 0.0
                with tracer.span(
                    "simulator.wave", category="simulator", wave=wave.index
                ) as wave_span:
                    for entry in wave.entries:
                        metaop = self.plan.metagraph.metaop(entry.metaop_index)
                        devices = self.plan.placement.devices_for(
                            wave.index, entry.metaop_index
                        )
                        pacing = (
                            self._class_pacing[entry.spec_class]
                            if entry.spec_class is not None
                            else None
                        )
                        per_layer = self.timing_model.operator_time(
                            metaop.representative, entry.n_devices, pacing_flops=pacing
                        )
                        entry_time = per_layer * entry.layers
                        compute_duration = max(compute_duration, entry_time)
                        achieved = self.timing_model.achieved_flops_per_second(
                            metaop.representative, entry.n_devices, pacing_flops=pacing
                        )
                        per_device_flops = achieved / max(1, entry.n_devices)
                        for device in devices:
                            trace.add_busy(
                                device_id=device,
                                start=wave_start,
                                duration=entry_time,
                                flops_per_second=per_device_flops,
                                metaop_index=entry.metaop_index,
                                label=f"wave{wave.index}",
                            )
                    boundary_duration = self._boundary_durations.get(wave.index, 0.0)
                    # The simulated wave duration (compute + boundary), not the
                    # wall time of simulating it, is the observed quantity.
                    metrics.observe(
                        "simulator.wave_seconds", compute_duration + boundary_duration
                    )
                    wave_span.set(
                        simulated_compute_seconds=compute_duration,
                        simulated_boundary_seconds=boundary_duration,
                    )
                wave_timings.append(
                    WaveSimulation(
                        wave_index=wave.index,
                        start=wave_start,
                        compute_duration=compute_duration,
                        boundary_duration=boundary_duration,
                    )
                )
                compute_total += compute_duration
                send_recv_total += boundary_duration
                current_time = wave_start + compute_duration + boundary_duration

            sync_time = self.param_pool.sync_time(cluster)
        iteration_time = current_time + sync_time
        trace.end_time = max(trace.end_time, iteration_time)

        breakdown = TimeBreakdown(
            forward_backward=compute_total,
            param_sync=sync_time,
            send_recv=send_recv_total,
        )
        return IterationResult(
            iteration_time=iteration_time,
            breakdown=breakdown,
            trace=trace,
            device_memory_bytes=dict(self.plan.placement.device_memory_bytes),
            num_waves=len(self.plan.waves),
            metadata={
                "wave_timings": wave_timings,
                "num_parameter_groups": self.param_pool.num_groups,
            },
        )

    # ----------------------------------------------------------------- helpers
    def _transmissions_by_boundary(self) -> dict[int, list[TransmissionOp]]:
        """Transmissions grouped by boundary (precomputed at construction)."""
        return self._boundary_transmissions

    @staticmethod
    def _boundary_duration(transmissions: list[TransmissionOp]) -> float:
        """Critical-path duration of the transfers at one wave boundary.

        Transfers between disjoint device pairs overlap; transfers sharing a
        device serialise on that device's link, so the boundary lasts as long
        as the busiest device's accumulated transfer time.
        """
        per_device: dict[int, float] = {}
        for t in transmissions:
            for device in t.touched_devices:
                per_device[device] = per_device.get(device, 0.0) + t.time_seconds
        if not per_device:
            return 0.0
        return max(per_device.values())
