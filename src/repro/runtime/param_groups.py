"""Parameter device groups for cross-task gradient synchronisation (§3.6).

Parameters shared across tasks (identified by ``Operator.param_key``) may be
instantiated on several devices by different MetaOps.  Before training starts,
Spindle scans all devices to determine the device group of every parameter and
maintains a global *parameter device group pool* ``{D_i -> {W_j}}``; after each
iteration's backward pass, every parameter set is all-reduced within its device
group.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.topology import ClusterTopology
from repro.core.plan import ExecutionPlan
from repro.costmodel.comm import ring_allreduce_time

#: Fraction of gradient synchronisation hidden behind the backward pass.
#: Frameworks bucket gradients and overlap their all-reduce with the remaining
#: backward computation; only the tail is exposed.  The same fraction is
#: applied to every system under comparison.
SYNC_OVERLAP_FRACTION = 0.5


@dataclass(frozen=True)
class ParameterGroup:
    """A device group and the parameters synchronised within it."""

    devices: tuple[int, ...]
    param_keys: tuple[str, ...]
    total_bytes: float

    @property
    def group_size(self) -> int:
        return len(self.devices)

    @property
    def needs_sync(self) -> bool:
        return self.group_size > 1 and self.total_bytes > 0


@dataclass
class ParameterDeviceGroupPool:
    """The global pool ``{D_i -> {W_j}}`` of §3.6."""

    groups: list[ParameterGroup] = field(default_factory=list)

    @classmethod
    def from_plan(cls, plan: ExecutionPlan) -> "ParameterDeviceGroupPool":
        """Scan the execution plan and build the parameter device group pool."""
        key_devices: dict[str, set[int]] = {}
        key_bytes: dict[str, float] = {}
        for wave in plan.waves:
            for entry in wave.entries:
                metaop = plan.metagraph.metaop(entry.metaop_index)
                devices = plan.placement.devices_for(wave.index, entry.metaop_index)
                for op in metaop.operator_slice(entry.operator_offset, entry.layers):
                    if op.param_key is None or op.param_bytes == 0:
                        continue
                    key_devices.setdefault(op.param_key, set()).update(devices)
                    # Operators sharing a key are instances of the same
                    # parameters; their sizes coincide, keep the largest.
                    key_bytes[op.param_key] = max(
                        key_bytes.get(op.param_key, 0.0), op.param_bytes
                    )

        by_group: dict[tuple[int, ...], list[str]] = {}
        for key, devices in key_devices.items():
            group = tuple(sorted(devices))
            by_group.setdefault(group, []).append(key)

        groups = [
            ParameterGroup(
                devices=group,
                param_keys=tuple(sorted(keys)),
                total_bytes=sum(key_bytes[k] for k in keys),
            )
            for group, keys in sorted(by_group.items())
        ]
        return cls(groups=groups)

    # ------------------------------------------------------------- accounting
    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def total_bytes(self) -> float:
        return sum(g.total_bytes for g in self.groups)

    def groups_needing_sync(self) -> list[ParameterGroup]:
        return [g for g in self.groups if g.needs_sync]

    def sync_time(
        self, cluster: ClusterTopology, overlap_fraction: float = SYNC_OVERLAP_FRACTION
    ) -> float:
        """Critical-path time of group-wise parameter synchronisation.

        Every group all-reduces its parameters within its device group; groups
        touching disjoint devices proceed concurrently, so the critical path is
        the busiest device's accumulated synchronisation time.  A fraction of
        that time (``overlap_fraction``) is hidden behind the tail of the
        backward pass, as gradient-bucketing frameworks do; the same overlap is
        granted to every system under comparison.
        """
        if not 0.0 <= overlap_fraction < 1.0:
            raise ValueError("overlap_fraction must be in [0, 1)")
        per_device: dict[int, float] = {}
        for group in self.groups_needing_sync():
            link = cluster.group_bandwidth(group.devices)
            time = ring_allreduce_time(group.total_bytes, group.group_size, link)
            for device in group.devices:
                per_device[device] = per_device.get(device, 0.0) + time
        if not per_device:
            return 0.0
        return max(per_device.values()) * (1.0 - overlap_fraction)

    def group_for_key(self, param_key: str) -> ParameterGroup | None:
        for group in self.groups:
            if param_key in group.param_keys:
                return group
        return None
