"""Inter-wave data-flow transmission operators (§3.6, step 2).

The runtime engine inserts transmission operators at wave boundaries to move
forward activations (and, in the backward pass, gradients) between MetaOp
slices.  Transmissions fall into three link classes — intra-device copy,
intra-island NVLink, inter-island InfiniBand — and the device placement pass
exists precisely to keep the high-volume flows on the fast links (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.cluster.topology import ClusterTopology
from repro.core.plan import ExecutionPlan
from repro.costmodel.comm import LinkClass, classify_link, group_transfer_time


@dataclass(frozen=True)
class TransmissionOp:
    """One inter-wave data transfer inserted by the runtime engine."""

    boundary_after_wave: int
    src_metaop: int
    dst_metaop: int
    src_devices: tuple[int, ...]
    dst_devices: tuple[int, ...]
    volume_bytes: float
    link: LinkClass
    time_seconds: float

    @property
    def is_local(self) -> bool:
        return self.link is LinkClass.INTRA_DEVICE

    @cached_property
    def touched_devices(self) -> frozenset[int]:
        """Every device this transfer occupies (senders and receivers).

        Cached: the op is immutable, and boundary critical-path accounting
        touches this set for every transmission of every simulated boundary.
        """
        return frozenset(self.src_devices) | frozenset(self.dst_devices)


def build_transmissions(
    plan: ExecutionPlan,
    cluster: ClusterTopology | None = None,
    include_backward: bool = True,
) -> list[TransmissionOp]:
    """Derive all inter-wave transmissions required by an execution plan.

    Two kinds of flows cross wave boundaries:

    * *residual* flows between consecutive slices of the same MetaOp (the
      activations produced by the last operator of one slice feed the first
      operator of the next slice), and
    * *inter-MetaOp* flows along MetaGraph edges, from the last slice of the
      source MetaOp to the first slice of the destination MetaOp.

    With ``include_backward`` (the default) each transfer is charged twice,
    once for forward activations and once for backward gradients.
    """
    cluster = cluster or plan.cluster
    passes = 2.0 if include_backward else 1.0
    transmissions: list[TransmissionOp] = []

    # Wave entries of each MetaOp in execution order.
    slices: dict[int, list[tuple[int, tuple[int, ...]]]] = {}
    for wave in plan.waves:
        for entry in wave.entries:
            devices = plan.placement.devices_for(wave.index, entry.metaop_index)
            slices.setdefault(entry.metaop_index, []).append((wave.index, devices))

    def add(
        boundary: int,
        src_meta: int,
        dst_meta: int,
        src_devices: tuple[int, ...],
        dst_devices: tuple[int, ...],
        volume: float,
    ) -> None:
        if volume <= 0:
            return
        link = classify_link(cluster, src_devices, dst_devices)
        time = passes * group_transfer_time(cluster, src_devices, dst_devices, volume)
        transmissions.append(
            TransmissionOp(
                boundary_after_wave=boundary,
                src_metaop=src_meta,
                dst_metaop=dst_meta,
                src_devices=src_devices,
                dst_devices=dst_devices,
                volume_bytes=volume,
                link=link,
                time_seconds=time,
            )
        )

    # Residual flows between consecutive slices of the same MetaOp.
    for metaop_index, entries in slices.items():
        metaop = plan.metagraph.metaop(metaop_index)
        residual_volume = metaop.representative.activation_bytes
        for (src_wave, src_devices), (_, dst_devices) in zip(entries, entries[1:]):
            add(
                boundary=src_wave,
                src_meta=metaop_index,
                dst_meta=metaop_index,
                src_devices=src_devices,
                dst_devices=dst_devices,
                volume=residual_volume,
            )

    # Inter-MetaOp flows along MetaGraph edges.
    for (src_meta, dst_meta), volume in plan.metagraph.edges.items():
        if src_meta not in slices or dst_meta not in slices:
            continue
        src_wave, src_devices = slices[src_meta][-1]
        _, dst_devices = slices[dst_meta][0]
        add(
            boundary=src_wave,
            src_meta=src_meta,
            dst_meta=dst_meta,
            src_devices=src_devices,
            dst_devices=dst_devices,
            volume=volume,
        )

    return transmissions


def total_transmission_time(transmissions: list[TransmissionOp]) -> float:
    """Sum of all transmission times (upper bound; the simulator overlaps them)."""
    return sum(t.time_seconds for t in transmissions)


def transmission_volume_by_link(
    transmissions: list[TransmissionOp],
) -> dict[LinkClass, float]:
    """Aggregate transferred bytes by link class (used for Fig. 6-style reports)."""
    volumes = {link: 0.0 for link in LinkClass}
    for t in transmissions:
        volumes[t.link] += t.volume_bytes
    return volumes
