"""Simulated Spindle runtime engine: localization, transmissions, parameter
device groups, and wave-by-wave iteration simulation."""

from repro.runtime.engine import LocalMetaOpSlice, LocalProgram, RuntimeEngine
from repro.runtime.param_groups import ParameterDeviceGroupPool, ParameterGroup
from repro.runtime.results import IterationResult, TimeBreakdown, TrainingRunResult
from repro.runtime.simulator import WaveExecutionSimulator, WaveSimulation
from repro.runtime.trace import TraceSegment, UtilizationTrace
from repro.runtime.transmission import (
    TransmissionOp,
    build_transmissions,
    total_transmission_time,
    transmission_volume_by_link,
)

__all__ = [
    "IterationResult",
    "LocalMetaOpSlice",
    "LocalProgram",
    "ParameterDeviceGroupPool",
    "ParameterGroup",
    "RuntimeEngine",
    "TimeBreakdown",
    "TraceSegment",
    "TrainingRunResult",
    "TransmissionOp",
    "UtilizationTrace",
    "WaveExecutionSimulator",
    "WaveSimulation",
    "build_transmissions",
    "total_transmission_time",
    "transmission_volume_by_link",
]
