"""The Spindle runtime engine (§3.6), simulated.

The engine operates in the paper's four steps:

1. **Localization** — the execution plan is localized to each device: every
   device instantiates the MetaOp slices assigned to it in each wave.
2. **Intra-task data dependency** — transmission operators are inserted at
   wave boundaries to move activations/gradients between MetaOp slices.
3. **Inter-task model dependency** — the parameter device group pool is built
   so shared parameters are synchronised across the tasks that activate them.
4. **Training step** — each iteration executes wave by wave (forward and
   backward), transmits inter-wave data flows, and finishes with group-wise
   parameter synchronisation.

Steps 1-3 are plan analyses; step 4 is delegated to the discrete-event
:class:`~repro.runtime.simulator.WaveExecutionSimulator`, our substitute for
the physical GPU cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.plan import ExecutionPlan
from repro.costmodel.timing import ExecutionTimeModel, TimingModelConfig
from repro.runtime.param_groups import ParameterDeviceGroupPool
from repro.runtime.results import IterationResult, TrainingRunResult
from repro.runtime.simulator import WaveExecutionSimulator
from repro.runtime.transmission import TransmissionOp, build_transmissions


@dataclass(frozen=True)
class LocalMetaOpSlice:
    """A MetaOp slice instantiated on one device in one wave."""

    wave_index: int
    metaop_index: int
    operator_names: tuple[str, ...]
    n_devices: int

    @property
    def num_operators(self) -> int:
        return len(self.operator_names)


@dataclass
class LocalProgram:
    """The per-device localized execution plan (step 1 of §3.6)."""

    device_id: int
    slices: list[LocalMetaOpSlice] = field(default_factory=list)

    @property
    def num_waves(self) -> int:
        return len({s.wave_index for s in self.slices})

    @property
    def parameter_keys(self) -> set[str]:
        # Derived lazily by the engine; kept here for symmetry of the API.
        return set()


class RuntimeEngine:
    """Instantiates and executes a Spindle execution plan."""

    def __init__(
        self,
        plan: ExecutionPlan,
        timing_config: TimingModelConfig | None = None,
        include_backward_transmissions: bool = True,
    ) -> None:
        self.plan = plan
        self.timing_model = ExecutionTimeModel(plan.cluster, timing_config)
        self._local_programs = self._localize()
        self._transmissions = build_transmissions(
            plan, include_backward=include_backward_transmissions
        )
        self._param_pool = ParameterDeviceGroupPool.from_plan(plan)
        self._simulator = WaveExecutionSimulator(
            plan=plan,
            timing_model=self.timing_model,
            transmissions=self._transmissions,
            param_pool=self._param_pool,
        )

    # ------------------------------------------------------------- step 1
    def _localize(self) -> dict[int, LocalProgram]:
        programs = {
            device.device_id: LocalProgram(device_id=device.device_id)
            for device in self.plan.cluster.devices
        }
        for wave in self.plan.waves:
            for entry in wave.entries:
                metaop = self.plan.metagraph.metaop(entry.metaop_index)
                operators = metaop.operator_slice(entry.operator_offset, entry.layers)
                devices = self.plan.placement.devices_for(
                    wave.index, entry.metaop_index
                )
                local_slice = LocalMetaOpSlice(
                    wave_index=wave.index,
                    metaop_index=entry.metaop_index,
                    operator_names=tuple(op.name for op in operators),
                    n_devices=entry.n_devices,
                )
                for device in devices:
                    programs[device].slices.append(local_slice)
        return programs

    # -------------------------------------------------------------- accessors
    @property
    def local_programs(self) -> dict[int, LocalProgram]:
        """Per-device localized programs (step 1)."""
        return self._local_programs

    @property
    def transmissions(self) -> list[TransmissionOp]:
        """Inter-wave transmission operators (step 2)."""
        return self._transmissions

    @property
    def parameter_pool(self) -> ParameterDeviceGroupPool:
        """Parameter device group pool (step 3)."""
        return self._param_pool

    # ------------------------------------------------------------- step 4
    def run_iteration(self) -> IterationResult:
        """Simulate one training iteration of the execution plan."""
        return self._simulator.run_iteration()

    def run(self, num_iterations: int, planning_seconds: float = 0.0) -> TrainingRunResult:
        """Simulate ``num_iterations`` identical training iterations."""
        if num_iterations <= 0:
            raise ValueError("num_iterations must be positive")
        result = self.run_iteration()
        # Iterations of a static workload are identical in the simulator, so
        # the per-iteration result is reused rather than recomputed.
        return TrainingRunResult(
            iteration_results=[result] * num_iterations,
            planning_seconds=planning_seconds,
        )
