"""Spindle reproduction: wavefront-scheduled multi-task multi-modal training.

This package reproduces the system described in *"Spindle: Efficient
Distributed Training of Multi-Task Large Models via Wavefront Scheduling"*
(ASPLOS 2025) on a simulated GPU cluster:

* :mod:`repro.graph` — the operator/computation-graph IR and the
  ``SpindleTask`` / ``add_flow`` task definition API,
* :mod:`repro.core` — the execution planner (graph contraction, scalability
  estimation, MPSP resource allocation, wavefront scheduling, device placement),
* :mod:`repro.runtime` — the simulated runtime engine,
* :mod:`repro.models` — the Multitask-CLIP / OFASys / QWen-VAL workloads,
* :mod:`repro.baselines` — the competitor systems of the evaluation,
* :mod:`repro.experiments` — the workload grid and comparison harness behind
  every table and figure of the paper.

Quickstart::

    from repro import SpindleSystem, make_cluster, multitask_clip_tasks

    cluster = make_cluster(16)
    tasks = multitask_clip_tasks(num_tasks=4)
    result = SpindleSystem(cluster).run_iteration(tasks)
    print(f"iteration time: {result.iteration_time * 1e3:.1f} ms")
"""

from repro.baselines import (
    DeepSpeedSystem,
    DistMMMTSystem,
    MegatronLMSystem,
    SpindleOptimusSystem,
    SpindleSeqSystem,
    SpindleSystem,
    TrainingSystem,
    make_system,
)
from repro.cluster import ClusterTopology, make_cluster
from repro.core import ExecutionPlan, ExecutionPlanner
from repro.graph import ComputationGraph, Operator, SpindleTask, TensorSpec
from repro.models import multitask_clip_tasks, ofasys_tasks, qwen_val_tasks
from repro.runtime import IterationResult, RuntimeEngine
from repro.service import (
    IncrementalPlanner,
    PlanCache,
    PlanService,
    ServiceStats,
    fingerprint_workload,
)

__version__ = "1.0.0"

__all__ = [
    "ClusterTopology",
    "ComputationGraph",
    "DeepSpeedSystem",
    "DistMMMTSystem",
    "ExecutionPlan",
    "ExecutionPlanner",
    "IncrementalPlanner",
    "IterationResult",
    "MegatronLMSystem",
    "Operator",
    "PlanCache",
    "PlanService",
    "RuntimeEngine",
    "ServiceStats",
    "SpindleOptimusSystem",
    "SpindleSeqSystem",
    "SpindleSystem",
    "SpindleTask",
    "TensorSpec",
    "TrainingSystem",
    "fingerprint_workload",
    "make_cluster",
    "make_system",
    "multitask_clip_tasks",
    "ofasys_tasks",
    "qwen_val_tasks",
    "__version__",
]
