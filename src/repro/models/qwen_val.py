"""QWen-VAL: the decoder-only LLM-centred MT MM workload (§5.1, Appendix C).

QWen-VAL combines a large ViT vision encoder and a Whisper-style audio encoder
with a decoder-only LLM, so the cross-modal module dominates the computation.
Three tasks are evaluated — vision-language (VL), audio-language (AL) and
vision-audio-language (VAL) — representing different modality combinations.
The default configuration has ≈ 9.25 B parameters; the 30 B and 70 B variants
used in the paper's larger-scale simulations (Appendix E) scale the LLM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.flops import embedding_flops, embedding_params
from repro.graph.ops import (
    FP16_BYTES,
    MODALITY_AUDIO,
    MODALITY_FUSION,
    MODALITY_TEXT,
    MODALITY_VISION,
    Operator,
    TensorSpec,
)
from repro.graph.task import SpindleTask
from repro.models.modules import EncoderConfig, encoder_stack, projection_module


@dataclass(frozen=True)
class QwenValConfig:
    """Architecture knobs of one QWen-VAL variant."""

    name: str
    llm_layers: int
    llm_hidden: int
    llm_seq_len: int
    vision_layers: int = 48
    vision_hidden: int = 1664
    vision_seq_len: int = 257
    audio_layers: int = 32
    audio_hidden: int = 1280
    audio_seq_len: int = 229
    vocab_size: int = 151_936


#: The ≈ 9.25 B parameter configuration used in the main experiments.
QWEN_VAL_10B = QwenValConfig(name="qwen-val-10b", llm_layers=32, llm_hidden=4096, llm_seq_len=512)
#: Larger-scale configurations for the Appendix E simulations.
QWEN_VAL_30B = QwenValConfig(name="qwen-val-30b", llm_layers=48, llm_hidden=7168, llm_seq_len=512)
QWEN_VAL_70B = QwenValConfig(name="qwen-val-70b", llm_layers=80, llm_hidden=8192, llm_seq_len=512)

QWEN_VAL_CONFIGS: dict[str, QwenValConfig] = {
    "10b": QWEN_VAL_10B,
    "30b": QWEN_VAL_30B,
    "70b": QWEN_VAL_70B,
}


@dataclass(frozen=True)
class QwenValTaskSpec:
    """One QWen-VAL task and the modalities it activates."""

    name: str
    modalities: tuple[str, ...]
    batch_size: int


QWEN_VAL_TASKS: tuple[QwenValTaskSpec, ...] = (
    QwenValTaskSpec("vision_language", (MODALITY_VISION,), 32),
    QwenValTaskSpec("audio_language", (MODALITY_AUDIO,), 64),
    QwenValTaskSpec("vision_audio_language", (MODALITY_VISION, MODALITY_AUDIO), 32),
)


def _encoder_config(config: QwenValConfig, modality: str) -> EncoderConfig:
    if modality == MODALITY_VISION:
        return EncoderConfig(
            MODALITY_VISION,
            num_layers=config.vision_layers,
            hidden_size=config.vision_hidden,
            seq_len=config.vision_seq_len,
        )
    if modality == MODALITY_AUDIO:
        return EncoderConfig(
            MODALITY_AUDIO,
            num_layers=config.audio_layers,
            hidden_size=config.audio_hidden,
            seq_len=config.audio_seq_len,
        )
    raise ValueError(f"QWen-VAL has no encoder for modality {modality!r}")


def build_qwen_val_task(
    spec: QwenValTaskSpec, config: QwenValConfig = QWEN_VAL_10B
) -> SpindleTask:
    """Build one QWen-VAL task: modality encoder(s) -> decoder-only LLM."""
    task = SpindleTask(spec.name, batch_size=spec.batch_size)

    llm_config = EncoderConfig(
        MODALITY_FUSION,
        num_layers=config.llm_layers,
        hidden_size=config.llm_hidden,
        seq_len=config.llm_seq_len,
    )
    llm_spec = llm_config.spec(spec.batch_size)
    embedding_op = Operator(
        name=f"{spec.name}.llm.embedding",
        op_type="llm_embedding",
        task=spec.name,
        modality=MODALITY_TEXT,
        input_spec=llm_spec,
        flops=embedding_flops(llm_spec, config.vocab_size),
        param_bytes=embedding_params(config.vocab_size, config.llm_hidden) * FP16_BYTES,
        activation_bytes=float(llm_spec.bytes),
        param_key=f"{config.name}.llm.embedding",
    )
    task.add_module(
        "llm",
        [embedding_op]
        + encoder_stack(
            task=spec.name,
            module_name="llm",
            op_type="llm_decoder_layer",
            config=llm_config,
            batch=spec.batch_size,
            shared_scope=f"{config.name}.llm",
        ),
    )

    llm_activation = TensorSpec(
        batch=spec.batch_size, seq_len=config.llm_seq_len, hidden=config.llm_hidden
    ).bytes
    for modality in spec.modalities:
        encoder_cfg = _encoder_config(config, modality)
        encoder_module = f"{modality}_encoder"
        task.add_module(
            encoder_module,
            encoder_stack(
                task=spec.name,
                module_name=encoder_module,
                op_type=f"{modality}_layer",
                config=encoder_cfg,
                batch=spec.batch_size,
                shared_scope=f"{config.name}.{modality}",
            ),
        )
        bridge_module = f"{modality}_bridge"
        task.add_module(
            bridge_module,
            projection_module(
                task=spec.name,
                module_name=bridge_module,
                modality=modality,
                in_spec=encoder_cfg.spec(spec.batch_size),
                out_dim=config.llm_hidden,
                shared_scope=f"{config.name}.{modality}",
            ),
        )
        task.add_flow(encoder_module, bridge_module)
        task.add_flow(bridge_module, "llm", volume_bytes=llm_activation)

    # Text tokens feed the LLM directly (no encoder), so a text-only module is
    # not instantiated; text participates through the LLM itself.
    _ = MODALITY_TEXT
    return task


def qwen_val_tasks(
    num_tasks: int = 3, size: str = "10b"
) -> list[SpindleTask]:
    """The QWen-VAL tasks for a given model size ('10b', '30b' or '70b')."""
    if size not in QWEN_VAL_CONFIGS:
        raise ValueError(f"Unknown QWen-VAL size {size!r}; expected one of "
                         f"{sorted(QWEN_VAL_CONFIGS)}")
    if not 1 <= num_tasks <= len(QWEN_VAL_TASKS):
        raise ValueError(
            f"num_tasks must be between 1 and {len(QWEN_VAL_TASKS)}, got {num_tasks}"
        )
    config = QWEN_VAL_CONFIGS[size]
    return [build_qwen_val_task(spec, config) for spec in QWEN_VAL_TASKS[:num_tasks]]
