"""The MT MM model zoo used for evaluation: Multitask-CLIP, OFASys, QWen-VAL."""

from repro.models.modules import (
    EncoderConfig,
    contrastive_module,
    encoder_stack,
    projection_module,
)
from repro.models.multitask_clip import (
    CLIP_EMBED_DIM,
    CLIP_ENCODERS,
    CLIP_TASKS,
    ClipTaskSpec,
    build_clip_task,
    multitask_clip_tasks,
)
from repro.models.ofasys import (
    OFASYS_ADAPTORS,
    OFASYS_TASKS,
    OFASysTaskSpec,
    build_ofasys_task,
    ofasys_tasks,
)
from repro.models.qwen_val import (
    QWEN_VAL_10B,
    QWEN_VAL_30B,
    QWEN_VAL_70B,
    QWEN_VAL_CONFIGS,
    QWEN_VAL_TASKS,
    QwenValConfig,
    QwenValTaskSpec,
    build_qwen_val_task,
    qwen_val_tasks,
)
from repro.models.registry import (
    MODEL_REGISTRY,
    ModelInfo,
    get_model_info,
    get_model_tasks,
)

__all__ = [
    "CLIP_EMBED_DIM",
    "CLIP_ENCODERS",
    "CLIP_TASKS",
    "ClipTaskSpec",
    "EncoderConfig",
    "MODEL_REGISTRY",
    "ModelInfo",
    "OFASYS_ADAPTORS",
    "OFASYS_TASKS",
    "OFASysTaskSpec",
    "QWEN_VAL_10B",
    "QWEN_VAL_30B",
    "QWEN_VAL_70B",
    "QWEN_VAL_CONFIGS",
    "QWEN_VAL_TASKS",
    "QwenValConfig",
    "QwenValTaskSpec",
    "build_clip_task",
    "build_ofasys_task",
    "build_qwen_val_task",
    "contrastive_module",
    "encoder_stack",
    "get_model_info",
    "get_model_tasks",
    "multitask_clip_tasks",
    "ofasys_tasks",
    "projection_module",
    "qwen_val_tasks",
]
