"""Multitask-CLIP: the ImageBind-style multi-task contrastive workload (§5.1).

Six modality encoders (text, vision, audio, depth, thermal, motion) following
the ImageBind configuration, and ten contrastive-learning tasks, each pairing
two modalities.  The cross-modal module (the contrastive loss) is much lighter
than the modality encoders — the workload class in which most computation
happens inside the towers.  Model size ≈ 1.2 B parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.ops import (
    MODALITY_AUDIO,
    MODALITY_DEPTH,
    MODALITY_MOTION,
    MODALITY_TEXT,
    MODALITY_THERMAL,
    MODALITY_VISION,
)
from repro.graph.task import SpindleTask
from repro.models.modules import EncoderConfig, contrastive_module, encoder_stack, projection_module

#: ImageBind-style modality encoder configurations.
CLIP_ENCODERS: dict[str, EncoderConfig] = {
    MODALITY_TEXT: EncoderConfig(MODALITY_TEXT, num_layers=24, hidden_size=1024, seq_len=77),
    MODALITY_VISION: EncoderConfig(MODALITY_VISION, num_layers=32, hidden_size=1280, seq_len=257),
    MODALITY_AUDIO: EncoderConfig(MODALITY_AUDIO, num_layers=12, hidden_size=768, seq_len=229),
    MODALITY_DEPTH: EncoderConfig(MODALITY_DEPTH, num_layers=12, hidden_size=768, seq_len=257),
    MODALITY_THERMAL: EncoderConfig(MODALITY_THERMAL, num_layers=12, hidden_size=768, seq_len=197),
    MODALITY_MOTION: EncoderConfig(MODALITY_MOTION, num_layers=6, hidden_size=512, seq_len=64),
}

#: Shared embedding dimension of the contrastive space.
CLIP_EMBED_DIM = 1024


@dataclass(frozen=True)
class ClipTaskSpec:
    """A contrastive task pairing two modalities with a given batch size."""

    name: str
    modality_a: str
    modality_b: str
    batch_size: int


#: The ten multi-modal contrastive tasks used for evaluation (Appendix C).
#: Per-task global batch sizes differ, which is one source of the inter-task
#: workload heterogeneity shown in Fig. 1.
CLIP_TASKS: tuple[ClipTaskSpec, ...] = (
    ClipTaskSpec("task01_text_audio", MODALITY_TEXT, MODALITY_AUDIO, 64),
    ClipTaskSpec("task02_vision_depth", MODALITY_VISION, MODALITY_DEPTH, 32),
    ClipTaskSpec("task03_audio_thermal", MODALITY_AUDIO, MODALITY_THERMAL, 64),
    ClipTaskSpec("task04_motion_thermal", MODALITY_MOTION, MODALITY_THERMAL, 128),
    ClipTaskSpec("task05_vision_text", MODALITY_VISION, MODALITY_TEXT, 64),
    ClipTaskSpec("task06_audio_vision", MODALITY_AUDIO, MODALITY_VISION, 32),
    ClipTaskSpec("task07_depth_text", MODALITY_DEPTH, MODALITY_TEXT, 64),
    ClipTaskSpec("task08_thermal_text", MODALITY_THERMAL, MODALITY_TEXT, 64),
    ClipTaskSpec("task09_motion_vision", MODALITY_MOTION, MODALITY_VISION, 128),
    ClipTaskSpec("task10_depth_thermal", MODALITY_DEPTH, MODALITY_THERMAL, 32),
)


def build_clip_task(spec: ClipTaskSpec) -> SpindleTask:
    """Build one Multitask-CLIP task: two encoder towers + contrastive loss."""
    task = SpindleTask(spec.name, batch_size=spec.batch_size)
    for modality in (spec.modality_a, spec.modality_b):
        encoder_cfg = CLIP_ENCODERS[modality]
        encoder_module = f"{modality}_encoder"
        task.add_module(
            encoder_module,
            encoder_stack(
                task=spec.name,
                module_name=encoder_module,
                op_type=f"{modality}_layer",
                config=encoder_cfg,
                batch=spec.batch_size,
                shared_scope=f"clip.{modality}",
            ),
        )
        projection_module_name = f"{modality}_projection"
        task.add_module(
            projection_module_name,
            projection_module(
                task=spec.name,
                module_name=projection_module_name,
                modality=modality,
                in_spec=encoder_cfg.spec(spec.batch_size),
                out_dim=CLIP_EMBED_DIM,
                shared_scope=f"clip.{modality}",
            ),
        )
        task.add_flow(encoder_module, projection_module_name)

    task.add_module(
        "contrastive_loss",
        contrastive_module(spec.name, batch=spec.batch_size, embed_dim=CLIP_EMBED_DIM),
    )
    task.add_flow(f"{spec.modality_a}_projection", "contrastive_loss")
    task.add_flow(f"{spec.modality_b}_projection", "contrastive_loss")
    return task


def multitask_clip_tasks(num_tasks: int = 10) -> list[SpindleTask]:
    """The first ``num_tasks`` Multitask-CLIP tasks (4, 7 and 10 in the paper)."""
    if not 1 <= num_tasks <= len(CLIP_TASKS):
        raise ValueError(
            f"num_tasks must be between 1 and {len(CLIP_TASKS)}, got {num_tasks}"
        )
    return [build_clip_task(spec) for spec in CLIP_TASKS[:num_tasks]]
