"""Reusable building blocks for the MT MM model zoo.

Models are described purely analytically: a module is a chain of
:class:`~repro.graph.ops.Operator` objects whose FLOP, parameter and activation
numbers come from the cost model.  That is all the execution planner and the
simulated runtime need — weights never materialise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.flops import (
    LayerConfig,
    make_contrastive_loss_op,
    make_projection_op,
    make_transformer_layer_op,
)
from repro.graph.ops import Operator, TensorSpec


@dataclass(frozen=True)
class EncoderConfig:
    """Architecture of one modality encoder (a stack of transformer layers)."""

    modality: str
    num_layers: int
    hidden_size: int
    seq_len: int
    ffn_mult: float = 4.0

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ValueError("num_layers must be positive")
        if self.seq_len <= 0:
            raise ValueError("seq_len must be positive")

    @property
    def layer_config(self) -> LayerConfig:
        return LayerConfig(hidden_size=self.hidden_size, ffn_mult=self.ffn_mult)

    def spec(self, batch: int) -> TensorSpec:
        return TensorSpec(batch=batch, seq_len=self.seq_len, hidden=self.hidden_size)


def encoder_stack(
    task: str,
    module_name: str,
    op_type: str,
    config: EncoderConfig,
    batch: int,
    shared_scope: str | None,
) -> list[Operator]:
    """Build the operator chain of one encoder for one task.

    ``shared_scope`` names the parameter scope shared across tasks (e.g.
    ``"clip.vision"``); layer ``i`` of every task then carries the parameter
    key ``"<scope>.layer<i>"`` so the runtime engine synchronises gradients of
    the shared encoder across the tasks that activate it.
    """
    spec = config.spec(batch)
    layer_config = config.layer_config
    ops = []
    for layer in range(config.num_layers):
        param_key = f"{shared_scope}.layer{layer}" if shared_scope else None
        ops.append(
            make_transformer_layer_op(
                name=f"{task}.{module_name}.layer{layer}",
                op_type=op_type,
                task=task,
                modality=config.modality,
                spec=spec,
                config=layer_config,
                param_key=param_key,
            )
        )
    return ops


def projection_module(
    task: str,
    module_name: str,
    modality: str,
    in_spec: TensorSpec,
    out_dim: int,
    shared_scope: str | None,
) -> list[Operator]:
    """A single-operator projection (modality adaptor / embedding head)."""
    param_key = f"{shared_scope}.projection" if shared_scope else None
    pooled = TensorSpec(batch=in_spec.batch, seq_len=1, hidden=in_spec.hidden)
    return [
        make_projection_op(
            name=f"{task}.{module_name}",
            op_type=f"{modality}_projection",
            task=task,
            modality=modality,
            spec=pooled,
            out_dim=out_dim,
            param_key=param_key,
        )
    ]


def contrastive_module(task: str, batch: int, embed_dim: int) -> list[Operator]:
    """The contrastive-loss cross-modal module of CLIP-style tasks."""
    return [
        make_contrastive_loss_op(
            name=f"{task}.contrastive_loss",
            task=task,
            batch=batch,
            embed_dim=embed_dim,
        )
    ]
