"""OFASys: the unified encoder-decoder MT MM workload (§5.1, Appendix C).

OFASys couples lightweight modality adaptors with one shared encoder-decoder
language model used as the cross-modal module for every task, so the
cross-modal workload is comparable to (or larger than) the adaptors.  The text
adaptor in particular is very light, which is why tower-level parallelisation
strategies (DistMM-MT) gain little on this workload.  Model size ≈ 0.66 B
parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.ops import (
    MODALITY_AUDIO,
    MODALITY_FUSION,
    MODALITY_TEXT,
    MODALITY_VISION,
    TensorSpec,
)
from repro.graph.task import SpindleTask
from repro.models.modules import EncoderConfig, encoder_stack, projection_module

#: Modality adaptors: ViT-B-style encoders for vision/audio, tiny text adaptor.
OFASYS_ADAPTORS: dict[str, EncoderConfig] = {
    MODALITY_VISION: EncoderConfig(MODALITY_VISION, num_layers=12, hidden_size=768, seq_len=257),
    MODALITY_AUDIO: EncoderConfig(MODALITY_AUDIO, num_layers=12, hidden_size=768, seq_len=229),
    MODALITY_TEXT: EncoderConfig(MODALITY_TEXT, num_layers=2, hidden_size=768, seq_len=128),
}

#: The unified encoder-decoder LM used as the cross-modal module.
OFASYS_LM_HIDDEN = 1280
OFASYS_LM_ENCODER_LAYERS = 12
OFASYS_LM_DECODER_LAYERS = 12
OFASYS_LM_SEQ_LEN = 512


@dataclass(frozen=True)
class OFASysTaskSpec:
    """One OFASys multi-modal task: input modality + shared LM."""

    name: str
    modality: str
    batch_size: int


#: Seven multi-modal tasks selected for evaluation (Appendix C).
OFASYS_TASKS: tuple[OFASysTaskSpec, ...] = (
    OFASysTaskSpec("image_captioning", MODALITY_VISION, 32),
    OFASysTaskSpec("speech_recognition", MODALITY_AUDIO, 32),
    OFASysTaskSpec("text_summarization", MODALITY_TEXT, 64),
    OFASysTaskSpec("visual_grounding", MODALITY_VISION, 16),
    OFASysTaskSpec("text_to_sql", MODALITY_TEXT, 64),
    OFASysTaskSpec("sound_event_detection", MODALITY_AUDIO, 16),
    OFASysTaskSpec("visual_question_answering", MODALITY_VISION, 32),
)


def _lm_module(task: str, role: str, num_layers: int, batch: int) -> list:
    config = EncoderConfig(
        MODALITY_FUSION,
        num_layers=num_layers,
        hidden_size=OFASYS_LM_HIDDEN,
        seq_len=OFASYS_LM_SEQ_LEN,
    )
    return encoder_stack(
        task=task,
        module_name=f"lm_{role}",
        op_type=f"lm_{role}_layer",
        config=config,
        batch=batch,
        shared_scope=f"ofasys.lm.{role}",
    )


def build_ofasys_task(spec: OFASysTaskSpec) -> SpindleTask:
    """Build one OFASys task: modality adaptor -> LM encoder -> LM decoder."""
    task = SpindleTask(spec.name, batch_size=spec.batch_size)
    adaptor_cfg = OFASYS_ADAPTORS[spec.modality]

    adaptor_module = f"{spec.modality}_adaptor"
    task.add_module(
        adaptor_module,
        encoder_stack(
            task=spec.name,
            module_name=adaptor_module,
            op_type=f"{spec.modality}_adaptor_layer",
            config=adaptor_cfg,
            batch=spec.batch_size,
            shared_scope=f"ofasys.adaptor.{spec.modality}",
        ),
    )

    bridge_module = f"{spec.modality}_bridge"
    task.add_module(
        bridge_module,
        projection_module(
            task=spec.name,
            module_name=bridge_module,
            modality=spec.modality,
            in_spec=adaptor_cfg.spec(spec.batch_size),
            out_dim=OFASYS_LM_HIDDEN,
            shared_scope=f"ofasys.adaptor.{spec.modality}",
        ),
    )

    task.add_module(
        "lm_encoder", _lm_module(spec.name, "encoder", OFASYS_LM_ENCODER_LAYERS, spec.batch_size)
    )
    task.add_module(
        "lm_decoder", _lm_module(spec.name, "decoder", OFASYS_LM_DECODER_LAYERS, spec.batch_size)
    )

    lm_activation = TensorSpec(
        batch=spec.batch_size, seq_len=OFASYS_LM_SEQ_LEN, hidden=OFASYS_LM_HIDDEN
    ).bytes
    task.add_flow(adaptor_module, bridge_module)
    task.add_flow(bridge_module, "lm_encoder", volume_bytes=lm_activation)
    task.add_flow("lm_encoder", "lm_decoder")
    return task


def ofasys_tasks(num_tasks: int = 7) -> list[SpindleTask]:
    """The first ``num_tasks`` OFASys tasks (4 and 7 in the paper)."""
    if not 1 <= num_tasks <= len(OFASYS_TASKS):
        raise ValueError(
            f"num_tasks must be between 1 and {len(OFASYS_TASKS)}, got {num_tasks}"
        )
    return [build_ofasys_task(spec) for spec in OFASYS_TASKS[:num_tasks]]
