"""Model registry: the MT MM workloads of Tab. 1b by name."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graph.builder import MultiTaskGraphBuilder
from repro.graph.ops import FP16_BYTES
from repro.graph.task import SpindleTask
from repro.models.multitask_clip import CLIP_TASKS, multitask_clip_tasks
from repro.models.ofasys import OFASYS_TASKS, ofasys_tasks
from repro.models.qwen_val import QWEN_VAL_TASKS, qwen_val_tasks


@dataclass(frozen=True)
class ModelInfo:
    """Descriptive metadata of one workload (the rows of Tab. 1b)."""

    name: str
    max_tasks: int
    num_modalities: int
    cross_modal_module: str
    builder: Callable[..., list[SpindleTask]]

    def tasks(self, num_tasks: int | None = None, **kwargs) -> list[SpindleTask]:
        if num_tasks is None:
            num_tasks = self.max_tasks
        return self.builder(num_tasks, **kwargs)

    def parameter_count(self, num_tasks: int | None = None, **kwargs) -> float:
        """Deduplicated parameter count of the model (shared weights once)."""
        tasks = self.tasks(num_tasks, **kwargs)
        graph = MultiTaskGraphBuilder(tasks).build()
        return graph.total_param_bytes(deduplicate_shared=True) / FP16_BYTES


MODEL_REGISTRY: dict[str, ModelInfo] = {
    "multitask-clip": ModelInfo(
        name="Multitask-CLIP",
        max_tasks=len(CLIP_TASKS),
        num_modalities=6,
        cross_modal_module="Contrastive Loss",
        builder=multitask_clip_tasks,
    ),
    "ofasys": ModelInfo(
        name="OFASys",
        max_tasks=len(OFASYS_TASKS),
        num_modalities=6,
        cross_modal_module="Enc-Dec LLM",
        builder=ofasys_tasks,
    ),
    "qwen-val": ModelInfo(
        name="QWen-VAL",
        max_tasks=len(QWEN_VAL_TASKS),
        num_modalities=3,
        cross_modal_module="Dec-only LLM",
        builder=qwen_val_tasks,
    ),
}


def get_model_info(name: str) -> ModelInfo:
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(
            f"Unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}"
        )
    return MODEL_REGISTRY[key]


def get_model_tasks(name: str, num_tasks: int | None = None, **kwargs) -> list[SpindleTask]:
    """Build the task list of a registered workload."""
    return get_model_info(name).tasks(num_tasks, **kwargs)
