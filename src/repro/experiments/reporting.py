"""Plain-text reporting helpers used by the benchmark harness.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that formatting in one place.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.result import BenchResult
    from repro.elastic.runner import ElasticRunResult

#: Directory (relative to the working directory) where benchmark modules drop
#: their paper-style tables; override with the ``REPRO_REPORT_DIR`` variable.
DEFAULT_REPORT_DIR = "reports"


def format_milliseconds(seconds: float) -> str:
    return f"{seconds * 1e3:.1f} ms"


def format_speedup(speedup: float) -> str:
    return f"{speedup:.2f}x"


def format_gib(num_bytes: float) -> str:
    return f"{num_bytes / 1024**3:.1f} GiB"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"Row has {len(row)} cells but the table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a GitHub-flavoured markdown table (used to build EXPERIMENTS.md)."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def write_report(name: str, text: str, directory: str | os.PathLike | None = None) -> Path:
    """Persist a paper-style table/series under the reports directory.

    The benchmark harness both prints every table and writes it here so the
    regenerated rows survive pytest's output capturing.
    """
    base = Path(directory or os.environ.get("REPRO_REPORT_DIR", DEFAULT_REPORT_DIR))
    base.mkdir(parents=True, exist_ok=True)
    path = base / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def render_bench_result(result: "BenchResult") -> str:
    """Render a structured :class:`~repro.bench.result.BenchResult` as a table.

    This is the human-readable view of the same data serialized to
    ``BENCH_<name>.json`` — the benchmark runner writes both, so the tables
    under ``reports/`` and the machine-readable results can never diverge.
    """
    rows = []
    for name in sorted(result.metrics):
        metric = result.metrics[name]
        if metric.regression_threshold is None:
            gate = "info"
        else:
            gate = f"±{metric.regression_threshold * 100:.0f}%"
        rows.append(
            [
                name,
                f"{metric.value:.4g}",
                metric.unit,
                "higher" if metric.higher_is_better else "lower",
                gate,
            ]
        )
    title = f"BENCH {result.name}"
    if result.stage:
        title += f" [{result.stage}]"
    if result.workloads:
        title += f" ({', '.join(result.workloads)})"
    return format_table(["metric", "value", "unit", "better", "gate"], rows, title=title)


def render_elastic_result(result: "ElasticRunResult") -> str:
    """Render an elastic run as paper-style tables (events, then totals).

    Deliberately built only from the run's *deterministic* quantities (the
    charged replan model, the migration cost model, simulated iteration
    times), so identical seeds render byte-identical text — the reproduction
    contract of ``repro elastic``.
    """
    event_rows = []
    for outcome in result.outcomes:
        labels = ", ".join(event.describe() for event in outcome.events)
        if outcome.replanned:
            action = "replan (forced)" if outcome.forced else "replan"
            if outcome.replan is not None and outcome.replan.cache_hit:
                action += " [cache hit]"
        else:
            action = "keep plan"
        replan_s = outcome.replan.charged_seconds if outcome.replan else 0.0
        migration = outcome.migration
        event_rows.append(
            [
                outcome.iteration,
                labels,
                outcome.num_devices,
                action,
                f"{replan_s * 1e3:.1f} ms",
                format_gib(migration.total_bytes) if migration else "-",
                f"{migration.total_seconds * 1e3:.1f} ms" if migration else "-",
                f"{outcome.stay_slowdown:.2f}x"
                if not outcome.replanned
                else "-",
            ]
        )
    events_table = format_table(
        [
            "iter",
            "events",
            "#GPUs",
            "action",
            "replan",
            "migrated",
            "migration",
            "degraded",
        ],
        event_rows,
        title=f"elastic events ({result.scenario_name}, policy={result.policy})",
    )
    totals = format_table(
        ["metric", "value"],
        [
            ["iterations", result.total_iterations],
            ["no-failure run", f"{result.baseline_seconds:.2f} s"],
            ["elastic training time", f"{result.training_seconds:.2f} s"],
            ["replan + migration overhead", f"{result.overhead_seconds:.3f} s"],
            ["elastic total", f"{result.total_seconds:.2f} s"],
            ["cumulative slowdown", f"{result.cumulative_slowdown:.3f}x"],
            ["replans", result.replan_count],
            ["plan-cache hits", result.cache_hits],
            ["migrated state", format_gib(result.migration_bytes)],
            ["migration time", f"{result.migration_seconds:.3f} s"],
            ["curve reuse rate", f"{result.curve_reuse_rate:.2f}"],
        ],
        title="elastic run summary",
    )
    return events_table + "\n\n" + totals


def format_series(
    points: Sequence[tuple[float, float]],
    x_label: str = "x",
    y_label: str = "y",
    max_points: int = 20,
) -> str:
    """Render a (sub-sampled) numeric series as rows (used for Fig. 9/13 curves)."""
    if not points:
        return f"{x_label}: (empty series)"
    step = max(1, len(points) // max_points)
    sampled = list(points)[::step]
    rows = [(f"{x:.4g}", f"{y:.4g}") for x, y in sampled]
    return format_table([x_label, y_label], rows)
