"""Workload registry: the model x task-count x cluster-size grid of §5.

Every experiment in the paper is a combination of an MT MM model, a number of
tasks and a cluster size.  :class:`WorkloadSpec` captures one such combination
and knows how to build its tasks and its cluster; the module-level constants
enumerate the exact grids used by each figure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.topology import ClusterTopology, make_cluster
from repro.graph.task import SpindleTask
from repro.models.registry import get_model_tasks


@dataclass(frozen=True)
class WorkloadSpec:
    """One experimental workload: model, task count and cluster size."""

    model: str
    num_tasks: int
    num_gpus: int
    model_kwargs: dict = field(default_factory=dict, hash=False, compare=False)

    @property
    def name(self) -> str:
        suffix = "".join(f"-{k}{v}" for k, v in sorted(self.model_kwargs.items()))
        return f"{self.model}-{self.num_tasks}tasks-{self.num_gpus}gpus{suffix}"

    def tasks(self) -> list[SpindleTask]:
        return get_model_tasks(self.model, self.num_tasks, **self.model_kwargs)

    def cluster(self) -> ClusterTopology:
        return make_cluster(self.num_gpus)

    def describe(self) -> str:
        nodes = max(1, self.num_gpus // 8)
        return (
            f"{self.model} with {self.num_tasks} tasks on {self.num_gpus} GPUs "
            f"({nodes} node{'s' if nodes > 1 else ''})"
        )


def clip_workload(num_tasks: int, num_gpus: int) -> WorkloadSpec:
    return WorkloadSpec(model="multitask-clip", num_tasks=num_tasks, num_gpus=num_gpus)


def ofasys_workload(num_tasks: int, num_gpus: int) -> WorkloadSpec:
    return WorkloadSpec(model="ofasys", num_tasks=num_tasks, num_gpus=num_gpus)


def qwen_val_workload(num_gpus: int, size: str = "10b", num_tasks: int = 3) -> WorkloadSpec:
    return WorkloadSpec(
        model="qwen-val",
        num_tasks=num_tasks,
        num_gpus=num_gpus,
        model_kwargs={"size": size},
    )


#: Fig. 8 — end-to-end comparison grid.  The paper uses clusters of 8/16/32
#: GPUs for Multitask-CLIP and OFASys and 32/64 GPUs for QWen-VAL.
FIG8_CLIP_TASK_COUNTS = (4, 7, 10)
FIG8_CLIP_CLUSTERS = (8, 16, 32)
FIG8_OFASYS_TASK_COUNTS = (4, 7)
FIG8_OFASYS_CLUSTERS = (8, 16, 32)
FIG8_QWEN_CLUSTERS = (32, 64)


def fig8_workloads() -> list[WorkloadSpec]:
    """The full Fig. 8 grid."""
    workloads: list[WorkloadSpec] = []
    for tasks in FIG8_CLIP_TASK_COUNTS:
        for gpus in FIG8_CLIP_CLUSTERS:
            workloads.append(clip_workload(tasks, gpus))
    for tasks in FIG8_OFASYS_TASK_COUNTS:
        for gpus in FIG8_OFASYS_CLUSTERS:
            workloads.append(ofasys_workload(tasks, gpus))
    for gpus in FIG8_QWEN_CLUSTERS:
        workloads.append(qwen_val_workload(gpus))
    return workloads


#: Fig. 9 / Fig. 15 case-study workload: Multitask-CLIP, 4 tasks, 16 GPUs.
CASE_STUDY_WORKLOAD = clip_workload(4, 16)

#: Fig. 10 time-breakdown workloads.
FIG10_WORKLOADS = (
    clip_workload(10, 8),
    clip_workload(10, 16),
    ofasys_workload(7, 8),
    ofasys_workload(7, 16),
    qwen_val_workload(32),
    qwen_val_workload(64),
)

#: Fig. 11 optimality-analysis workloads.
FIG11_WORKLOADS = tuple(
    clip_workload(tasks, gpus) for gpus in (16, 32) for tasks in (4, 7, 10)
)

#: Fig. 12 planner-cost grid.
FIG12_WORKLOADS = tuple(
    [clip_workload(t, g) for t in (4, 7, 10) for g in (8, 16, 32, 64)]
    + [ofasys_workload(t, g) for t in (4, 7) for g in (8, 16, 32, 64)]
    + [qwen_val_workload(g) for g in (8, 16, 32, 64)]
)

#: Fig. 14 single-task multi-modal workloads.
FIG14_WORKLOADS = tuple(clip_workload(1, gpus) for gpus in (8, 16, 32))

#: Tab. 2 larger-scale simulated workloads (256 GPUs).
TAB2_WORKLOADS = (
    qwen_val_workload(256, size="30b"),
    qwen_val_workload(256, size="70b"),
)


def planning_request_stream(
    tasks: Sequence[SpindleTask],
    num_requests: int,
    num_unique: int,
    seed: int = 0,
) -> tuple[list[tuple[SpindleTask, ...]], int]:
    """A shuffled planning-request stream for plan-service experiments.

    Returns ``num_requests`` task sets drawn from ``num_unique`` distinct
    workloads, plus the effective unique count.  Unique workloads are nested
    prefixes of the task list — every set shares tasks with the others, the
    overlapping-request pattern of dynamic workloads — and each appears at
    least once; the rest of the stream repeats them uniformly at random.
    Each unique workload is a single tuple object reused across its repeats,
    matching how a serving tier replays interned requests.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    num_unique = max(1, min(num_unique, len(tasks), num_requests))
    unique = [tuple(tasks[: len(tasks) - i]) for i in range(num_unique)]
    rng = random.Random(seed)
    stream = list(unique)
    stream.extend(rng.choice(unique) for _ in range(num_requests - len(unique)))
    rng.shuffle(stream)
    return stream, num_unique
