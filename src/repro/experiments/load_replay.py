"""Flash-crowd load replay: offered-rate arrival schedules, closed clients,
and a deterministic virtual-time fleet replay.

The fleet benchmark needs two things a single wall-clock run can't give on a
small CI box: request volumes 10–100x beyond ``bench_service_throughput``,
and a shard-scaling number that is *deterministic* (0.0% baseline drift)
despite the host's GIL and core count.  This module supplies both with a
two-phase protocol:

**Phase 1 — real execution.**  A seeded arrival schedule (steady or
flash-crowd) is replayed against a live :class:`~repro.service.fleet.
PlanServiceFleet` by multi-threaded closed-loop clients.  Every response
latency is recorded through the shared :class:`~repro.obs.slo.SloTracker`
(p50/p95/p99 land in the BENCH schema via ``to_bench_metrics``), and every
unique fingerprint's served payload is verified byte-for-byte against a
single uncached :class:`~repro.core.planner.ExecutionPlanner` reference
(canonically, i.e. minus the wall-clock ``planning_report``).  Wall-clock
throughput from this phase is machine-dependent and therefore
*informational*.

**Phase 2 — virtual-time replay.**  The same arrival schedule and routing
are replayed through a discrete-event queueing model: each shard is a FIFO
pool of ``num_workers`` servers, the first arrival of a fingerprint pays
the solve cost, concurrent duplicates coalesce onto the leader
(single-flight), and later arrivals pay the cache-hit cost.  Costs come
from a fixed document-derived model (solve cost scales with the plan
payload's size, which is deterministic for a given workload), so simulated
makespans, throughputs and latency percentiles are exact functions of
(workload, seed, rate, shard count) — the gated 1→4 shard scaling ratio
reproduces to the digit on any machine.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import wait
from dataclasses import dataclass, field
from random import Random

from repro.core.planner import ExecutionPlanner
from repro.experiments.harness import _canonical_plan_payload
from repro.experiments.workloads import WorkloadSpec
from repro.obs.slo import SloTracker
from repro.obs.tracer import get_tracer
from repro.service.fleet import PlanServiceFleet, shard_for_fingerprint

SCENARIOS = ("steady", "flash-crowd")

#: Virtual-time cost model (milliseconds).  The solve cost scales with the
#: serialized plan's size — a deterministic stand-in for planning work that
#: grows with plan complexity the way the real planner's runtime does — and
#: the hit cost is a flat cache lookup.  Fixed constants, never measured, so
#: phase-2 results carry zero wall-clock noise.
SOLVE_COST_BASE_MS = 1.0
SOLVE_COST_MS_PER_KIB = 0.25
HIT_COST_MS = 0.02


class LoadReplayError(Exception):
    """Raised for invalid replay configuration (bad scenario, rate, shards)."""


def fleet_request_stream(
    tasks,
    num_requests: int,
    num_unique: int,
    seed: int = 0,
) -> tuple[list[tuple], int]:
    """A fleet-scale planning-request stream with up to ``n*(n+1)/2`` uniques.

    :func:`~repro.experiments.workloads.planning_request_stream` draws unique
    workloads from nested prefixes, capping uniqueness at ``len(tasks)`` —
    too few fingerprints to balance across 8 shards.  This generator widens
    the pool to every contiguous task window (largest windows first, so the
    stream still leads with the full workload), keeping the
    overlapping-request pattern while giving routing enough distinct
    fingerprints to spread.  Each unique workload is one interned tuple
    reused across its repeats, exactly like the narrower generator.
    """
    if num_requests <= 0:
        raise LoadReplayError("num_requests must be positive")
    windows: list[tuple] = []
    for width in range(len(tasks), 0, -1):
        for start in range(0, len(tasks) - width + 1):
            windows.append(tuple(tasks[start : start + width]))
    num_unique = max(1, min(num_unique, len(windows), num_requests))
    unique = windows[:num_unique]
    rng = Random(seed)
    stream = list(unique)
    stream.extend(rng.choice(unique) for _ in range(num_requests - len(unique)))
    rng.shuffle(stream)
    return stream, num_unique


def arrival_schedule(
    num_requests: int,
    rate: float,
    scenario: str = "flash-crowd",
    seed: int = 0,
    burst_factor: float = 8.0,
) -> list[float]:
    """Seeded open-loop arrival times (seconds) at ``rate`` requests/second.

    ``steady`` spaces arrivals exponentially around ``1/rate`` (a Poisson
    process).  ``flash-crowd`` splits the stream into warmup / crowd /
    cooldown thirds, with the middle third arriving at ``burst_factor *
    rate`` — the replan stampede a topology change triggers.  Deterministic
    for a given seed.
    """
    if scenario not in SCENARIOS:
        raise LoadReplayError(
            f"Unknown scenario {scenario!r}; expected one of {SCENARIOS}"
        )
    if rate <= 0:
        raise LoadReplayError("rate must be positive")
    rng = Random(seed)
    times: list[float] = []
    clock = 0.0
    third = max(1, num_requests // 3)
    for index in range(num_requests):
        current_rate = rate
        if scenario == "flash-crowd" and third <= index < 2 * third:
            current_rate = rate * burst_factor
        clock += rng.expovariate(current_rate)
        times.append(clock)
    return times


@dataclass
class SimulatedShardRun:
    """Virtual-time replay outcome for one shard count."""

    num_shards: int
    makespan_seconds: float
    throughput_rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    coalesced: int
    hits: int
    solves: int


@dataclass
class LoadReplayResult:
    """Both phases of one replay campaign."""

    scenario: str
    num_requests: int
    num_unique: int
    offered_rate: float
    num_clients: int
    real_shards: int
    # --- phase 1: live fleet (wall-clock; informational) ---
    wall_seconds: float
    real_rps: float
    failed_requests: int
    payload_matches: int
    payload_mismatches: int
    reference_solve_ms: float
    shard_census: list[int] = field(default_factory=list)
    # --- phase 2: virtual-time replay (deterministic; gated) ---
    simulated: dict[int, SimulatedShardRun] = field(default_factory=dict)

    @property
    def payload_match_rate(self) -> float:
        total = self.payload_matches + self.payload_mismatches
        return self.payload_matches / total if total else 0.0

    def scaling_ratio(self, low: int = 1, high: int = 4) -> float:
        """Simulated throughput ratio between two shard counts."""
        if low not in self.simulated or high not in self.simulated:
            raise LoadReplayError(
                f"scaling_ratio({low}, {high}) needs both shard counts simulated"
            )
        return (
            self.simulated[high].throughput_rps
            / self.simulated[low].throughput_rps
        )

    def as_rows(self) -> list[list[str]]:
        rows = [
            ["scenario", self.scenario],
            ["requests", f"{self.num_requests} ({self.num_unique} unique)"],
            ["offered rate", f"{self.offered_rate:.0f} req/s"],
            ["closed clients", str(self.num_clients)],
            ["real fleet", f"{self.real_shards} shards, {self.wall_seconds:.3f} s"],
            ["real throughput", f"{self.real_rps:.0f} req/s (wall-clock)"],
            [
                "payload match",
                f"{self.payload_matches}"
                f"/{self.payload_matches + self.payload_mismatches}",
            ],
            ["failed requests", str(self.failed_requests)],
        ]
        for shards in sorted(self.simulated):
            run = self.simulated[shards]
            rows.append(
                [
                    f"simulated {shards} shard(s)",
                    f"{run.throughput_rps:.0f} req/s, "
                    f"p50 {run.p50_ms:.2f} / p95 {run.p95_ms:.2f} / "
                    f"p99 {run.p99_ms:.2f} ms",
                ]
            )
        return rows


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def simulate_fleet(
    arrivals: list[float],
    fingerprints: list[str],
    solve_cost_ms: dict[str, float],
    num_shards: int,
    num_workers: int = 1,
    hit_cost_ms: float = HIT_COST_MS,
    slo: SloTracker | None = None,
) -> SimulatedShardRun:
    """Deterministic discrete-event replay of one arrival schedule.

    Each shard is a FIFO pool of ``num_workers`` servers.  Requests are
    processed in arrival order; the routing is the fleet's real routing
    function (:func:`shard_for_fingerprint`).  Single-flight semantics
    mirror :class:`~repro.service.server.PlanService`: the first arrival of
    a fingerprint occupies a server for the solve cost, arrivals landing
    while that solve is in flight coalesce onto it (completing when the
    leader completes, consuming no server), and arrivals after completion
    are cache hits paying ``hit_cost_ms`` on a server.

    When ``slo`` is given, every simulated latency is recorded into it
    (outcome ``hit``/``miss``/``coalesced``) so the virtual percentiles flow
    through the same SLO rollup as live ones.
    """
    if num_shards <= 0:
        raise LoadReplayError("num_shards must be positive")
    # Per-shard server pools: next-free virtual time of each worker.
    servers = [[0.0] * num_workers for _ in range(num_shards)]
    solved_at: dict[str, float] = {}
    latencies: list[float] = []
    coalesced = hits = solves = 0
    finish = 0.0
    for arrival, fingerprint in zip(arrivals, fingerprints):
        shard = shard_for_fingerprint(fingerprint, num_shards)
        pool = servers[shard]
        done = solved_at.get(fingerprint)
        if done is not None and done > arrival:
            # Leader still in flight: coalesce, no server consumed.
            completion = done
            coalesced += 1
        else:
            slot = min(range(len(pool)), key=pool.__getitem__)
            start = max(arrival, pool[slot])
            if done is None:
                cost = solve_cost_ms[fingerprint] / 1000.0
                solves += 1
            else:
                cost = hit_cost_ms / 1000.0
                hits += 1
            completion = start + cost
            pool[slot] = completion
            if done is None:
                solved_at[fingerprint] = completion
        latency = completion - arrival
        latencies.append(latency)
        finish = max(finish, completion)
        if slo is not None:
            # Every simulated request resolves with a plan; hit/miss/coalesce
            # is tracked in the run's own counters, while the SLO rollup sees
            # the serving outcome so availability and latency percentiles
            # aggregate like the live fleet's.
            slo.record("served", latency, topology=f"sim-{num_shards}")
    makespan = max(finish, arrivals[-1] if arrivals else 0.0)
    latencies.sort()
    return SimulatedShardRun(
        num_shards=num_shards,
        makespan_seconds=makespan,
        throughput_rps=len(arrivals) / makespan if makespan > 0 else 0.0,
        p50_ms=_percentile(latencies, 0.50) * 1000.0,
        p95_ms=_percentile(latencies, 0.95) * 1000.0,
        p99_ms=_percentile(latencies, 0.99) * 1000.0,
        coalesced=coalesced,
        hits=hits,
        solves=solves,
    )


def document_solve_cost_ms(payload: str) -> float:
    """Deterministic solve cost of a plan from its serialized size."""
    return SOLVE_COST_BASE_MS + SOLVE_COST_MS_PER_KIB * (len(payload) / 1024.0)


def run_load_replay(
    workload: WorkloadSpec,
    *,
    num_requests: int = 400,
    num_unique: int = 8,
    rate: float = 2000.0,
    scenario: str = "flash-crowd",
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    real_shards: int = 2,
    num_workers: int = 1,
    num_clients: int = 4,
    seed: int = 0,
    journal=None,
    slo: SloTracker | None = None,
) -> LoadReplayResult:
    """The full two-phase campaign behind ``repro fleet-bench``.

    Phase 1 drives a live ``real_shards``-shard fleet with ``num_clients``
    closed-loop threads over the whole stream, verifying every unique
    payload against an uncached single-planner reference; phase 2 replays
    the identical arrival schedule in virtual time for every entry of
    ``shard_counts``.
    """
    tasks = workload.tasks()
    cluster = workload.cluster()
    stream, num_unique = fleet_request_stream(
        tasks, num_requests, num_unique, seed=seed
    )
    arrivals = arrival_schedule(
        len(stream), rate, scenario=scenario, seed=seed
    )

    # ---- uncached reference: canonical payloads + measured solve time ----
    reference = ExecutionPlanner(cluster)
    unique_requests = list({id(request): request for request in stream}.values())
    canonical: dict[int, str] = {}
    tracer = get_tracer()
    with tracer.timed(
        "load_replay.reference", category="bench", requests=len(unique_requests)
    ) as span:
        for request in unique_requests:
            canonical[id(request)] = _canonical_plan_payload(
                reference.plan(request)
            )
    reference_solve_ms = (
        span.seconds * 1000.0 / len(unique_requests) if unique_requests else 0.0
    )

    # ---- phase 1: live fleet, closed multi-threaded clients --------------
    fleet = PlanServiceFleet(
        lambda: ExecutionPlanner(cluster),
        num_shards=real_shards,
        capacity=max(64, num_unique),
        num_workers=num_workers,
        journal=journal,
        slo=slo,
        trace_seed=seed,
    )
    failures = [0] * num_clients
    chunks = [stream[index::num_clients] for index in range(num_clients)]

    def closed_client(ordinal: int) -> None:
        for request in chunks[ordinal]:
            try:
                fleet.plan(request, timeout=60.0)
            except Exception:
                failures[ordinal] += 1

    with fleet:
        with tracer.timed(
            "load_replay.fleet", category="bench", requests=len(stream)
        ) as span:
            clients = [
                threading.Thread(
                    target=closed_client, args=(ordinal,), daemon=True
                )
                for ordinal in range(num_clients)
            ]
            for client in clients:
                client.start()
            for client in clients:
                client.join()
        wall_seconds = span.seconds

        # Byte-identity audit: every unique fingerprint's served payload,
        # canonicalised, must equal the uncached reference's.
        matches = mismatches = 0
        solve_cost_ms: dict[str, float] = {}
        fingerprints = [fleet.fingerprint(request) for request in stream]
        for request in unique_requests:
            fingerprint = fleet.fingerprint(request)
            payload = fleet.cache.get_payload(fingerprint)
            if payload is None:
                mismatches += 1
                continue
            document = json.loads(payload)
            document.pop("planning_report", None)
            served = json.dumps(document, sort_keys=True)
            if served == canonical[id(request)]:
                matches += 1
            else:
                mismatches += 1
            solve_cost_ms[fingerprint] = document_solve_cost_ms(served)
        census = fleet.shard_census()

    # ---- phase 2: deterministic virtual-time shard sweep -----------------
    # Missing costs (payload evicted before audit) fall back to the base
    # cost so the sweep always covers the full schedule.
    for fingerprint in set(fingerprints):
        solve_cost_ms.setdefault(fingerprint, SOLVE_COST_BASE_MS)
    simulated = {
        shards: simulate_fleet(
            arrivals,
            fingerprints,
            solve_cost_ms,
            num_shards=shards,
            num_workers=num_workers,
            slo=slo,
        )
        for shards in shard_counts
    }

    return LoadReplayResult(
        scenario=scenario,
        num_requests=len(stream),
        num_unique=num_unique,
        offered_rate=rate,
        num_clients=num_clients,
        real_shards=real_shards,
        wall_seconds=wall_seconds,
        real_rps=len(stream) / wall_seconds if wall_seconds > 0 else 0.0,
        failed_requests=sum(failures),
        payload_matches=matches,
        payload_mismatches=mismatches,
        reference_solve_ms=reference_solve_ms,
        shard_census=census,
        simulated=simulated,
    )
