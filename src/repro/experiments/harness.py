"""Experiment harness: run several systems on one workload and compare them.

The paper reports every end-to-end number as a speedup over DeepSpeed (Fig. 8,
Tab. 2); :class:`ComparisonResult` reproduces that convention while keeping the
raw iteration results around for the breakdown / utilization / memory figures.
"""

from __future__ import annotations

import json
from concurrent.futures import wait
from dataclasses import dataclass, field
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Sequence

from repro.baselines import SYSTEM_CLASSES, TrainingSystem, make_system
from repro.core.planner import ExecutionPlanner
from repro.core.serialization import plan_to_dict
from repro.experiments.workloads import WorkloadSpec, planning_request_stream
from repro.faults import FAULT_PROFILES, FaultInjector, FaultPlan, FaultProfile
from repro.obs import get_tracer
from repro.runtime.results import IterationResult
from repro.service import (
    PlanCache,
    PlanResponse,
    PlanService,
    PlanStore,
    ResiliencePolicy,
    ServiceStats,
    fingerprint_workload,
    hash_document,
)

#: Systems of the main end-to-end comparison, in the plotting order of Fig. 8.
DEFAULT_SYSTEMS = (
    "spindle",
    "spindle-optimus",
    "distmm-mt",
    "megatron-lm",
    "deepspeed",
)

#: Reference system of all speedup ratios in the paper.
REFERENCE_SYSTEM = "deepspeed"


@dataclass
class ComparisonResult:
    """Results of all systems on one workload, plus speedups vs the reference."""

    workload: WorkloadSpec
    results: dict[str, IterationResult] = field(default_factory=dict)
    reference: str = REFERENCE_SYSTEM

    def iteration_time(self, system: str) -> float:
        return self.results[system].iteration_time

    def speedup(self, system: str) -> float:
        """Speedup of ``system`` over the reference (larger than 1 is faster)."""
        return self.iteration_time(self.reference) / self.iteration_time(system)

    def speedups(self) -> dict[str, float]:
        return {name: self.speedup(name) for name in self.results}

    @property
    def best_system(self) -> str:
        return min(self.results, key=lambda name: self.iteration_time(name))

    def as_rows(self) -> list[tuple[str, float, float]]:
        """``(system, iteration_time_ms, speedup)`` rows sorted by time."""
        rows = [
            (name, result.iteration_time * 1e3, self.speedup(name))
            for name, result in self.results.items()
        ]
        rows.sort(key=lambda row: row[1])
        return rows


def run_comparison(
    workload: WorkloadSpec,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    system_kwargs: dict[str, dict] | None = None,
    tasks=None,
    cluster=None,
) -> ComparisonResult:
    """Run every requested system on the workload and collect the results.

    ``tasks``/``cluster`` accept prebuilt workload pieces (e.g. from the
    benchmark suite's session-wide :class:`~repro.bench.runner.WorkloadCache`)
    so repeated workloads are constructed once instead of per call.
    """
    system_kwargs = system_kwargs or {}
    cluster = cluster if cluster is not None else workload.cluster()
    tasks = tasks if tasks is not None else workload.tasks()
    comparison = ComparisonResult(workload=workload)
    for name in systems:
        if name not in SYSTEM_CLASSES:
            raise KeyError(f"Unknown system {name!r}")
        system = make_system(name, cluster, **system_kwargs.get(name, {}))
        comparison.results[name] = system.run_iteration(tasks)
    if comparison.reference not in comparison.results:
        comparison.reference = next(iter(comparison.results))
    return comparison


def run_single_system(
    workload: WorkloadSpec, system: str, tasks=None, cluster=None, **kwargs
) -> tuple[TrainingSystem, IterationResult]:
    """Run one system on one workload; returns the system (with its last plan).

    ``tasks``/``cluster`` accept prebuilt workload pieces, as in
    :func:`run_comparison`.
    """
    cluster = cluster if cluster is not None else workload.cluster()
    tasks = tasks if tasks is not None else workload.tasks()
    instance = make_system(system, cluster, **kwargs)
    result = instance.run_iteration(tasks)
    return instance, result


@dataclass
class ServiceBenchmarkResult:
    """Plan-service throughput vs the uncached planner on one request stream."""

    num_requests: int
    num_unique: int
    uncached_seconds: float
    service_seconds: float
    stats: ServiceStats
    failed_requests: int

    @property
    def repeated_fraction(self) -> float:
        return 1 - self.num_unique / self.num_requests

    @property
    def speedup(self) -> float:
        if self.service_seconds <= 0:
            return float("inf")
        return self.uncached_seconds / self.service_seconds

    def as_rows(self) -> list[list[str]]:
        """The metric/value rows reported by serve-bench and the benchmark."""
        latency = self.stats.overall_latency()
        return [
            ["requests", str(self.num_requests)],
            ["unique workloads", str(self.num_unique)],
            ["repeated requests", f"{self.repeated_fraction * 100:.0f}%"],
            ["cache hit rate", f"{self.stats.hit_rate * 100:.1f}%"],
            [
                "uncached planner",
                f"{self.uncached_seconds:.3f} s "
                f"({self.num_requests / self.uncached_seconds:.1f} req/s)",
            ],
            [
                "plan service",
                f"{self.service_seconds:.3f} s "
                f"({self.num_requests / self.service_seconds:.1f} req/s)",
            ],
            ["speedup", f"{self.speedup:.1f}x"],
            [
                "service latency",
                f"p50 {latency.p50 * 1e3:.2f} / p95 {latency.p95 * 1e3:.2f} / "
                f"p99 {latency.p99 * 1e3:.2f} ms",
            ],
        ]


def run_service_benchmark(
    workload: WorkloadSpec,
    num_requests: int,
    num_unique: int,
    num_workers: int = 4,
    max_batch_size: int = 8,
    seed: int = 0,
    journal=None,
    slo=None,
    num_tenants: int = 0,
) -> ServiceBenchmarkResult:
    """Replay one planning-request stream uncached, then through the service.

    This is the measurement protocol shared by ``repro serve-bench`` and
    ``benchmarks/bench_service_throughput.py``: the uncached reference runs
    one full ``ExecutionPlanner.plan()`` per request serially, the service run
    submits the same stream to a :class:`PlanService` and waits for every
    future.

    ``journal`` (a :class:`~repro.obs.TelemetryJournal`) and ``slo`` (a
    :class:`~repro.obs.SloTracker`) are threaded into the service when given;
    ``num_tenants > 0`` labels request ``i`` with tenant ``tenant-{i % n}``
    so per-tenant SLO rollups have something to group by.  The telemetry
    overhead benchmark runs this protocol twice — bare, then instrumented —
    and gates the ratio.
    """
    tasks = workload.tasks()
    cluster = workload.cluster()
    stream, num_unique = planning_request_stream(
        tasks, num_requests, num_unique, seed=seed
    )

    # Fingerprints are precomputed outside the timed window for both sides:
    # the uncached reference should pay planning cost only, and the service
    # memoizes fingerprints of repeated requests anyway.
    planner = ExecutionPlanner(cluster)
    config = planner.config_signature()
    unique_requests = {id(request): request for request in stream}
    fingerprints = {
        key: fingerprint_workload(request, cluster, config)
        for key, request in unique_requests.items()
    }
    tracer = get_tracer()
    with tracer.timed(
        "bench.uncached_planner", category="bench", requests=len(stream)
    ) as span:
        for request in stream:
            planner.plan(request, fingerprint=fingerprints[id(request)])
    uncached_seconds = span.seconds

    service = PlanService(
        lambda: ExecutionPlanner(cluster),
        cache=PlanCache(capacity=max(64, num_unique)),
        num_workers=num_workers,
        max_batch_size=max_batch_size,
        journal=journal,
        slo=slo,
    )
    with service:
        with tracer.timed(
            "bench.plan_service", category="bench", requests=len(stream)
        ) as span:
            futures = [
                service.submit(
                    request,
                    tenant=(
                        f"tenant-{index % num_tenants}" if num_tenants > 0 else None
                    ),
                )
                for index, request in enumerate(stream)
            ]
            wait(futures)
        service_seconds = span.seconds

    return ServiceBenchmarkResult(
        num_requests=len(stream),
        num_unique=num_unique,
        uncached_seconds=uncached_seconds,
        service_seconds=service_seconds,
        stats=service.stats,
        failed_requests=sum(1 for f in futures if f.exception() is not None),
    )


@dataclass
class ResilienceBenchmarkResult:
    """One seeded chaos replay against the resilient plan service.

    Everything in :meth:`canonical_report` is a pure function of
    ``(workload, num_requests, num_unique, profile, seed)`` — outcomes,
    serving tiers, injected-fault counts, persistence failures — so two runs
    with the same seed produce byte-identical reports
    (:meth:`signature`), which is what the resilience benchmark gates.
    Wall-clock quantities (``elapsed_seconds``, the latency percentiles in
    ``stats``) are deliberately excluded from the canonical report.
    """

    profile: FaultProfile
    seed: int
    num_requests: int
    num_unique: int
    responses: list[PlanResponse]
    stats: ServiceStats
    fault_counts: dict[str, int]
    fault_plan_signature: str
    payload_matches: int
    payload_total: int
    persist_attempts: int
    persist_failures: int
    corruptions_quarantined: int
    warm_start_loaded: int
    breaker_trips: int
    elapsed_seconds: float

    @property
    def availability(self) -> float:
        """Fraction of requests that resolved with a plan (served or degraded)."""
        if not self.responses:
            return 1.0
        return sum(1 for r in self.responses if r.ok) / len(self.responses)

    @property
    def payload_match_rate(self) -> float:
        """Fraction of served plans byte-identical to the fault-free solve."""
        if self.payload_total == 0:
            return 1.0
        return self.payload_matches / self.payload_total

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for response in self.responses:
            counts[response.outcome] = counts.get(response.outcome, 0) + 1
        return dict(sorted(counts.items()))

    def tier_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for response in self.responses:
            if response.tier is not None:
                counts[response.tier] = counts.get(response.tier, 0) + 1
        return dict(sorted(counts.items()))

    def canonical_report(self) -> dict:
        """The deterministic per-run record (no wall-clock, no object ids)."""
        return {
            "profile": self.profile.canonical_dict(),
            "seed": self.seed,
            "num_requests": self.num_requests,
            "num_unique": self.num_unique,
            "fault_plan": self.fault_plan_signature,
            "responses": [r.canonical_dict() for r in self.responses],
            "outcomes": self.outcome_counts(),
            "tiers": self.tier_counts(),
            "faults": dict(sorted(self.fault_counts.items())),
            "persist": {
                "attempts": self.persist_attempts,
                "failures": self.persist_failures,
            },
            "corruptions_quarantined": self.corruptions_quarantined,
            "warm_start_loaded": self.warm_start_loaded,
            "breaker_trips": self.breaker_trips,
            "payload": {
                "matches": self.payload_matches,
                "total": self.payload_total,
            },
        }

    def signature(self) -> str:
        """Content hash of :meth:`canonical_report` (same seed ⇒ same hash)."""
        return hash_document(self.canonical_report())

    def as_rows(self) -> list[list[str]]:
        """The metric/value rows reported by serve-bench under a fault profile."""
        outcomes = self.outcome_counts()
        tiers = self.tier_counts()
        faults_total = sum(self.fault_counts.values())
        return [
            ["fault profile", f"{self.profile.name} (seed {self.seed})"],
            ["requests", str(self.num_requests)],
            ["unique workloads", str(self.num_unique)],
            ["availability", f"{self.availability * 100:.1f}%"],
            [
                "outcomes",
                ", ".join(f"{k} {v}" for k, v in outcomes.items()) or "none",
            ],
            [
                "serving tiers",
                ", ".join(f"{k} {v}" for k, v in tiers.items()) or "none",
            ],
            [
                "faults injected",
                f"{faults_total} ("
                + (
                    ", ".join(
                        f"{k} {v}" for k, v in sorted(self.fault_counts.items()) if v
                    )
                    or "none"
                )
                + ")",
            ],
            [
                "plan integrity",
                f"{self.payload_matches}/{self.payload_total} byte-identical "
                "to fault-free solves",
            ],
            [
                "persistence",
                f"{self.persist_attempts} saves, {self.persist_failures} "
                f"injected failures, {self.warm_start_loaded} entries restorable",
            ],
            ["corrupt payloads quarantined", str(self.corruptions_quarantined)],
            ["report signature", self.signature()[:16]],
            ["elapsed", f"{self.elapsed_seconds:.3f} s"],
        ]


def _canonical_plan_payload(plan) -> str:
    """Plan bytes for integrity comparison: the full plan document minus the
    planning report (whose stage timings are wall-clock and whose curve-reuse
    counters depend on planner-instance history, not on the plan)."""
    document = plan_to_dict(plan)
    document.pop("planning_report", None)
    return json.dumps(document, sort_keys=True)


def run_resilience_benchmark(
    workload: WorkloadSpec,
    num_requests: int,
    num_unique: int,
    profile: str | FaultProfile = "chaos",
    seed: int = 0,
    num_workers: int = 2,
    max_batch_size: int = 8,
    persist_every: int = 8,
    store_path: str | Path | None = None,
    policy: ResiliencePolicy | None = None,
    journal=None,
    slo=None,
    num_tenants: int = 0,
) -> ResilienceBenchmarkResult:
    """Replay one request stream through the service under a seeded fault plan.

    The protocol behind ``repro serve-bench --fault-profile`` and
    ``benchmarks/bench_service_resilience.py``:

    1. Solve every unique workload fault-free (reference payloads).
    2. Generate the :class:`~repro.faults.plan.FaultPlan` for
       ``(profile, len(stream), seed)`` and bind an injector to a resilient
       :class:`~repro.service.PlanService` plus a checksummed
       :class:`~repro.service.PlanStore`.
    3. Submit the stream *serially* through
       :meth:`~repro.service.PlanService.request` (serial submission is what
       makes request ordinals — and therefore the injected schedule —
       deterministic), snapshotting the cache every ``persist_every``
       requests.
    4. Verify every response that carried a plan against the fault-free
       payload, then verify the final snapshot round-trips into a fresh
       cache.

    The default policy retries one attempt past the profile's worst
    per-fault failure streak, disables the wall-clock-coupled knobs
    (deadline, breaker) so outcomes stay a pure function of the seed, and
    leaves every degradation tier enabled; pass ``policy`` to override.

    ``journal`` attaches a :class:`~repro.obs.TelemetryJournal` to the
    service (the service shares it with the injector and the cache, so fault
    injections and quarantines land in the same event stream); because
    submission is serial, two same-seed runs write byte-identical journals.
    ``slo`` threads a :class:`~repro.obs.SloTracker`; ``num_tenants > 0``
    labels request ``i`` with tenant ``tenant-{i % n}``.
    """
    if isinstance(profile, str):
        try:
            profile = FAULT_PROFILES[profile]
        except KeyError:
            raise KeyError(
                f"Unknown fault profile {profile!r}; "
                f"known: {', '.join(sorted(FAULT_PROFILES))}"
            ) from None
    tasks = workload.tasks()
    cluster = workload.cluster()
    stream, num_unique = planning_request_stream(
        tasks, num_requests, num_unique, seed=seed
    )

    # Fault-free reference payloads, one per unique workload.
    reference = ExecutionPlanner(cluster)
    config = reference.config_signature()
    reference_payloads: dict[str, str] = {}
    for request in {id(r): r for r in stream}.values():
        fp = fingerprint_workload(request, cluster, config)
        if fp not in reference_payloads:
            reference_payloads[fp] = _canonical_plan_payload(
                reference.plan(request, fingerprint=fp)
            )

    num_saves = len(stream) // max(persist_every, 1) + 1
    fault_plan = FaultPlan.generate(
        profile, len(stream), seed, num_persist_ops=num_saves
    )
    injector = FaultInjector(fault_plan)
    if policy is None:
        policy = ResiliencePolicy(
            max_attempts=profile.max_fail_attempts + 1,
            backoff_base_seconds=0.0005,
            backoff_max_seconds=0.002,
            breaker_failure_threshold=0,  # wall-clock reset breaks determinism
            seed=seed,
        )
    cache = PlanCache(capacity=max(64, num_unique))
    persist_attempts = 0
    persist_failures = 0

    with TemporaryDirectory(prefix="repro-plan-store-") as scratch:
        store = PlanStore(
            store_path if store_path is not None else Path(scratch) / "plans.json",
            injector=injector,
        )

        def _persist() -> None:
            nonlocal persist_attempts, persist_failures
            persist_attempts += 1
            try:
                store.save(cache)
            except OSError:
                persist_failures += 1

        service = PlanService(
            lambda: ExecutionPlanner(cluster),
            cache=cache,
            num_workers=num_workers,
            max_batch_size=max_batch_size,
            resilience=policy,
            fault_injector=injector,
            journal=journal,
            slo=slo,
        )
        responses: list[PlanResponse] = []
        with service:
            with get_tracer().timed(
                "bench.resilient_service",
                category="bench",
                requests=len(stream),
                profile=profile.name,
            ) as span:
                for index, request in enumerate(stream):
                    tenant = (
                        f"tenant-{index % num_tenants}" if num_tenants > 0 else None
                    )
                    responses.append(service.request(request, tenant=tenant))
                    if persist_every > 0 and (index + 1) % persist_every == 0:
                        _persist()
                _persist()
        elapsed = span.seconds

        restored = PlanCache(capacity=max(64, num_unique))
        warm_start_loaded = store.load_into(restored).loaded

    payload_matches = 0
    payload_total = 0
    for response in responses:
        if response.plan is None:
            continue
        payload_total += 1
        if _canonical_plan_payload(response.plan) == reference_payloads.get(
            response.fingerprint
        ):
            payload_matches += 1

    return ResilienceBenchmarkResult(
        profile=profile,
        seed=seed,
        num_requests=len(stream),
        num_unique=num_unique,
        responses=responses,
        stats=service.stats,
        fault_counts=injector.counts(),
        fault_plan_signature=fault_plan.signature(),
        payload_matches=payload_matches,
        payload_total=payload_total,
        persist_attempts=persist_attempts,
        persist_failures=persist_failures,
        corruptions_quarantined=cache.stats.corruptions,
        warm_start_loaded=warm_start_loaded,
        breaker_trips=service.breaker.trips,
        elapsed_seconds=elapsed,
    )
