"""Experiment harness: run several systems on one workload and compare them.

The paper reports every end-to-end number as a speedup over DeepSpeed (Fig. 8,
Tab. 2); :class:`ComparisonResult` reproduces that convention while keeping the
raw iteration results around for the breakdown / utilization / memory figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.baselines import SYSTEM_CLASSES, TrainingSystem, make_system
from repro.experiments.workloads import WorkloadSpec
from repro.runtime.results import IterationResult

#: Systems of the main end-to-end comparison, in the plotting order of Fig. 8.
DEFAULT_SYSTEMS = (
    "spindle",
    "spindle-optimus",
    "distmm-mt",
    "megatron-lm",
    "deepspeed",
)

#: Reference system of all speedup ratios in the paper.
REFERENCE_SYSTEM = "deepspeed"


@dataclass
class ComparisonResult:
    """Results of all systems on one workload, plus speedups vs the reference."""

    workload: WorkloadSpec
    results: dict[str, IterationResult] = field(default_factory=dict)
    reference: str = REFERENCE_SYSTEM

    def iteration_time(self, system: str) -> float:
        return self.results[system].iteration_time

    def speedup(self, system: str) -> float:
        """Speedup of ``system`` over the reference (larger than 1 is faster)."""
        return self.iteration_time(self.reference) / self.iteration_time(system)

    def speedups(self) -> dict[str, float]:
        return {name: self.speedup(name) for name in self.results}

    @property
    def best_system(self) -> str:
        return min(self.results, key=lambda name: self.iteration_time(name))

    def as_rows(self) -> list[tuple[str, float, float]]:
        """``(system, iteration_time_ms, speedup)`` rows sorted by time."""
        rows = [
            (name, result.iteration_time * 1e3, self.speedup(name))
            for name, result in self.results.items()
        ]
        rows.sort(key=lambda row: row[1])
        return rows


def run_comparison(
    workload: WorkloadSpec,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    system_kwargs: dict[str, dict] | None = None,
) -> ComparisonResult:
    """Run every requested system on the workload and collect the results."""
    system_kwargs = system_kwargs or {}
    cluster = workload.cluster()
    tasks = workload.tasks()
    comparison = ComparisonResult(workload=workload)
    for name in systems:
        if name not in SYSTEM_CLASSES:
            raise KeyError(f"Unknown system {name!r}")
        system = make_system(name, cluster, **system_kwargs.get(name, {}))
        comparison.results[name] = system.run_iteration(tasks)
    if comparison.reference not in comparison.results:
        comparison.reference = next(iter(comparison.results))
    return comparison


def run_single_system(
    workload: WorkloadSpec, system: str, **kwargs
) -> tuple[TrainingSystem, IterationResult]:
    """Run one system on one workload; returns the system (with its last plan)."""
    cluster = workload.cluster()
    instance = make_system(system, cluster, **kwargs)
    result = instance.run_iteration(workload.tasks())
    return instance, result
