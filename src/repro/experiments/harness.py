"""Experiment harness: run several systems on one workload and compare them.

The paper reports every end-to-end number as a speedup over DeepSpeed (Fig. 8,
Tab. 2); :class:`ComparisonResult` reproduces that convention while keeping the
raw iteration results around for the breakdown / utilization / memory figures.
"""

from __future__ import annotations

from concurrent.futures import wait
from dataclasses import dataclass, field
from typing import Sequence

from repro.baselines import SYSTEM_CLASSES, TrainingSystem, make_system
from repro.core.planner import ExecutionPlanner
from repro.experiments.workloads import WorkloadSpec, planning_request_stream
from repro.obs import get_tracer
from repro.runtime.results import IterationResult
from repro.service import PlanCache, PlanService, ServiceStats, fingerprint_workload

#: Systems of the main end-to-end comparison, in the plotting order of Fig. 8.
DEFAULT_SYSTEMS = (
    "spindle",
    "spindle-optimus",
    "distmm-mt",
    "megatron-lm",
    "deepspeed",
)

#: Reference system of all speedup ratios in the paper.
REFERENCE_SYSTEM = "deepspeed"


@dataclass
class ComparisonResult:
    """Results of all systems on one workload, plus speedups vs the reference."""

    workload: WorkloadSpec
    results: dict[str, IterationResult] = field(default_factory=dict)
    reference: str = REFERENCE_SYSTEM

    def iteration_time(self, system: str) -> float:
        return self.results[system].iteration_time

    def speedup(self, system: str) -> float:
        """Speedup of ``system`` over the reference (larger than 1 is faster)."""
        return self.iteration_time(self.reference) / self.iteration_time(system)

    def speedups(self) -> dict[str, float]:
        return {name: self.speedup(name) for name in self.results}

    @property
    def best_system(self) -> str:
        return min(self.results, key=lambda name: self.iteration_time(name))

    def as_rows(self) -> list[tuple[str, float, float]]:
        """``(system, iteration_time_ms, speedup)`` rows sorted by time."""
        rows = [
            (name, result.iteration_time * 1e3, self.speedup(name))
            for name, result in self.results.items()
        ]
        rows.sort(key=lambda row: row[1])
        return rows


def run_comparison(
    workload: WorkloadSpec,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    system_kwargs: dict[str, dict] | None = None,
    tasks=None,
    cluster=None,
) -> ComparisonResult:
    """Run every requested system on the workload and collect the results.

    ``tasks``/``cluster`` accept prebuilt workload pieces (e.g. from the
    benchmark suite's session-wide :class:`~repro.bench.runner.WorkloadCache`)
    so repeated workloads are constructed once instead of per call.
    """
    system_kwargs = system_kwargs or {}
    cluster = cluster if cluster is not None else workload.cluster()
    tasks = tasks if tasks is not None else workload.tasks()
    comparison = ComparisonResult(workload=workload)
    for name in systems:
        if name not in SYSTEM_CLASSES:
            raise KeyError(f"Unknown system {name!r}")
        system = make_system(name, cluster, **system_kwargs.get(name, {}))
        comparison.results[name] = system.run_iteration(tasks)
    if comparison.reference not in comparison.results:
        comparison.reference = next(iter(comparison.results))
    return comparison


def run_single_system(
    workload: WorkloadSpec, system: str, tasks=None, cluster=None, **kwargs
) -> tuple[TrainingSystem, IterationResult]:
    """Run one system on one workload; returns the system (with its last plan).

    ``tasks``/``cluster`` accept prebuilt workload pieces, as in
    :func:`run_comparison`.
    """
    cluster = cluster if cluster is not None else workload.cluster()
    tasks = tasks if tasks is not None else workload.tasks()
    instance = make_system(system, cluster, **kwargs)
    result = instance.run_iteration(tasks)
    return instance, result


@dataclass
class ServiceBenchmarkResult:
    """Plan-service throughput vs the uncached planner on one request stream."""

    num_requests: int
    num_unique: int
    uncached_seconds: float
    service_seconds: float
    stats: ServiceStats
    failed_requests: int

    @property
    def repeated_fraction(self) -> float:
        return 1 - self.num_unique / self.num_requests

    @property
    def speedup(self) -> float:
        if self.service_seconds <= 0:
            return float("inf")
        return self.uncached_seconds / self.service_seconds

    def as_rows(self) -> list[list[str]]:
        """The metric/value rows reported by serve-bench and the benchmark."""
        return [
            ["requests", str(self.num_requests)],
            ["unique workloads", str(self.num_unique)],
            ["repeated requests", f"{self.repeated_fraction * 100:.0f}%"],
            ["cache hit rate", f"{self.stats.hit_rate * 100:.1f}%"],
            [
                "uncached planner",
                f"{self.uncached_seconds:.3f} s "
                f"({self.num_requests / self.uncached_seconds:.1f} req/s)",
            ],
            [
                "plan service",
                f"{self.service_seconds:.3f} s "
                f"({self.num_requests / self.service_seconds:.1f} req/s)",
            ],
            ["speedup", f"{self.speedup:.1f}x"],
        ]


def run_service_benchmark(
    workload: WorkloadSpec,
    num_requests: int,
    num_unique: int,
    num_workers: int = 4,
    max_batch_size: int = 8,
    seed: int = 0,
) -> ServiceBenchmarkResult:
    """Replay one planning-request stream uncached, then through the service.

    This is the measurement protocol shared by ``repro serve-bench`` and
    ``benchmarks/bench_service_throughput.py``: the uncached reference runs
    one full ``ExecutionPlanner.plan()`` per request serially, the service run
    submits the same stream to a :class:`PlanService` and waits for every
    future.
    """
    tasks = workload.tasks()
    cluster = workload.cluster()
    stream, num_unique = planning_request_stream(
        tasks, num_requests, num_unique, seed=seed
    )

    # Fingerprints are precomputed outside the timed window for both sides:
    # the uncached reference should pay planning cost only, and the service
    # memoizes fingerprints of repeated requests anyway.
    planner = ExecutionPlanner(cluster)
    config = planner.config_signature()
    unique_requests = {id(request): request for request in stream}
    fingerprints = {
        key: fingerprint_workload(request, cluster, config)
        for key, request in unique_requests.items()
    }
    tracer = get_tracer()
    with tracer.timed(
        "bench.uncached_planner", category="bench", requests=len(stream)
    ) as span:
        for request in stream:
            planner.plan(request, fingerprint=fingerprints[id(request)])
    uncached_seconds = span.seconds

    service = PlanService(
        lambda: ExecutionPlanner(cluster),
        cache=PlanCache(capacity=max(64, num_unique)),
        num_workers=num_workers,
        max_batch_size=max_batch_size,
    )
    with service:
        with tracer.timed(
            "bench.plan_service", category="bench", requests=len(stream)
        ) as span:
            futures = [service.submit(request) for request in stream]
            wait(futures)
        service_seconds = span.seconds

    return ServiceBenchmarkResult(
        num_requests=len(stream),
        num_unique=num_unique,
        uncached_seconds=uncached_seconds,
        service_seconds=service_seconds,
        stats=service.stats,
        failed_requests=sum(1 for f in futures if f.exception() is not None),
    )
