"""Operator / computation-graph IR and the user-facing task definition API."""

from repro.graph.builder import MultiTaskGraphBuilder, build_unified_graph
from repro.graph.graph import ComputationGraph, GraphError
from repro.graph.ops import (
    ALL_MODALITIES,
    FP16_BYTES,
    DataFlow,
    Operator,
    TensorSpec,
)
from repro.graph.task import ModuleSpec, SpindleTask, TaskError

__all__ = [
    "ALL_MODALITIES",
    "FP16_BYTES",
    "ComputationGraph",
    "DataFlow",
    "GraphError",
    "ModuleSpec",
    "MultiTaskGraphBuilder",
    "Operator",
    "SpindleTask",
    "TaskError",
    "TensorSpec",
    "build_unified_graph",
]
