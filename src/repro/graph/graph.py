"""Directed acyclic computation graph used by the Spindle execution planner."""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Optional

from repro.graph.ops import DataFlow, Operator


class GraphError(Exception):
    """Raised when a computation graph is malformed (cycles, missing nodes)."""


class ComputationGraph:
    """The unified multi-task computation graph ``G = (V, E)`` of §3.

    Nodes are :class:`~repro.graph.ops.Operator` objects keyed by their unique
    names; edges are :class:`~repro.graph.ops.DataFlow` objects.  The class
    offers the traversal primitives needed by graph contraction (§3.1) and by
    the runtime engine: topological ordering, degree queries, predecessor and
    successor lookup, and per-task sub-graph extraction.
    """

    def __init__(self) -> None:
        self._operators: dict[str, Operator] = {}
        self._edges: dict[tuple[str, str], DataFlow] = {}
        self._successors: dict[str, list[str]] = {}
        self._predecessors: dict[str, list[str]] = {}

    # ------------------------------------------------------------------ nodes
    def add_operator(self, op: Operator) -> Operator:
        """Add an operator node; names must be unique within the graph."""
        if op.name in self._operators:
            raise GraphError(f"Duplicate operator name {op.name!r}")
        self._operators[op.name] = op
        self._successors[op.name] = []
        self._predecessors[op.name] = []
        return op

    def add_operators(self, ops: Iterable[Operator]) -> None:
        for op in ops:
            self.add_operator(op)

    def has_operator(self, name: str) -> bool:
        return name in self._operators

    def operator(self, name: str) -> Operator:
        try:
            return self._operators[name]
        except KeyError as exc:
            raise GraphError(f"Unknown operator {name!r}") from exc

    @property
    def operators(self) -> dict[str, Operator]:
        """Mapping of operator name to operator (do not mutate)."""
        return self._operators

    @property
    def num_operators(self) -> int:
        return len(self._operators)

    # ------------------------------------------------------------------ edges
    def add_flow(
        self, src: str, dst: str, volume_bytes: Optional[float] = None
    ) -> DataFlow:
        """Add a data flow edge ``src -> dst``.

        When ``volume_bytes`` is omitted the volume defaults to the activation
        bytes produced by the source operator, which is what a real framework
        would transmit between consecutive modules.
        """
        if src not in self._operators:
            raise GraphError(f"Unknown source operator {src!r}")
        if dst not in self._operators:
            raise GraphError(f"Unknown destination operator {dst!r}")
        if (src, dst) in self._edges:
            raise GraphError(f"Duplicate data flow {src!r} -> {dst!r}")
        if volume_bytes is None:
            volume_bytes = self._operators[src].activation_bytes
        flow = DataFlow(src=src, dst=dst, volume_bytes=float(volume_bytes))
        self._edges[(src, dst)] = flow
        self._successors[src].append(dst)
        self._predecessors[dst].append(src)
        if self._creates_cycle(src, dst):
            # Roll back before reporting the error so the graph stays usable.
            del self._edges[(src, dst)]
            self._successors[src].remove(dst)
            self._predecessors[dst].remove(src)
            raise GraphError(f"Data flow {src!r} -> {dst!r} introduces a cycle")
        return flow

    def flow(self, src: str, dst: str) -> DataFlow:
        try:
            return self._edges[(src, dst)]
        except KeyError as exc:
            raise GraphError(f"No data flow {src!r} -> {dst!r}") from exc

    @property
    def flows(self) -> list[DataFlow]:
        return list(self._edges.values())

    @property
    def num_flows(self) -> int:
        return len(self._edges)

    # ------------------------------------------------------------- traversal
    def successors(self, name: str) -> list[str]:
        return list(self._successors[name])

    def predecessors(self, name: str) -> list[str]:
        return list(self._predecessors[name])

    def out_degree(self, name: str) -> int:
        return len(self._successors[name])

    def in_degree(self, name: str) -> int:
        return len(self._predecessors[name])

    def sources(self) -> list[str]:
        """Operators with no predecessors (task inputs)."""
        return [name for name in self._operators if not self._predecessors[name]]

    def sinks(self) -> list[str]:
        """Operators with no successors (losses / task outputs)."""
        return [name for name in self._operators if not self._successors[name]]

    def topological_order(self) -> list[str]:
        """Kahn topological sort; raises :class:`GraphError` on cycles."""
        in_deg = {name: self.in_degree(name) for name in self._operators}
        queue = deque(name for name, deg in in_deg.items() if deg == 0)
        order: list[str] = []
        while queue:
            name = queue.popleft()
            order.append(name)
            for succ in self._successors[name]:
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    queue.append(succ)
        if len(order) != len(self._operators):
            raise GraphError("Computation graph contains a cycle")
        return order

    def _creates_cycle(self, src: str, dst: str) -> bool:
        """Check whether ``src`` is reachable from ``dst`` (cheap DFS)."""
        stack = [dst]
        seen = set()
        while stack:
            node = stack.pop()
            if node == src:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._successors[node])
        return False

    # ------------------------------------------------------------ aggregates
    def tasks(self) -> list[str]:
        """Names of the tasks present in the graph, in first-seen order."""
        seen: dict[str, None] = {}
        for op in self._operators.values():
            seen.setdefault(op.task, None)
        return list(seen)

    def operators_of_task(self, task: str) -> list[Operator]:
        return [op for op in self._operators.values() if op.task == task]

    def task_subgraph(self, task: str) -> "ComputationGraph":
        """Extract the sub-graph activated by a single task."""
        sub = ComputationGraph()
        names = {op.name for op in self.operators_of_task(task)}
        for name in names:
            sub.add_operator(self._operators[name])
        for (src, dst), flow in self._edges.items():
            if src in names and dst in names:
                sub.add_flow(src, dst, flow.volume_bytes)
        return sub

    def total_flops(self) -> float:
        return sum(op.flops for op in self._operators.values())

    def total_param_bytes(self, deduplicate_shared: bool = True) -> float:
        """Total parameter bytes in the graph.

        With ``deduplicate_shared`` (the default), parameters shared across
        operators via ``param_key`` are counted once, which is how the paper
        reports model sizes (Tab. 1b).
        """
        if not deduplicate_shared:
            return sum(op.param_bytes for op in self._operators.values())
        seen: dict[str, float] = {}
        anonymous = 0.0
        for op in self._operators.values():
            if op.param_key is None:
                anonymous += op.param_bytes
            else:
                seen[op.param_key] = max(seen.get(op.param_key, 0.0), op.param_bytes)
        return anonymous + sum(seen.values())

    def validate(self) -> None:
        """Raise :class:`GraphError` if the graph is not a DAG."""
        self.topological_order()

    def __iter__(self) -> Iterator[Operator]:
        return iter(self._operators.values())

    def __len__(self) -> int:
        return len(self._operators)

    def __contains__(self, name: str) -> bool:
        return name in self._operators

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ComputationGraph(operators={self.num_operators}, flows={self.num_flows}, "
            f"tasks={len(self.tasks())})"
        )
