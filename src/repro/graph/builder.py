"""Merging per-task graphs into the unified multi-task computation graph."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.graph.graph import ComputationGraph
from repro.graph.task import SpindleTask, TaskError


class MultiTaskGraphBuilder:
    """Builds the unified computation graph for a set of :class:`SpindleTask`.

    Each task contributes its own operator chain (operator names are already
    unique because the model zoo prefixes them with the task name).  Parameter
    sharing across tasks is expressed through ``Operator.param_key`` and is
    *not* merged structurally: as in the paper (Fig. 3), every task has its own
    operator nodes and data flows, while shared components are tied together at
    parameter-synchronisation time by the runtime engine.
    """

    def __init__(self, tasks: Iterable[SpindleTask] | None = None) -> None:
        self._tasks: dict[str, SpindleTask] = {}
        if tasks is not None:
            for task in tasks:
                self.add_task(task)

    def add_task(self, task: SpindleTask) -> None:
        if task.name in self._tasks:
            raise TaskError(f"Duplicate task {task.name!r}")
        self._tasks[task.name] = task

    @property
    def tasks(self) -> list[SpindleTask]:
        return list(self._tasks.values())

    @property
    def task_names(self) -> list[str]:
        return list(self._tasks)

    def task(self, name: str) -> SpindleTask:
        try:
            return self._tasks[name]
        except KeyError as exc:
            raise TaskError(f"Unknown task {name!r}") from exc

    def build(self) -> ComputationGraph:
        """Merge all tasks into a single unified computation graph."""
        if not self._tasks:
            raise TaskError("Cannot build a multi-task graph with zero tasks")
        unified = ComputationGraph()
        for task in self._tasks.values():
            task_graph = task.build_graph()
            for op in task_graph:
                unified.add_operator(op)
            for flow in task_graph.flows:
                unified.add_flow(flow.src, flow.dst, flow.volume_bytes)
        unified.validate()
        return unified

    def shared_parameter_keys(self) -> dict[str, list[str]]:
        """Map parameter keys to the tasks that activate them.

        Keys activated by more than one task require cross-task gradient
        synchronisation (handled by the parameter device group pool, §3.6).
        """
        keys: dict[str, list[str]] = {}
        for task in self._tasks.values():
            for op in task.operators:
                if op.param_key is None:
                    continue
                tasks_for_key = keys.setdefault(op.param_key, [])
                if task.name not in tasks_for_key:
                    tasks_for_key.append(task.name)
        return keys


def build_unified_graph(tasks: Sequence[SpindleTask]) -> ComputationGraph:
    """Convenience wrapper: merge ``tasks`` into one computation graph."""
    return MultiTaskGraphBuilder(tasks).build()
