"""User-facing task definition API (``SpindleTask`` and ``add_flow``).

The paper (§4) describes a "simple, user-friendly and flexible API for defining
MT MM training workloads": training tasks are represented as ``SpindleTask``
objects and the user connects model components through an ``add_flow`` API.
This module reproduces that interface.  A task is a small graph of *modules*
(each module is an ordered chain of operators, e.g. the 32 layers of a vision
encoder); ``add_flow`` wires modules together, and :meth:`SpindleTask.build_graph`
lowers the task to the operator-level :class:`~repro.graph.graph.ComputationGraph`
consumed by the execution planner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.graph.graph import ComputationGraph, GraphError
from repro.graph.ops import Operator


class TaskError(Exception):
    """Raised for malformed task definitions."""


@dataclass
class ModuleSpec:
    """A named chain of operators inside a :class:`SpindleTask`.

    Operators in a module are executed sequentially (layer after layer); the
    chain is materialised as a path in the task's computation graph.
    """

    name: str
    operators: list[Operator] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise TaskError("Module name must be non-empty")
        if not self.operators:
            raise TaskError(f"Module {self.name!r} must contain at least one operator")

    @property
    def first(self) -> Operator:
        return self.operators[0]

    @property
    def last(self) -> Operator:
        return self.operators[-1]

    @property
    def num_operators(self) -> int:
        return len(self.operators)

    @property
    def flops(self) -> float:
        return sum(op.flops for op in self.operators)

    @property
    def param_bytes(self) -> float:
        return sum(op.param_bytes for op in self.operators)


class SpindleTask:
    """A single multi-modal training task.

    Example
    -------
    >>> task = SpindleTask("image_captioning", batch_size=8)
    >>> task.add_module("vision_encoder", vision_ops)
    >>> task.add_module("language_model", lm_ops)
    >>> task.add_flow("vision_encoder", "language_model")
    >>> graph = task.build_graph()
    """

    def __init__(self, name: str, batch_size: int = 1, weight: float = 1.0) -> None:
        if not name:
            raise TaskError("Task name must be non-empty")
        if batch_size <= 0:
            raise TaskError("Task batch size must be positive")
        self.name = name
        self.batch_size = int(batch_size)
        self.weight = float(weight)
        self._modules: dict[str, ModuleSpec] = {}
        self._flows: list[tuple[str, str, Optional[float]]] = []

    # ---------------------------------------------------------------- modules
    def add_module(self, name: str, operators: Iterable[Operator]) -> ModuleSpec:
        """Register a module (ordered operator chain) under ``name``."""
        if name in self._modules:
            raise TaskError(f"Duplicate module {name!r} in task {self.name!r}")
        ops = list(operators)
        for op in ops:
            if op.task != self.name:
                raise TaskError(
                    f"Operator {op.name!r} belongs to task {op.task!r}, "
                    f"cannot be added to task {self.name!r}"
                )
        module = ModuleSpec(name=name, operators=ops)
        self._modules[name] = module
        return module

    def module(self, name: str) -> ModuleSpec:
        try:
            return self._modules[name]
        except KeyError as exc:
            raise TaskError(f"Task {self.name!r} has no module {name!r}") from exc

    @property
    def modules(self) -> dict[str, ModuleSpec]:
        return self._modules

    @property
    def module_names(self) -> list[str]:
        return list(self._modules)

    # ------------------------------------------------------------------ flows
    def add_flow(
        self, src_module: str, dst_module: str, volume_bytes: Optional[float] = None
    ) -> None:
        """Connect the output of ``src_module`` to the input of ``dst_module``."""
        if src_module not in self._modules:
            raise TaskError(f"Unknown source module {src_module!r}")
        if dst_module not in self._modules:
            raise TaskError(f"Unknown destination module {dst_module!r}")
        if src_module == dst_module:
            raise TaskError("A module cannot flow into itself")
        self._flows.append((src_module, dst_module, volume_bytes))

    @property
    def flows(self) -> list[tuple[str, str, Optional[float]]]:
        return list(self._flows)

    # ------------------------------------------------------------- aggregates
    @property
    def operators(self) -> list[Operator]:
        ops: list[Operator] = []
        for module in self._modules.values():
            ops.extend(module.operators)
        return ops

    @property
    def num_operators(self) -> int:
        return sum(m.num_operators for m in self._modules.values())

    @property
    def flops(self) -> float:
        return sum(m.flops for m in self._modules.values())

    @property
    def param_bytes(self) -> float:
        return sum(m.param_bytes for m in self._modules.values())

    @property
    def modalities(self) -> list[str]:
        seen: dict[str, None] = {}
        for op in self.operators:
            seen.setdefault(op.modality, None)
        return list(seen)

    # ------------------------------------------------------------------ lower
    def build_graph(self) -> ComputationGraph:
        """Lower the task definition to an operator-level computation graph."""
        if not self._modules:
            raise TaskError(f"Task {self.name!r} has no modules")
        graph = ComputationGraph()
        for module in self._modules.values():
            for op in module.operators:
                graph.add_operator(op)
            for prev, nxt in zip(module.operators, module.operators[1:]):
                graph.add_flow(prev.name, nxt.name)
        for src_module, dst_module, volume in self._flows:
            src_op = self._modules[src_module].last
            dst_op = self._modules[dst_module].first
            try:
                graph.add_flow(src_op.name, dst_op.name, volume)
            except GraphError as exc:
                raise TaskError(
                    f"Invalid flow {src_module!r} -> {dst_module!r} in task "
                    f"{self.name!r}: {exc}"
                ) from exc
        graph.validate()
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpindleTask(name={self.name!r}, modules={len(self._modules)}, "
            f"operators={self.num_operators}, batch_size={self.batch_size})"
        )
