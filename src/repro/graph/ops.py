"""Operator-level intermediate representation for multi-task multi-modal models.

The Spindle planner works on a directed acyclic computation graph ``G = (V, E)``
where every node is an :class:`Operator` (e.g. a transformer layer of one
modality encoder) and every edge is a data flow between operators (§3 of the
paper).  Operators carry everything the planner and the cost model need:

* the shape of the activation tensor that flows through them,
* the forward FLOP count for the whole (global) mini-batch of their task,
* the number of parameter bytes they own and a *parameter sharing key* so the
  runtime engine can build parameter device groups (§3.6),
* the task and modality they belong to.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

#: Number of bytes per element for half-precision activations / parameters.
FP16_BYTES = 2

#: Canonical modality tags used across the model zoo.  Free-form strings are
#: accepted everywhere; these constants only exist to avoid typos.
MODALITY_TEXT = "text"
MODALITY_VISION = "vision"
MODALITY_AUDIO = "audio"
MODALITY_DEPTH = "depth"
MODALITY_THERMAL = "thermal"
MODALITY_MOTION = "motion"
MODALITY_FUSION = "fusion"

ALL_MODALITIES = (
    MODALITY_TEXT,
    MODALITY_VISION,
    MODALITY_AUDIO,
    MODALITY_DEPTH,
    MODALITY_THERMAL,
    MODALITY_MOTION,
    MODALITY_FUSION,
)


@dataclass(frozen=True)
class TensorSpec:
    """Shape of the activation tensor consumed by an operator.

    The paper describes input data sizes as ``[batch, sequence, hidden]``
    triples (Fig. 3).  Two operators are only eligible for contraction into the
    same MetaOp when their :class:`TensorSpec` compare equal (§3.1).
    """

    batch: int
    seq_len: int
    hidden: int

    def __post_init__(self) -> None:
        if self.batch <= 0 or self.seq_len <= 0 or self.hidden <= 0:
            raise ValueError(f"TensorSpec dimensions must be positive, got {self}")

    @property
    def numel(self) -> int:
        """Total number of elements in the tensor."""
        return self.batch * self.seq_len * self.hidden

    @property
    def bytes(self) -> int:
        """Size of the tensor in bytes assuming fp16 storage."""
        return self.numel * FP16_BYTES

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.batch, self.seq_len, self.hidden)

    def with_batch(self, batch: int) -> "TensorSpec":
        """Return a copy of this spec with a different batch dimension."""
        return TensorSpec(batch=batch, seq_len=self.seq_len, hidden=self.hidden)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.batch}, {self.seq_len}, {self.hidden}]"


@dataclass
class Operator:
    """A single computational operator in the unified computation graph.

    Attributes
    ----------
    name:
        Unique name within a computation graph (the multi-task builder prefixes
        the task name to guarantee uniqueness).
    op_type:
        Workload class of the operator, e.g. ``"vision_layer"`` or
        ``"lm_decoder_layer"``.  Operators of the same type and input spec are
        assumed to have identical workloads and may be contracted into one
        MetaOp.
    task:
        Name of the training task whose data flow activates this operator.
    modality:
        Modality tag of the data flowing through the operator.
    input_spec:
        Shape of the activation tensor the operator consumes.
    flops:
        Forward-pass floating point operations for the *global* batch of the
        operator's task.
    param_bytes:
        Bytes of trainable parameters owned by the operator (fp16).
    activation_bytes:
        Bytes of output activations produced for the global batch; used as the
        default data-flow volume of outgoing edges and for memory estimation.
    param_key:
        Parameter sharing key.  Operators in different tasks that carry the
        same ``param_key`` share parameters, so their gradients must be
        accumulated and synchronised within a parameter device group (§3.6).
        ``None`` marks a parameter-free operator (e.g. a loss).
    """

    name: str
    op_type: str
    task: str
    modality: str
    input_spec: TensorSpec
    flops: float
    param_bytes: float = 0.0
    activation_bytes: float = 0.0
    param_key: Optional[str] = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("Operator name must be a non-empty string")
        if self.flops < 0:
            raise ValueError(f"Operator {self.name!r} has negative FLOPs")
        if self.param_bytes < 0:
            raise ValueError(f"Operator {self.name!r} has negative param bytes")
        if self.activation_bytes < 0:
            raise ValueError(f"Operator {self.name!r} has negative activation bytes")
        if not self.activation_bytes:
            self.activation_bytes = float(self.input_spec.bytes)

    @property
    def batch_size(self) -> int:
        """Global batch size of the data flow through the operator."""
        return self.input_spec.batch

    @property
    def param_count(self) -> float:
        """Approximate number of trainable parameters (fp16 storage assumed)."""
        return self.param_bytes / FP16_BYTES

    def workload_signature(self) -> tuple[str, tuple[int, int, int]]:
        """Signature used by graph contraction to detect identical workloads."""
        return (self.op_type, self.input_spec.as_tuple())

    def renamed(self, name: str) -> "Operator":
        """Return a copy of the operator under a different unique name."""
        return replace(self, name=name, metadata=dict(self.metadata))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Operator(name={self.name!r}, type={self.op_type!r}, task={self.task!r}, "
            f"input={self.input_spec}, flops={self.flops:.3e})"
        )


@dataclass(frozen=True)
class DataFlow:
    """A directed data flow (edge) between two operators.

    ``volume_bytes`` is the number of activation bytes transmitted from the
    source operator to the destination operator in the forward pass.  The
    backward pass transmits roughly the same volume of gradients in the
    opposite direction; the runtime engine accounts for both.
    """

    src: str
    dst: str
    volume_bytes: float

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"Self-loop data flow on operator {self.src!r}")
        if self.volume_bytes < 0:
            raise ValueError("Data flow volume must be non-negative")
