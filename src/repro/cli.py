"""Command-line interface for the Spindle reproduction.

Six subcommand families cover the common workflows:

``repro plan``
    Run the execution planner on a registered workload and print (or save) the
    wavefront execution plan.

``repro compare``
    Run Spindle and the baseline systems on a workload and print the Fig.-8
    style comparison table.

``repro scaling``
    Print the scaling curves (Fig. 4) of a workload's MetaOps.

``repro serve-bench``
    Replay a synthetic planning-request stream against the caching plan
    service and report its throughput against the uncached planner.

``repro elastic``
    Replay a seeded elastic-cluster scenario (random failures, island outage,
    flash-crowd expansion, rolling stragglers) against a workload, replanning
    per policy, and report per-event replan/migration overheads plus the
    cumulative slowdown versus the no-failure run.  Identical seeds produce
    byte-identical reports.

``repro bench list|run|compare``
    Enumerate the registered benchmark suite, run a (tag-filtered) subset
    emitting machine-readable ``BENCH_*.json`` results, and diff result sets
    against a committed baseline with per-metric regression gating.

``repro trace``
    Run a workload through the plan service and the simulated runtime with
    span tracing enabled, and write a Chrome ``trace_event`` JSON (openable
    in Perfetto / ``chrome://tracing``) containing the planner-stage,
    service-lifecycle and simulator-wave spans plus the simulated
    utilization timeline as counter tracks.  The document is validated
    against the trace schema before it is written.

``repro obs report``
    Render the span tree of a previously captured trace (``--input``), or
    run a workload live and print its span tree and metrics-registry delta.

``repro obs journal``
    Inspect a request-scoped telemetry journal (JSONL, written by
    ``serve-bench --journal``): per-request lifecycle table plus the
    attribution census, one request's full event history (``--request``),
    or a per-tenant slice (``--tenant``).

``repro obs slo``
    Fold a telemetry journal's resolved requests into the per-tenant SLO
    table — availability, shed/degraded/error rates and error-budget burn
    against a declared availability target — or emit the Prometheus-style
    text exposition (``--prometheus``).

``repro unified``
    Replay a composed scenario — workload events (task arrival, departure,
    phase change) and cluster events (failure, join, straggler) on one
    timeline — through the unified event-driven runtime, replanning
    incrementally.  ``--mode both`` additionally runs the retained
    full-replan reference and checks the canonical reports are identical.

Examples
--------
::

    repro compare --model multitask-clip --tasks 4 --gpus 16
    repro plan --model qwen-val --tasks 3 --gpus 32 --output plan.json
    repro scaling --model ofasys --tasks 7 --gpus 32
    repro serve-bench --model multitask-clip --gpus 8 --requests 48
    repro elastic --model multitask-clip --tasks 4 --gpus 16 --scenario random-failures
    repro unified --model multitask-clip --tasks 4 --gpus 16 --scenario job-churn --mode both
    repro bench run --tag smoke --json
    repro bench compare --baseline benchmarks/baselines --fail-on-regress
    repro trace --model multitask-clip --tasks 4 --gpus 8 --out trace.json
    repro obs report --input trace.json
    repro serve-bench --model multitask-clip --gpus 8 --requests 48 \\
        --fault-profile chaos --journal telemetry.jsonl --tenants 3
    repro obs journal telemetry.jsonl --tenant tenant-0
    repro obs slo --input telemetry.jsonl
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.baselines import SYSTEM_CLASSES
from repro.bench.cli import add_bench_subparsers
from repro.core.serialization import plan_to_json, save_plan
from repro.costmodel.profiler import default_profile_points
from repro.experiments.harness import (
    run_comparison,
    run_resilience_benchmark,
    run_service_benchmark,
    run_single_system,
)
from repro.experiments.reporting import format_table
from repro.experiments.workloads import WorkloadSpec
from repro.models.registry import MODEL_REGISTRY


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model",
        required=True,
        choices=sorted(MODEL_REGISTRY),
        help="workload from the model zoo",
    )
    parser.add_argument("--tasks", type=int, default=None, help="number of tasks")
    parser.add_argument("--gpus", type=int, default=16, help="cluster size in GPUs")
    parser.add_argument(
        "--model-size",
        default=None,
        help="model size variant (qwen-val only: 10b, 30b or 70b)",
    )


def _workload_from_args(args: argparse.Namespace) -> WorkloadSpec:
    info = MODEL_REGISTRY[args.model]
    num_tasks = args.tasks if args.tasks is not None else info.max_tasks
    kwargs = {}
    if args.model_size:
        kwargs["size"] = args.model_size
    return WorkloadSpec(
        model=args.model, num_tasks=num_tasks, num_gpus=args.gpus, model_kwargs=kwargs
    )


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 1


def _cmd_plan(args: argparse.Namespace) -> int:
    workload = _workload_from_args(args)
    system, result = run_single_system(workload, "spindle")
    plan = system.last_plan
    if plan is None:
        return _fail(f"planner produced no plan for {workload.describe()}")

    print(f"workload        : {workload.describe()}")
    print(f"MetaOps         : {plan.metagraph.num_metaops} "
          f"in {plan.metagraph.num_levels} MetaLevels")
    print(f"waves           : {plan.schedule.num_waves}")
    print(f"planning time   : {system.last_planning_seconds * 1e3:.1f} ms")
    print(f"est. iteration  : {result.iteration_time * 1e3:.1f} ms "
          f"(fwd&bwd {result.breakdown.forward_backward * 1e3:.1f} ms)")

    rows = []
    for wave in plan.waves:
        for entry in wave.entries:
            metaop = plan.metagraph.metaop(entry.metaop_index)
            rows.append(
                [
                    wave.index,
                    wave.level,
                    f"{metaop.task}/{metaop.op_type}",
                    entry.layers,
                    entry.n_devices,
                    ",".join(str(d) for d in entry.devices),
                ]
            )
    print(
        format_table(
            ["wave", "level", "MetaOp", "ops", "#GPUs", "devices"],
            rows,
            title="wavefront execution plan",
        )
    )
    if args.output:
        path = save_plan(plan, args.output)
        print(f"\nplan written to {path}")
    elif args.json:
        print(plan_to_json(plan))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    workload = _workload_from_args(args)
    systems = tuple(args.systems) if args.systems else (
        "spindle", "spindle-optimus", "distmm-mt", "megatron-lm", "deepspeed"
    )
    comparison = run_comparison(workload, systems=systems)
    rows = [
        [name, f"{time_ms:.1f} ms", f"{speedup:.2f}x"]
        for name, time_ms, speedup in comparison.as_rows()
    ]
    print(
        format_table(
            ["system", "iteration time", f"speedup vs {comparison.reference}"],
            rows,
            title=workload.describe(),
        )
    )
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    workload = _workload_from_args(args)
    system, _ = run_single_system(workload, "spindle")
    plan = system.last_plan
    if plan is None:
        return _fail(f"planner produced no plan for {workload.describe()}")
    device_counts = default_profile_points(workload.num_gpus)
    rows = []
    for index, curve in plan.curves.items():
        metaop = plan.metagraph.metaop(index)
        rows.append(
            [f"{metaop.task}/{metaop.op_type}", metaop.num_operators]
            + [f"{curve.speedup(n):.2f}" for n in device_counts]
        )
    print(
        format_table(
            ["MetaOp", "L"] + [f"sigma({n})" for n in device_counts],
            rows,
            title=f"resource scalability, {workload.describe()}",
        )
    )
    return 0


#: Scenario families replayable through ``repro elastic``.
ELASTIC_SCENARIOS = (
    "random-failures",
    "island-outage",
    "flash-crowd",
    "hetero-expand",
    "rolling-stragglers",
    "gpu-stragglers",
)


def _elastic_timeline(args: argparse.Namespace, num_nodes: int, per_node: int):
    """Build the seeded event timeline of the requested scenario family."""
    from repro.cluster.device import A800_SPEC, TEST_GPU_SPEC
    from repro.elastic import (
        flash_crowd_timeline,
        gpu_straggler_timeline,
        island_outage_timeline,
        random_failure_timeline,
        rolling_straggler_timeline,
    )

    iterations = args.iterations
    if args.scenario == "random-failures":
        return random_failure_timeline(
            num_nodes=num_nodes,
            devices_per_node=per_node,
            total_iterations=iterations,
            num_failures=args.events,
            seed=args.seed,
        )
    if args.scenario == "island-outage":
        return island_outage_timeline(
            node=num_nodes - 1,
            devices_per_node=per_node,
            at_iteration=max(1, iterations // 3),
            recovery_at=max(2, 2 * iterations // 3),
        )
    if args.scenario in ("flash-crowd", "hetero-expand"):
        spec = A800_SPEC if args.scenario == "flash-crowd" else TEST_GPU_SPEC
        return flash_crowd_timeline(
            at_iteration=max(1, iterations // 3),
            num_new_nodes=max(1, args.events),
            devices_per_node=per_node,
            spec=spec,
        )
    if args.scenario == "gpu-stragglers":
        return gpu_straggler_timeline(
            num_nodes=num_nodes,
            devices_per_node=per_node,
            total_iterations=iterations,
            num_episodes=args.events,
            seed=args.seed,
            severity=args.severity,
        )
    return rolling_straggler_timeline(
        num_nodes=num_nodes,
        total_iterations=iterations,
        num_episodes=args.events,
        seed=args.seed,
        severity=args.severity,
    )


def _cmd_elastic(args: argparse.Namespace) -> int:
    import json as _json

    from repro.cluster.device import A800_SPEC
    from repro.elastic import (
        ElasticScenario,
        ElasticTrainingRunner,
        make_policy,
    )
    from repro.experiments.reporting import render_elastic_result

    if args.iterations <= 1:
        return _fail("--iterations must exceed 1")
    if args.events <= 0:
        return _fail("--events must be positive")
    if not 0.0 < args.severity < 1.0:
        return _fail("--severity must be in (0, 1): the remaining throughput fraction")
    if args.debounce <= 0:
        return _fail("--debounce must be positive")
    if args.threshold < 0:
        return _fail("--threshold must be non-negative")
    if args.checkpoint_interval is not None and args.checkpoint_interval <= 0:
        return _fail("--checkpoint-interval must be positive")
    per_node = min(8, args.gpus)
    if args.gpus % per_node != 0:
        return _fail(f"--gpus {args.gpus} is not a multiple of {per_node}")
    num_nodes = args.gpus // per_node
    if args.scenario == "island-outage":
        if num_nodes < 2:
            return _fail(
                "--scenario island-outage needs at least two nodes (--gpus 16+)"
            )
        if args.iterations < 3:
            return _fail("--scenario island-outage needs --iterations of at least 3")

    workload = _workload_from_args(args)
    tasks = workload.tasks()
    timeline = _elastic_timeline(args, num_nodes, per_node)
    scenario = ElasticScenario(
        num_nodes=num_nodes,
        devices_per_node=per_node,
        device_spec=A800_SPEC,
        timeline=timeline,
        total_iterations=args.iterations,
        name=f"{args.scenario}-seed{args.seed}",
    )
    policy = make_policy(
        args.policy, min_groups=args.debounce, threshold=args.threshold
    )
    from repro.elastic import MigrationCostModel

    migration_model = MigrationCostModel(
        checkpoint_interval=args.checkpoint_interval
    )
    runner = ElasticTrainingRunner(
        scenario, policy=policy, migration_model=migration_model
    )
    result = runner.run(tasks)

    document = result.to_document()
    document["workload"] = workload.describe()
    if args.json:
        print(_json.dumps(document, indent=2, sort_keys=True))
    else:
        print(f"workload : {workload.describe()}")
        print(f"scenario : {scenario.name} ({len(timeline)} events)")
        print()
        print(render_elastic_result(result))
    if args.output:
        from pathlib import Path

        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            _json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\nreport written to {path}")
    return 0


#: Composed scenario families replayable through ``repro unified``.
UNIFIED_SCENARIOS = (
    "arrival-during-outage",
    "flash-crowd-degraded",
    "job-churn",
    "dynamic-phases",
)


def _unified_scenario(args: argparse.Namespace, num_nodes: int, per_node: int):
    """Build the seeded :class:`UnifiedScenario` of the requested family."""
    from repro.cluster.device import A800_SPEC
    from repro.elastic import island_outage_timeline
    from repro.unified import (
        UnifiedScenario,
        arrival_during_outage_timeline,
        flash_crowd_on_degraded_timeline,
        job_churn_timeline,
    )

    workload = _workload_from_args(args)
    iterations = args.iterations
    base_tasks = list(workload.tasks())
    initial = tuple(task.name for task in base_tasks)
    pool = {task.name: task for task in base_tasks}
    name = f"{args.scenario}-seed{args.seed}"

    if args.scenario in ("arrival-during-outage", "flash-crowd-degraded"):
        info = MODEL_REGISTRY[args.model]
        needed = len(base_tasks) + 2
        if needed > info.max_tasks:
            raise ValueError(
                f"--scenario {args.scenario} needs 2 spare pool tasks; "
                f"--tasks {len(base_tasks)} leaves none of {args.model}'s "
                f"{info.max_tasks}"
            )
        bigger = WorkloadSpec(
            model=args.model,
            num_tasks=needed,
            num_gpus=args.gpus,
            model_kwargs=workload.model_kwargs,
        )
        arriving = [t for t in bigger.tasks() if t.name not in pool]
        pool.update({task.name: task for task in arriving})
        arriving_names = [task.name for task in arriving]
        if args.scenario == "arrival-during-outage":
            if num_nodes < 2:
                raise ValueError(
                    "--scenario arrival-during-outage needs at least two "
                    "nodes (--gpus 16+)"
                )
            timeline = arrival_during_outage_timeline(
                arriving_tasks=arriving_names,
                outage_node=num_nodes - 1,
                devices_per_node=per_node,
                at_iteration=max(1, iterations // 3),
                recovery_at=max(2, 2 * iterations // 3),
            )
        else:
            timeline = flash_crowd_on_degraded_timeline(
                arriving_tasks=arriving_names,
                num_new_nodes=1,
                devices_per_node=per_node,
                spec=A800_SPEC,
                num_nodes=num_nodes,
                total_iterations=iterations,
                seed=args.seed,
            )
    elif args.scenario == "job-churn":
        # A job resubmitted in place: architecturally identical, new name and
        # weight — the fingerprint misses (weight is canonical) while the
        # plan structure matches, so incremental replanning adopts the whole
        # previous plan.  The replacement is built from the model zoo, which
        # currently supports this for multitask-clip only.
        if args.model != "multitask-clip":
            raise ValueError("--scenario job-churn requires --model multitask-clip")
        import dataclasses as _dc

        from repro.models.multitask_clip import CLIP_TASKS, build_clip_task

        spec = _dc.replace(CLIP_TASKS[1], name=f"{initial[1]}_resubmit")
        resubmitted = build_clip_task(spec)
        resubmitted.weight = 2.0
        pool[resubmitted.name] = resubmitted
        timeline = job_churn_timeline(
            initial,
            replacements=[(initial[1], resubmitted.name)],
            at_iterations=[max(1, iterations // 2)],
        )
    else:  # dynamic-phases
        from repro.dynamic import DynamicWorkloadSchedule

        third = max(1, iterations // 3)
        schedule = DynamicWorkloadSchedule.from_tasks(
            base_tasks,
            phases=[
                (initial, third),
                (initial[:-1] or initial, third),
                (initial, max(1, iterations - 2 * third)),
            ],
        )
        cluster_events = None
        if num_nodes >= 2:
            cluster_events = island_outage_timeline(
                node=num_nodes - 1,
                devices_per_node=per_node,
                at_iteration=third + third // 2,
            )
        return workload, UnifiedScenario.from_dynamic(
            schedule,
            num_nodes=num_nodes,
            devices_per_node=per_node,
            device_spec=A800_SPEC,
            cluster_events=cluster_events,
            name=name,
        )

    return workload, UnifiedScenario(
        num_nodes=num_nodes,
        devices_per_node=per_node,
        device_spec=A800_SPEC,
        timeline=timeline,
        total_iterations=iterations,
        task_pool=pool,
        initial_tasks=initial,
        name=name,
    )


def _cmd_unified(args: argparse.Namespace) -> int:
    import json as _json

    from repro.elastic import make_policy
    from repro.unified import UnifiedRunner

    if args.iterations <= 2:
        return _fail("--iterations must exceed 2")
    if args.debounce <= 0:
        return _fail("--debounce must be positive")
    if args.threshold < 0:
        return _fail("--threshold must be non-negative")
    if args.tasks is not None and args.tasks < 2:
        return _fail("--tasks must be at least 2 (churn and phases need a pool)")
    per_node = min(8, args.gpus)
    if args.gpus % per_node != 0:
        return _fail(f"--gpus {args.gpus} is not a multiple of {per_node}")
    num_nodes = args.gpus // per_node
    try:
        workload, scenario = _unified_scenario(args, num_nodes, per_node)
    except ValueError as exc:
        return _fail(str(exc))
    policy = make_policy(
        args.policy, min_groups=args.debounce, threshold=args.threshold
    )

    incremental = args.mode != "full"
    result = UnifiedRunner(scenario, policy=policy, incremental=incremental).run()
    document = result.to_document()
    document["workload"] = workload.describe()

    if args.mode == "both":
        reference = UnifiedRunner(scenario, policy=policy, incremental=False).run()
        if _json.dumps(reference.to_document(), sort_keys=True) != _json.dumps(
            result.to_document(), sort_keys=True
        ):  # pragma: no cover - equivalence is pinned by the test suite
            return _fail(
                "incremental and full-replan reports differ — this is a bug; "
                "please file it with the exact command line"
            )

    if args.json:
        print(_json.dumps(document, indent=2, sort_keys=True))
    else:
        print(f"workload   : {workload.describe()}")
        print(f"scenario   : {scenario.name} ({len(scenario.timeline)} events)")
        print(f"mode       : {result.mode}"
              + (" (verified == full replan)" if args.mode == "both" else ""))
        print(f"policy     : {result.policy}")
        print()
        print(f"baseline   : {result.baseline_seconds:.1f} s "
              f"({result.baseline_iteration_seconds * 1e3:.1f} ms/iter)")
        print(f"training   : {result.training_seconds:.1f} s")
        print(f"overhead   : {result.overhead_seconds:.2f} s "
              f"(replan {result.replan_charged_seconds:.2f} s, "
              f"migration {result.migration_seconds:.2f} s)")
        print(f"slowdown   : {result.cumulative_slowdown:.3f}x vs no-event run")
        print(f"replans    : {result.replan_count} "
              f"({result.cache_hits} cache hits, "
              f"{result.task_set_changes} task-set changes)")
        print(f"reuse      : {result.levels_reused} MetaLevel allocations adopted, "
              f"planner wall-clock {result.replan_measured_seconds * 1e3:.1f} ms "
              f"(out-of-band)")
        for outcome in result.outcomes:
            kinds = [e.kind for e in outcome.cluster_events] + [
                e.kind for e in outcome.workload_events
            ]
            action = "replan" if outcome.replanned else "stay"
            print(f"  @{outcome.iteration:>5} {'+'.join(kinds):<40} -> {action}, "
                  f"{outcome.num_devices} GPUs, "
                  f"{len(outcome.active_tasks)} tasks")
    if args.output:
        from pathlib import Path

        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            _json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\nreport written to {path}")
    return 0


def _traced_run(workload, num_workers: int):
    """Run ``workload`` through the plan service + simulator under tracing.

    Returns ``(spans, iteration_result, metrics_delta)``; the pipeline is the
    shared measurement protocol of ``repro trace`` and ``repro obs report``:
    planning goes through a :class:`~repro.service.server.PlanService` (so
    the trace contains the request lifecycle and the worker-thread planner
    stages) and one simulated iteration runs on the resulting plan.
    """
    from repro.core.planner import ExecutionPlanner
    from repro.obs import get_metrics, get_tracer
    from repro.runtime.engine import RuntimeEngine
    from repro.service import PlanService

    tasks = workload.tasks()
    cluster = workload.cluster()
    tracer = get_tracer()
    tracer.clear()
    metrics = get_metrics()
    before = metrics.snapshot()
    with tracer.capture():
        with PlanService(
            ExecutionPlanner(cluster), num_workers=num_workers
        ) as service:
            plan = service.plan(list(tasks))
        result = RuntimeEngine(plan).run_iteration()
    return tracer.records(), result, metrics.snapshot().diff(before)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import TraceValidationError, chrome_trace_document, write_chrome_trace

    if args.workers <= 0:
        return _fail("--workers must be positive")
    workload = _workload_from_args(args)
    spans, result, metrics_delta = _traced_run(workload, args.workers)
    document = chrome_trace_document(
        spans,
        utilization=result.trace,
        metrics=metrics_delta,
        metadata={
            "workload": workload.describe(),
            "simulated_iteration_seconds": result.iteration_time,
        },
    )
    try:
        path = write_chrome_trace(args.out, document)
    except TraceValidationError as exc:  # pragma: no cover - exporter bug guard
        return _fail(str(exc))
    num_segments = len(result.trace.segments)
    print(f"workload         : {workload.describe()}")
    print(f"wall-clock spans : {len(spans)}")
    print(f"sim segments     : {num_segments} "
          f"(simulated iteration {result.iteration_time * 1e3:.1f} ms)")
    print(f"trace written to {path}")
    print("open it in Perfetto (https://ui.perfetto.dev) or chrome://tracing")
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.obs import (
        TraceValidationError,
        get_metrics,
        render_span_tree,
        spans_from_chrome_trace,
        validate_chrome_trace,
    )

    if args.input:
        path = Path(args.input)
        if not path.is_file():
            return _fail(f"no such trace file: {path}")
        try:
            document = _json.loads(path.read_text(encoding="utf-8"))
        except _json.JSONDecodeError as exc:
            return _fail(f"invalid JSON in {path}: {exc}")
        try:
            validate_chrome_trace(document)
        except TraceValidationError as exc:
            return _fail(str(exc))
        print(render_span_tree(spans_from_chrome_trace(document)))
        return 0
    if args.model is None:
        return _fail("obs report needs --input TRACE.json or a workload (--model ...)")
    workload = _workload_from_args(args)
    spans, _, metrics_delta = _traced_run(workload, num_workers=2)
    print(render_span_tree(spans))
    print()
    print(get_metrics().render(metrics_delta))
    return 0


def _lifecycle_summary(lifecycle) -> dict:
    """JSON-friendly summary of one reconstructed request lifecycle."""
    return {
        "trace_id": lifecycle.trace_id,
        "tenant": lifecycle.tenant,
        "topology": lifecycle.topology,
        "fingerprint": lifecycle.fingerprint,
        "outcome": lifecycle.outcome,
        "tier": lifecycle.tier,
        "attempts": lifecycle.attempts,
        "retries": lifecycle.retries,
        "requeues": lifecycle.requeues,
        "leader": lifecycle.leader,
        "faults": list(lifecycle.faults),
        "complete": lifecycle.complete,
    }


def _load_journal(path_arg: str):
    """Read + schema-validate a journal file; returns (events, error_exit)."""
    from pathlib import Path

    from repro.obs import JournalError, TelemetryJournal

    path = Path(path_arg)
    if not path.is_file():
        return None, _fail(f"no such journal file: {path}")
    try:
        return TelemetryJournal.read(path), None
    except JournalError as exc:
        return None, _fail(str(exc))


def _cmd_obs_journal(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import attribution_report, reconstruct_requests

    events, error = _load_journal(args.path)
    if events is None:
        return error
    lifecycles = reconstruct_requests(events)

    if args.request is not None:
        lifecycle = lifecycles.get(args.request)
        if lifecycle is None:
            return _fail(
                f"no request {args.request!r} in {args.path} "
                f"({len(lifecycles)} requests journaled)"
            )
        if args.json:
            record = _lifecycle_summary(lifecycle)
            record["events"] = lifecycle.events
            print(_json.dumps(record, indent=2, sort_keys=True))
            return 0
        print(f"request     : {lifecycle.trace_id}")
        print(f"tenant      : {lifecycle.tenant or '-'}")
        print(f"topology    : {lifecycle.topology or '-'}")
        print(f"fingerprint : {lifecycle.fingerprint or '-'}")
        print(f"outcome     : {lifecycle.outcome or '?'} "
              f"(tier {lifecycle.tier or '-'})")
        print(f"attempts    : {lifecycle.attempts} "
              f"({lifecycle.retries} retries, {lifecycle.requeues} requeues)")
        if lifecycle.leader:
            print(f"coalesced   : behind leader {lifecycle.leader}")
        rows = [
            [
                str(event["seq"]),
                event["kind"],
                event.get("tier") or "",
                "" if event.get("attempt") is None else str(event["attempt"]),
                event.get("outcome") or "",
                event.get("fault") or "",
            ]
            for event in lifecycle.events
        ]
        print(
            format_table(
                ["seq", "event", "tier", "attempt", "outcome", "fault"],
                rows,
                title="event history",
            )
        )
        return 0

    selected = lifecycles
    if args.tenant is not None:
        selected = {
            trace_id: lifecycle
            for trace_id, lifecycle in lifecycles.items()
            if lifecycle.tenant == args.tenant
        }
        if not selected:
            return _fail(f"no requests for tenant {args.tenant!r} in {args.path}")
    report = attribution_report(events)
    if args.json:
        print(
            _json.dumps(
                {
                    "attribution": report,
                    "requests": [
                        _lifecycle_summary(l) for l in selected.values()
                    ],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    rows = [
        [
            lifecycle.trace_id,
            lifecycle.tenant or "-",
            lifecycle.outcome or "?",
            lifecycle.tier or "-",
            str(lifecycle.attempts),
            str(lifecycle.retries),
            ",".join(lifecycle.faults) or "-",
        ]
        for lifecycle in selected.values()
    ]
    title = f"request lifecycles ({len(selected)})"
    if args.tenant is not None:
        title += f", tenant {args.tenant}"
    print(
        format_table(
            ["trace id", "tenant", "outcome", "tier", "attempts", "retries",
             "faults"],
            rows,
            title=title,
        )
    )

    def _census(counts: dict) -> str:
        return ", ".join(f"{k} {v}" for k, v in counts.items()) or "none"

    print()
    print(f"events      : {report['events']} "
          f"({sum(report['unattributed'].values())} unattributed)")
    print(f"requests    : {report['requests']} ({report['complete']} complete, "
          f"{report['orphan_requests']} orphan)")
    print(f"outcomes    : {_census(report['outcomes'])}")
    print(f"faults      : {_census(report['faults'])}")
    print(f"retries     : {report['retries']}")
    print(f"degraded    : {_census(report['degraded_tiers'])}")
    print(f"store-scoped: {_census(report['unattributed'])}")
    return 0


def _cmd_obs_slo(args: argparse.Namespace) -> int:
    from repro.obs import SloPolicy, reconstruct_requests, slo_from_outcomes

    events, error = _load_journal(args.input)
    if events is None:
        return error
    lifecycles = reconstruct_requests(events)
    resolved = [
        (lifecycle.outcome, lifecycle.tenant)
        for lifecycle in lifecycles.values()
        if lifecycle.outcome is not None
    ]
    policy = SloPolicy(
        availability_target=args.availability_target,
        max_shed_rate=args.max_shed_rate,
        max_degraded_rate=args.max_degraded_rate,
    )
    tracker = slo_from_outcomes(resolved, policy)
    if args.prometheus:
        print(tracker.render_prometheus(), end="")
        return 0
    print(tracker.render())
    print()
    print(
        f"{len(resolved)} resolved requests from {args.input}; latency "
        "percentiles read 0 because the journal carries no wall-clock — "
        "use serve-bench --slo for live latency SLOs"
    )
    return 0


def _write_telemetry(journal, slo, journal_path) -> None:
    """Shared serve-bench epilogue: persist the journal, print the SLO table."""
    if journal is not None and journal_path is not None:
        from repro.obs import attribution_report

        path = journal.write(journal_path)
        report = attribution_report(journal.events())
        print(
            f"\ntelemetry journal : {path} ({report['events']} events, "
            f"{report['complete']}/{report['requests']} lifecycles complete)"
        )
    if slo is not None:
        print("\n" + slo.render())


def _run_fleet_campaign(
    args: argparse.Namespace,
    workload,
    *,
    scenario: str,
    num_clients: int,
    journal,
    slo,
) -> int:
    """Shared fleet-bench/serve-bench body: replay, report, gate, exit code."""
    from repro.experiments.load_replay import (
        SCENARIOS,
        LoadReplayError,
        run_load_replay,
    )

    if scenario not in SCENARIOS:
        return _fail(
            f"unknown scenario {scenario!r}; known: {', '.join(SCENARIOS)}"
        )
    if args.rate <= 0:
        return _fail("--rate must be positive")
    if args.shards <= 0:
        return _fail("--shards must be positive")
    try:
        result = run_load_replay(
            workload,
            num_requests=args.requests,
            num_unique=args.unique,
            rate=args.rate,
            scenario=scenario,
            real_shards=args.shards,
            num_clients=num_clients,
            seed=args.seed,
            journal=journal,
            slo=slo,
        )
    except LoadReplayError as exc:
        return _fail(str(exc))
    print(
        format_table(
            ["metric", "value"],
            result.as_rows(),
            title=f"plan-service fleet replay, {workload.describe()}",
        )
    )
    print(
        f"\nsimulated scaling 1->4 shards: {result.scaling_ratio(1, 4):.2f}x"
        f"   1->8 shards: {result.scaling_ratio(1, 8):.2f}x"
    )
    _write_telemetry(journal, slo, args.journal)
    if result.failed_requests:
        return _fail(
            f"{result.failed_requests} of {result.num_requests} fleet "
            "requests failed"
        )
    if result.payload_match_rate < 1.0:
        return _fail(
            f"{result.payload_mismatches} served plan payloads differ from "
            "the uncached single-planner reference"
        )
    return 0


def _cmd_fleet_bench(args: argparse.Namespace) -> int:
    if args.requests <= 0:
        return _fail("--requests must be positive")
    if args.unique <= 0:
        return _fail("--unique must be positive")
    if args.clients <= 0:
        return _fail("--clients must be positive")
    workload = _workload_from_args(args)
    journal = slo = None
    if args.journal is not None:
        from repro.obs import TelemetryJournal

        journal = TelemetryJournal()
    if args.slo:
        from repro.obs import SloTracker

        slo = SloTracker()
    return _run_fleet_campaign(
        args,
        workload,
        scenario=args.scenario,
        num_clients=args.clients,
        journal=journal,
        slo=slo,
    )


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    if args.requests <= 0:
        return _fail("--requests must be positive")
    if args.unique <= 0:
        return _fail("--unique must be positive")
    if args.workers <= 0:
        return _fail("--workers must be positive")
    if args.batch_size <= 0:
        return _fail("--batch-size must be positive")
    if args.tenants < 0:
        return _fail("--tenants must be non-negative")
    workload = _workload_from_args(args)
    journal = slo = None
    if args.journal is not None:
        from repro.obs import TelemetryJournal

        journal = TelemetryJournal()
    if args.slo or args.tenants > 0:
        from repro.obs import SloTracker

        slo = SloTracker()
    if args.shards:
        # --shards N routes the whole run through the fleet replay protocol.
        return _run_fleet_campaign(
            args,
            workload,
            scenario="flash-crowd",
            num_clients=4,
            journal=journal,
            slo=slo,
        )
    if args.fault_profile is not None:
        from repro.faults import FAULT_PROFILES

        if args.fault_profile not in FAULT_PROFILES:
            return _fail(
                f"unknown fault profile {args.fault_profile!r}; "
                f"known: {', '.join(sorted(FAULT_PROFILES))}"
            )
        chaos = run_resilience_benchmark(
            workload,
            num_requests=args.requests,
            num_unique=args.unique,
            profile=args.fault_profile,
            seed=args.fault_seed,
            num_workers=args.workers,
            max_batch_size=args.batch_size,
            journal=journal,
            slo=slo,
            num_tenants=args.tenants,
        )
        print(
            format_table(
                ["metric", "value"],
                chaos.as_rows(),
                title=f"plan service resilience, {workload.describe()}",
            )
        )
        print("\n" + chaos.stats.render())
        _write_telemetry(journal, slo, args.journal)
        if chaos.availability < 1.0:
            return _fail(
                f"only {chaos.availability * 100:.1f}% of requests resolved "
                "with a plan under the fault campaign"
            )
        if chaos.payload_match_rate < 1.0:
            return _fail(
                f"{chaos.payload_total - chaos.payload_matches} served plans "
                "differ from the fault-free solves"
            )
        return 0
    result = run_service_benchmark(
        workload,
        num_requests=args.requests,
        num_unique=args.unique,
        num_workers=args.workers,
        max_batch_size=args.batch_size,
        seed=args.seed,
        journal=journal,
        slo=slo,
        num_tenants=args.tenants,
    )
    if result.failed_requests:
        return _fail(
            f"{result.failed_requests} of {result.num_requests} service requests failed"
        )
    print(
        format_table(
            ["metric", "value"],
            result.as_rows(),
            title=f"plan service throughput, {workload.describe()}",
        )
    )
    print("\n" + result.stats.render())
    _write_telemetry(journal, slo, args.journal)
    return 0


#: ``--help`` epilogs: every subcommand points at its handbook page.
DOCS_ARCHITECTURE = "Docs: docs/architecture.md (pipeline, packages, plan lifecycle)"
DOCS_EVENTS = "Docs: docs/events.md (event model, ordering rules, replan policies)"
DOCS_OBSERVABILITY = "Docs: docs/observability.md (spans, metrics, Perfetto workflow)"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spindle reproduction: wavefront scheduling for MT MM training",
        epilog="Handbook: docs/architecture.md, docs/events.md, docs/observability.md",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    plan_parser = subparsers.add_parser(
        "plan", help="run the execution planner", epilog=DOCS_ARCHITECTURE
    )
    _add_workload_arguments(plan_parser)
    plan_parser.add_argument("--output", default=None, help="write the plan as JSON")
    plan_parser.add_argument(
        "--json", action="store_true", help="print the plan document as JSON"
    )
    plan_parser.set_defaults(func=_cmd_plan)

    compare_parser = subparsers.add_parser(
        "compare",
        help="compare Spindle with the baseline systems",
        epilog=DOCS_ARCHITECTURE,
    )
    _add_workload_arguments(compare_parser)
    compare_parser.add_argument(
        "--systems",
        nargs="+",
        choices=sorted(SYSTEM_CLASSES),
        default=None,
        help="systems to run (default: the Fig. 8 set)",
    )
    compare_parser.set_defaults(func=_cmd_compare)

    scaling_parser = subparsers.add_parser(
        "scaling",
        help="print the MetaOp scaling curves (Fig. 4)",
        epilog=DOCS_ARCHITECTURE,
    )
    _add_workload_arguments(scaling_parser)
    scaling_parser.set_defaults(func=_cmd_scaling)

    serve_parser = subparsers.add_parser(
        "serve-bench",
        help="benchmark the caching plan service against the uncached planner",
        epilog=DOCS_ARCHITECTURE,
    )
    _add_workload_arguments(serve_parser)
    serve_parser.add_argument(
        "--requests", type=int, default=48, help="length of the request stream"
    )
    serve_parser.add_argument(
        "--unique", type=int, default=4, help="distinct workloads in the stream"
    )
    serve_parser.add_argument(
        "--workers", type=int, default=4, help="plan service worker threads"
    )
    serve_parser.add_argument(
        "--batch-size", type=int, default=8, help="max requests drained per worker wake-up"
    )
    serve_parser.add_argument(
        "--seed", type=int, default=0, help="seed of the request stream shuffle"
    )
    serve_parser.add_argument(
        "--fault-profile",
        default=None,
        help="run the resilience protocol instead, injecting faults from this "
        "named profile (none, mild, chaos); see docs/resilience.md",
    )
    serve_parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the injected fault schedule (same seed, same faults)",
    )
    serve_parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="write the request-scoped telemetry journal (JSONL) to PATH; "
        "inspect it with 'repro obs journal PATH'",
    )
    serve_parser.add_argument(
        "--tenants",
        type=int,
        default=0,
        metavar="N",
        help="label request i with tenant-(i mod N) and print per-tenant "
        "SLO rollups (0 disables tenant labelling)",
    )
    serve_parser.add_argument(
        "--slo",
        action="store_true",
        help="track and print the sliding-window SLO table for the run",
    )
    serve_parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run the N-shard fleet replay protocol instead of the single "
        "service (see 'repro fleet-bench' for the full knob set)",
    )
    serve_parser.add_argument(
        "--rate",
        type=float,
        default=20000.0,
        metavar="R",
        help="offered request rate (req/s) of the fleet replay schedule "
        "(only with --shards)",
    )
    serve_parser.set_defaults(func=_cmd_serve_bench)

    fleet_parser = subparsers.add_parser(
        "fleet-bench",
        help="replay a flash-crowd request stream against the sharded plan-"
        "service fleet, with a deterministic virtual-time shard sweep",
        epilog=DOCS_ARCHITECTURE,
    )
    _add_workload_arguments(fleet_parser)
    fleet_parser.add_argument(
        "--requests", type=int, default=400, help="length of the request stream"
    )
    fleet_parser.add_argument(
        "--unique", type=int, default=48, help="distinct workloads in the stream"
    )
    fleet_parser.add_argument(
        "--scenario",
        default="flash-crowd",
        help="arrival schedule shape: steady or flash-crowd",
    )
    fleet_parser.add_argument(
        "--shards",
        type=int,
        default=2,
        metavar="N",
        help="shard count of the live fleet driven in phase 1",
    )
    fleet_parser.add_argument(
        "--rate",
        type=float,
        default=20000.0,
        metavar="R",
        help="offered request rate (req/s) of the arrival schedule",
    )
    fleet_parser.add_argument(
        "--clients",
        type=int,
        default=4,
        metavar="N",
        help="closed-loop client threads driving the live fleet",
    )
    fleet_parser.add_argument(
        "--seed", type=int, default=0, help="seed of the stream and schedule"
    )
    fleet_parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="write the request-scoped telemetry journal (JSONL) to PATH; "
        "inspect it with 'repro obs journal PATH'",
    )
    fleet_parser.add_argument(
        "--slo",
        action="store_true",
        help="track and print the sliding-window SLO table for the run",
    )
    fleet_parser.set_defaults(func=_cmd_fleet_bench)

    elastic_parser = subparsers.add_parser(
        "elastic",
        help="replay a seeded elastic-cluster scenario with event-driven replanning",
        epilog=DOCS_EVENTS,
    )
    _add_workload_arguments(elastic_parser)
    elastic_parser.add_argument(
        "--scenario",
        choices=ELASTIC_SCENARIOS,
        default="random-failures",
        help="scenario family to replay",
    )
    elastic_parser.add_argument(
        "--iterations", type=int, default=200, help="total training iterations"
    )
    elastic_parser.add_argument(
        "--events",
        type=int,
        default=4,
        help="failures / joining nodes / straggler episodes, per scenario",
    )
    elastic_parser.add_argument(
        "--seed", type=int, default=0, help="seed of the event generator"
    )
    elastic_parser.add_argument(
        "--policy",
        choices=("immediate", "debounced", "threshold"),
        default="threshold",
        help="replan policy for non-forced events",
    )
    elastic_parser.add_argument(
        "--threshold",
        type=float,
        default=0.1,
        help="slowdown threshold of the 'threshold' policy",
    )
    elastic_parser.add_argument(
        "--debounce",
        type=int,
        default=2,
        help="event groups absorbed per replan by the 'debounced' policy",
    )
    elastic_parser.add_argument(
        "--severity",
        type=float,
        default=0.5,
        help="remaining throughput fraction of straggler episodes",
    )
    elastic_parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        help="iterations between checkpoints; restores re-execute the "
        "iterations since the last checkpoint (default: no lost-progress term)",
    )
    elastic_parser.add_argument(
        "--json", action="store_true", help="print the canonical report as JSON"
    )
    elastic_parser.add_argument(
        "--output", default=None, help="write the canonical JSON report to a file"
    )
    elastic_parser.set_defaults(func=_cmd_elastic)

    unified_parser = subparsers.add_parser(
        "unified",
        help="replay composed workload + cluster events through the unified "
        "runtime with incremental replanning",
        epilog=DOCS_EVENTS,
    )
    _add_workload_arguments(unified_parser)
    unified_parser.add_argument(
        "--scenario",
        choices=UNIFIED_SCENARIOS,
        default="arrival-during-outage",
        help="composed scenario family to replay",
    )
    unified_parser.add_argument(
        "--iterations", type=int, default=300, help="total training iterations"
    )
    unified_parser.add_argument(
        "--seed", type=int, default=0, help="seed of the event generators"
    )
    unified_parser.add_argument(
        "--mode",
        choices=("incremental", "full", "both"),
        default="incremental",
        help="planner path: incremental replanning, the full-replan "
        "reference, or both with an equivalence check",
    )
    unified_parser.add_argument(
        "--policy",
        choices=("immediate", "debounced", "threshold"),
        default="threshold",
        help="replan policy for non-forced event groups",
    )
    unified_parser.add_argument(
        "--threshold",
        type=float,
        default=0.1,
        help="slowdown threshold of the 'threshold' policy",
    )
    unified_parser.add_argument(
        "--debounce",
        type=int,
        default=2,
        help="event groups absorbed per replan by the 'debounced' policy",
    )
    unified_parser.add_argument(
        "--json", action="store_true", help="print the canonical report as JSON"
    )
    unified_parser.add_argument(
        "--output", default=None, help="write the canonical JSON report to a file"
    )
    unified_parser.set_defaults(func=_cmd_unified)

    trace_parser = subparsers.add_parser(
        "trace",
        help="capture a Chrome trace_event JSON of planning + simulated execution",
        epilog=DOCS_OBSERVABILITY,
    )
    _add_workload_arguments(trace_parser)
    trace_parser.add_argument(
        "--out", default="trace.json", help="path of the Chrome trace JSON to write"
    )
    trace_parser.add_argument(
        "--workers", type=int, default=2, help="plan service worker threads"
    )
    trace_parser.set_defaults(func=_cmd_trace)

    obs_parser = subparsers.add_parser(
        "obs",
        help="observability reports over spans and the metrics registry",
        epilog=DOCS_OBSERVABILITY,
    )
    obs_subparsers = obs_parser.add_subparsers(dest="obs_command", required=True)
    report_parser = obs_subparsers.add_parser(
        "report",
        help="render the span tree of a captured trace, or trace a workload live",
        epilog=DOCS_OBSERVABILITY,
    )
    report_parser.add_argument(
        "--input",
        default=None,
        help="a trace.json captured by 'repro trace'; omitted, a workload runs live",
    )
    report_parser.add_argument(
        "--model",
        choices=sorted(MODEL_REGISTRY),
        default=None,
        help="workload from the model zoo (live mode)",
    )
    report_parser.add_argument("--tasks", type=int, default=None, help="number of tasks")
    report_parser.add_argument("--gpus", type=int, default=16, help="cluster size in GPUs")
    report_parser.add_argument(
        "--model-size", default=None, help="model size variant (qwen-val only)"
    )
    report_parser.set_defaults(func=_cmd_obs_report)

    journal_parser = obs_subparsers.add_parser(
        "journal",
        help="inspect a telemetry journal: lifecycles, attribution census, "
        "or one request's event history",
        epilog=DOCS_OBSERVABILITY,
    )
    journal_parser.add_argument(
        "path", help="a telemetry .jsonl written by 'repro serve-bench --journal'"
    )
    journal_parser.add_argument(
        "--request",
        default=None,
        metavar="TRACE_ID",
        help="show the full event history of one request",
    )
    journal_parser.add_argument(
        "--tenant",
        default=None,
        help="only list requests submitted under this tenant label",
    )
    journal_parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of tables"
    )
    journal_parser.set_defaults(func=_cmd_obs_journal)

    slo_parser = obs_subparsers.add_parser(
        "slo",
        help="per-tenant SLO table (availability, shed/degraded rates, "
        "error-budget burn) from a telemetry journal",
        epilog=DOCS_OBSERVABILITY,
    )
    slo_parser.add_argument(
        "--input",
        required=True,
        metavar="JOURNAL",
        help="a telemetry .jsonl written by 'repro serve-bench --journal'",
    )
    slo_parser.add_argument(
        "--availability-target",
        type=float,
        default=0.999,
        help="availability objective the burn rate is measured against",
    )
    slo_parser.add_argument(
        "--max-shed-rate",
        type=float,
        default=None,
        help="compliance ceiling on the shed fraction (default: disabled)",
    )
    slo_parser.add_argument(
        "--max-degraded-rate",
        type=float,
        default=None,
        help="compliance ceiling on the degraded fraction (default: disabled)",
    )
    slo_parser.add_argument(
        "--prometheus",
        action="store_true",
        help="emit Prometheus-style text exposition instead of the table",
    )
    slo_parser.set_defaults(func=_cmd_obs_slo)

    add_bench_subparsers(subparsers)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream closed early (`repro obs journal ... | head`); suppress
        # the traceback and the interpreter-shutdown flush error on stdout.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
