"""Structured span tracing: nested, thread-local, near-free when disabled.

The tracer is the wall-clock half of the observability layer (the metrics
registry in :mod:`repro.obs.metrics` is the aggregate half).  Components wrap
their phases in context-manager *spans*:

    with tracer.span("planner.graph_contraction", category="planner"):
        ...

Spans nest through a **thread-local** stack, so the plan service's worker
pool, the elastic runner and the benchmark harness all trace correctly under
concurrency: a worker thread's spans parent onto that worker's own open span,
never onto another thread's.  Finished spans are appended to a shared record
list as immutable :class:`SpanRecord` values, ready for the Chrome
``trace_event`` exporter and the text tree report in
:mod:`repro.obs.export`.

Two entry points trade overhead against guaranteed timing:

``tracer.span(name, ...)``
    The hot-path form.  When the tracer is disabled it returns a stateless
    no-op singleton — no allocation, no clock reads — so instrumented code
    costs essentially nothing in production runs.

``tracer.timed(name, ...)``
    Always measures (the span's ``seconds`` attribute is valid even when
    tracing is off) but records only when enabled.  This is what timing
    migrations use: the number a report carries and the span a trace shows
    come from the *same* clock window, so they can never disagree.

The module-level default tracer (:func:`get_tracer`) starts disabled unless
the ``REPRO_OBS`` environment variable is set to a non-empty value other
than ``0``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from itertools import count
from typing import Any, Callable, Iterator

from contextlib import contextmanager


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: what ran, where, for how long, under what parent."""

    name: str
    category: str
    start: float
    duration: float
    thread_id: int
    thread_name: str
    span_id: int
    parent_id: int | None
    depth: int
    attributes: dict[str, Any]

    @property
    def end(self) -> float:
        return self.start + self.duration


class _NoopSpan:
    """Stateless do-nothing span; the disabled tracer's singleton fast path."""

    __slots__ = ()

    #: Disabled spans report zero seconds; use :meth:`SpanTracer.timed` when
    #: the measured duration must be valid regardless of tracing state.
    seconds = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Span:
    """An in-progress span; use as a context manager.

    ``seconds`` is always measured.  The span registers on its thread's stack
    and appends a :class:`SpanRecord` on exit only when ``record`` is true.
    """

    __slots__ = (
        "_tracer",
        "_record",
        "_start",
        "name",
        "category",
        "attributes",
        "seconds",
        "span_id",
        "parent_id",
        "depth",
    )

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        category: str,
        attributes: dict[str, Any],
        record: bool,
    ) -> None:
        self._tracer = tracer
        self._record = record
        self.name = name
        self.category = category
        self.attributes = attributes
        self.seconds = 0.0
        self.span_id = -1
        self.parent_id: int | None = None
        self.depth = 0

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes; chainable, valid until exit."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        if self._record:
            stack = self._tracer._stack()
            self.span_id = self._tracer._next_id()
            if stack:
                self.parent_id = stack[-1].span_id
            self.depth = len(stack)
            stack.append(self)
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        end = self._tracer._clock()
        self.seconds = end - self._start
        if self._record:
            stack = self._tracer._stack()
            if stack and stack[-1] is self:
                stack.pop()
            thread = threading.current_thread()
            self._tracer._append(
                SpanRecord(
                    name=self.name,
                    category=self.category,
                    start=self._start,
                    duration=self.seconds,
                    thread_id=thread.ident or 0,
                    thread_name=thread.name,
                    span_id=self.span_id,
                    parent_id=self.parent_id,
                    depth=self.depth,
                    attributes=dict(self.attributes),
                )
            )
        return False


class SpanTracer:
    """Collects spans from any number of threads into one record list."""

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        enabled: bool = False,
    ) -> None:
        self._clock = clock
        self._enabled = enabled
        self._records: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = count()

    # ------------------------------------------------------------- span entry
    def span(self, name: str, category: str = "", **attributes: Any):
        """A recording span when enabled; the free no-op singleton otherwise."""
        if not self._enabled:
            return NOOP_SPAN
        return Span(self, name, category, attributes, record=True)

    def timed(self, name: str, category: str = "", **attributes: Any) -> Span:
        """A span whose ``seconds`` is measured even with tracing disabled.

        Recording still only happens when the tracer is enabled; use this
        wherever the measured duration feeds a report, so the report and the
        trace share one clock window.
        """
        return Span(self, name, category, attributes, record=self._enabled)

    # ----------------------------------------------------------------- state
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    @contextmanager
    def capture(self) -> Iterator["SpanTracer"]:
        """Enable tracing for the block, restoring the prior state after."""
        previous = self._enabled
        self._enabled = True
        try:
            yield self
        finally:
            self._enabled = previous

    # --------------------------------------------------------------- records
    def records(self) -> list[SpanRecord]:
        """Snapshot of every finished span, in completion order."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # ------------------------------------------------------------- internals
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self) -> int:
        # itertools.count.__next__ is atomic under the GIL.
        return next(self._ids)

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "") not in ("", "0")


_GLOBAL_TRACER = SpanTracer(enabled=_env_enabled())


def get_tracer() -> SpanTracer:
    """The process-wide default tracer every instrumented component uses."""
    return _GLOBAL_TRACER
