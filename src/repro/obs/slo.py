"""Per-tenant SLO tracking over a sliding window of request outcomes.

The plan service reports every resolved request to an :class:`SloTracker`
(outcome, latency, tenant, topology, tier).  The tracker keeps bounded
sliding windows — globally, per tenant and per topology — and folds each
into an :class:`SloReport`: p50/p95/p99 latency, availability, shed /
degraded / error rates, and error-budget burn against the declared
:class:`SloPolicy` targets.

Availability counts served *and* degraded responses as successes (a
degraded plan is still a plan; the degraded *rate* is tracked separately
against its own target).  Error-budget burn is the ratio of observed
unavailability to the policy's allowance: burn < 1 means the window is
inside budget, burn = 2 means failing twice as fast as the budget permits.

Reports export two ways: :meth:`SloTracker.to_bench_metrics` (flat floats
for the benchmark harness) and :meth:`SloTracker.render_prometheus`
(text exposition for scrape-style consumption).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, Tuple

from .metrics import percentile

#: Outcomes mirroring ``repro.service.resilience`` (kept as literals so the
#: obs layer stays import-free of the service layer).
_SUCCESS_OUTCOMES = frozenset({"served", "degraded"})


@dataclass(frozen=True)
class SloPolicy:
    """Declared service-level objectives for a sliding window."""

    #: Latency targets, in seconds (``None`` disables the objective).
    p95_latency_seconds: float | None = None
    p99_latency_seconds: float | None = None
    #: Fraction of requests that must succeed (served or degraded).
    availability_target: float = 0.999
    #: Ceilings on the shed / degraded fractions (``None`` disables).
    max_shed_rate: float | None = None
    max_degraded_rate: float | None = None

    def error_budget(self) -> float:
        """Allowed unavailable fraction (0 when the target is 100%)."""
        return max(0.0, 1.0 - self.availability_target)


#: A recorded sample: (outcome, latency_seconds).
_Sample = Tuple[str, float]


@dataclass(frozen=True)
class SloReport:
    """One window's observed service levels versus policy."""

    scope: str
    count: int
    availability: float
    p50_latency_seconds: float
    p95_latency_seconds: float
    p99_latency_seconds: float
    shed_rate: float
    degraded_rate: float
    error_rate: float
    #: Unavailability / error budget; ``0.0`` when the budget is infinite
    #: (availability target of 0) or the window is empty.
    error_budget_burn: float
    #: Whether every enabled objective is met in this window.
    compliant: bool

    def as_dict(self) -> dict:
        return {
            "scope": self.scope,
            "count": self.count,
            "availability": self.availability,
            "p50_latency_seconds": self.p50_latency_seconds,
            "p95_latency_seconds": self.p95_latency_seconds,
            "p99_latency_seconds": self.p99_latency_seconds,
            "shed_rate": self.shed_rate,
            "degraded_rate": self.degraded_rate,
            "error_rate": self.error_rate,
            "error_budget_burn": self.error_budget_burn,
            "compliant": self.compliant,
        }


def _fold(scope: str, samples: Iterable[_Sample], policy: SloPolicy) -> SloReport:
    outcomes = []
    latencies = []
    for outcome, latency in samples:
        outcomes.append(outcome)
        if outcome in _SUCCESS_OUTCOMES:
            latencies.append(latency)
    count = len(outcomes)
    if count == 0:
        return SloReport(
            scope=scope,
            count=0,
            availability=1.0,
            p50_latency_seconds=0.0,
            p95_latency_seconds=0.0,
            p99_latency_seconds=0.0,
            shed_rate=0.0,
            degraded_rate=0.0,
            error_rate=0.0,
            error_budget_burn=0.0,
            compliant=True,
        )
    successes = sum(1 for o in outcomes if o in _SUCCESS_OUTCOMES)
    availability = successes / count
    shed_rate = outcomes.count("shed") / count
    degraded_rate = outcomes.count("degraded") / count
    error_rate = outcomes.count("error") / count
    ordered = sorted(latencies)
    p50 = percentile(ordered, 0.50) if ordered else 0.0
    p95 = percentile(ordered, 0.95) if ordered else 0.0
    p99 = percentile(ordered, 0.99) if ordered else 0.0
    budget = policy.error_budget()
    unavailability = 1.0 - availability
    if budget > 0.0:
        burn = unavailability / budget
    else:
        burn = 0.0 if unavailability == 0.0 else float("inf")
    compliant = availability >= availability_floor(policy)
    if policy.p95_latency_seconds is not None and p95 > policy.p95_latency_seconds:
        compliant = False
    if policy.p99_latency_seconds is not None and p99 > policy.p99_latency_seconds:
        compliant = False
    if policy.max_shed_rate is not None and shed_rate > policy.max_shed_rate:
        compliant = False
    if (
        policy.max_degraded_rate is not None
        and degraded_rate > policy.max_degraded_rate
    ):
        compliant = False
    return SloReport(
        scope=scope,
        count=count,
        availability=availability,
        p50_latency_seconds=p50,
        p95_latency_seconds=p95,
        p99_latency_seconds=p99,
        shed_rate=shed_rate,
        degraded_rate=degraded_rate,
        error_rate=error_rate,
        error_budget_burn=burn,
        compliant=compliant,
    )


def availability_floor(policy: SloPolicy) -> float:
    return min(1.0, max(0.0, policy.availability_target))


class SloTracker:
    """Sliding-window SLO accounting, globally and per tenant/topology.

    Thread-safe enough for the plan service's usage: ``record`` is called
    from worker threads but appends to ``deque`` objects (atomic in
    CPython); reports snapshot via ``list(...)``.
    """

    GLOBAL_SCOPE = "_global"

    def __init__(self, policy: SloPolicy | None = None, window: int = 1024) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.policy = policy or SloPolicy()
        self.window = window
        self._global: Deque[_Sample] = deque(maxlen=window)
        self._tenants: dict[str, Deque[_Sample]] = {}
        self._topologies: dict[str, Deque[_Sample]] = {}

    # ------------------------------------------------------------- recording
    def record(
        self,
        outcome: str,
        latency_seconds: float,
        *,
        tenant: str | None = None,
        topology: str | None = None,
    ) -> None:
        sample = (outcome, latency_seconds)
        self._global.append(sample)
        if tenant is not None:
            bucket = self._tenants.get(tenant)
            if bucket is None:
                bucket = self._tenants.setdefault(
                    tenant, deque(maxlen=self.window)
                )
            bucket.append(sample)
        if topology is not None:
            bucket = self._topologies.get(topology)
            if bucket is None:
                bucket = self._topologies.setdefault(
                    topology, deque(maxlen=self.window)
                )
            bucket.append(sample)

    # --------------------------------------------------------------- reports
    def report(self) -> SloReport:
        return _fold(self.GLOBAL_SCOPE, list(self._global), self.policy)

    def tenant_reports(self) -> dict[str, SloReport]:
        return {
            tenant: _fold(f"tenant:{tenant}", list(samples), self.policy)
            for tenant, samples in sorted(self._tenants.items())
        }

    def topology_reports(self) -> dict[str, SloReport]:
        return {
            topology: _fold(f"topology:{topology}", list(samples), self.policy)
            for topology, samples in sorted(self._topologies.items())
        }

    def tenants(self) -> list[str]:
        return sorted(self._tenants)

    # --------------------------------------------------------------- exports
    def to_bench_metrics(self, prefix: str = "slo") -> dict[str, float]:
        """Flat float metrics for the benchmark harness (ms latencies)."""
        out: dict[str, float] = {}

        def put(scope: str, report: SloReport) -> None:
            base = f"{prefix}.{scope}" if scope else prefix
            out[f"{base}.count"] = float(report.count)
            out[f"{base}.availability"] = report.availability
            out[f"{base}.p50_ms"] = report.p50_latency_seconds * 1000.0
            out[f"{base}.p95_ms"] = report.p95_latency_seconds * 1000.0
            out[f"{base}.p99_ms"] = report.p99_latency_seconds * 1000.0
            out[f"{base}.shed_rate"] = report.shed_rate
            out[f"{base}.degraded_rate"] = report.degraded_rate
            out[f"{base}.error_rate"] = report.error_rate
            burn = report.error_budget_burn
            out[f"{base}.error_budget_burn"] = (
                burn if burn != float("inf") else -1.0
            )

        put("", self.report())
        for tenant, report in self.tenant_reports().items():
            put(f"tenant.{tenant}", report)
        return out

    def render(self) -> str:
        """Human-readable per-tenant table (global row first)."""
        headers = (
            "scope",
            "count",
            "avail",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "shed",
            "degraded",
            "burn",
            "ok",
        )
        rows = [self.report()]
        rows.extend(self.tenant_reports().values())
        rows.extend(self.topology_reports().values())
        table = [headers]
        for report in rows:
            burn = report.error_budget_burn
            table.append(
                (
                    report.scope,
                    str(report.count),
                    f"{report.availability:.4f}",
                    f"{report.p50_latency_seconds * 1000.0:.2f}",
                    f"{report.p95_latency_seconds * 1000.0:.2f}",
                    f"{report.p99_latency_seconds * 1000.0:.2f}",
                    f"{report.shed_rate:.3f}",
                    f"{report.degraded_rate:.3f}",
                    "inf" if burn == float("inf") else f"{burn:.2f}",
                    "yes" if report.compliant else "NO",
                )
            )
        widths = [
            max(len(row[col]) for row in table) for col in range(len(headers))
        ]
        lines = []
        for index, row in enumerate(table):
            lines.append(
                "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row))
                .rstrip()
            )
            if index == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)

    def render_prometheus(self, prefix: str = "repro_slo") -> str:
        """Prometheus-style text exposition of the current window."""
        gauges = (
            ("availability", "Fraction of requests served or degraded"),
            ("latency_p50_seconds", "Median success latency"),
            ("latency_p95_seconds", "95th percentile success latency"),
            ("latency_p99_seconds", "99th percentile success latency"),
            ("shed_rate", "Fraction of requests shed by admission control"),
            ("degraded_rate", "Fraction of requests served degraded"),
            ("error_rate", "Fraction of requests that errored"),
            ("error_budget_burn", "Unavailability over the error budget"),
            ("requests_total", "Requests in the sliding window"),
        )
        scopes: list[tuple[str, str, SloReport]] = [
            ("", "", self.report())
        ]
        for tenant, report in self.tenant_reports().items():
            scopes.append(("tenant", tenant, report))
        for topology, report in self.topology_reports().items():
            scopes.append(("topology", topology, report))
        lines: list[str] = []
        for name, help_text in gauges:
            metric = f"{prefix}_{name}"
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} gauge")
            for label, value, report in scopes:
                if name == "availability":
                    sample = report.availability
                elif name == "latency_p50_seconds":
                    sample = report.p50_latency_seconds
                elif name == "latency_p95_seconds":
                    sample = report.p95_latency_seconds
                elif name == "latency_p99_seconds":
                    sample = report.p99_latency_seconds
                elif name == "shed_rate":
                    sample = report.shed_rate
                elif name == "degraded_rate":
                    sample = report.degraded_rate
                elif name == "error_rate":
                    sample = report.error_rate
                elif name == "error_budget_burn":
                    sample = report.error_budget_burn
                    if sample == float("inf"):
                        sample = -1.0
                else:
                    sample = float(report.count)
                labels = f'{{{label}="{value}"}}' if label else ""
                lines.append(f"{metric}{labels} {sample:.6g}")
        return "\n".join(lines) + "\n"


def slo_from_outcomes(
    outcomes: Iterable[tuple[str, str | None]],
    policy: SloPolicy | None = None,
    window: int = 4096,
) -> SloTracker:
    """Build a tracker from (outcome, tenant) pairs with zero latencies.

    Used by ``repro obs slo --input`` to compute availability / shed /
    degraded rates from a journal, where latency is out-of-band.
    """
    tracker = SloTracker(policy, window=window)
    for outcome, tenant in outcomes:
        tracker.record(outcome, 0.0, tenant=tenant)
    return tracker
