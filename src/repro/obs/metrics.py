"""Metrics registry: counters, gauges and histograms under canonical names.

The registry is the aggregate half of the observability layer (spans in
:mod:`repro.obs.tracer` are the timeline half).  Metric identity is the pair
of a dotted name and a sorted label set, rendered canonically as
``name{label=value,...}`` — the naming scheme shared across the codebase:

===================================  ======================================
``planner.solve_seconds{stage=...}``  histogram, one observation per planner
                                      pipeline stage per solve
``service.requests`` /
``service.cache{outcome=...}``        counters of plan-service request
                                      outcomes (``hit``/``miss``/
                                      ``coalesced``)
``elastic.replan_seconds{policy=..}`` histogram of measured replan
                                      wall-clock per replan policy
``simulator.wave_seconds``            histogram of *simulated* per-wave
                                      durations
===================================  ======================================

:meth:`MetricsRegistry.snapshot` freezes the current values;
:meth:`MetricsSnapshot.diff` subtracts an earlier snapshot so a caller can
meter exactly one region of work.  :meth:`MetricsRegistry.to_bench_metrics`
exports a snapshot into the benchmark :class:`~repro.bench.result.Metric`
schema, which is how registry values land in ``BENCH_*.json`` via
:class:`~repro.bench.result.BenchResult`.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.result import BenchResult, Metric

#: Histograms keep at most this many raw samples for percentile estimation;
#: count/total/min/max stay exact beyond it.
DEFAULT_MAX_SAMPLES = 4096


def metric_key(name: str, labels: Mapping[str, Any] | None = None) -> str:
    """Canonical ``name{k=v,...}`` rendering with labels sorted by key."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


def split_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`metric_key` (labels come back as strings)."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: dict[str, str] = {}
    for part in inner[:-1].split(","):
        if part:
            label, _, value = part.partition("=")
            labels[label] = value
    return name, labels


def percentile(ordered: list[float], fraction: float) -> float:
    """Linear-interpolated percentile of an ascending sample list.

    Well-defined on every sample count: empty lists yield ``0.0`` and a
    single sample is every percentile of itself.
    """
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = math.floor(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


@dataclass(frozen=True)
class HistogramSummary:
    """Point-in-time summary of one histogram."""

    count: int = 0
    total: float = 0.0
    min: float = 0.0
    max: float = 0.0
    mean: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class _Histogram:
    __slots__ = ("count", "total", "min", "max", "samples", "max_samples")

    def __init__(self, max_samples: int) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples: list[float] = []
        self.max_samples = max_samples

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if len(self.samples) < self.max_samples:
            self.samples.append(value)

    def summary(self) -> HistogramSummary:
        if self.count == 0:
            return HistogramSummary()
        ordered = sorted(self.samples)
        return HistogramSummary(
            count=self.count,
            total=self.total,
            min=self.min,
            max=self.max,
            mean=self.total / self.count,
            p50=percentile(ordered, 0.50),
            p95=percentile(ordered, 0.95),
            p99=percentile(ordered, 0.99),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Frozen registry state; subtractable to meter a region of work."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSummary] = field(default_factory=dict)

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """This snapshot minus ``earlier``: counter and histogram count/total
        deltas; gauges keep their latest value.  Histogram percentiles are
        distribution properties and do not subtract — a diffed histogram
        reports delta count/total/mean only (min/max/percentiles zeroed).
        """
        counters = {
            key: value - earlier.counters.get(key, 0.0)
            for key, value in self.counters.items()
            if value != earlier.counters.get(key, 0.0)
        }
        histograms: dict[str, HistogramSummary] = {}
        for key, summary in self.histograms.items():
            before = earlier.histograms.get(key, HistogramSummary())
            count = summary.count - before.count
            if count <= 0:
                continue
            total = summary.total - before.total
            histograms[key] = HistogramSummary(
                count=count, total=total, mean=total / count
            )
        return MetricsSnapshot(
            counters=counters, gauges=dict(self.gauges), histograms=histograms
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe rendering (embedded in Chrome trace ``otherData``)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                key: summary.as_dict()
                for key, summary in sorted(self.histograms.items())
            },
        }


class MetricsRegistry:
    """Thread-safe registry of counters, gauges and histograms."""

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self._lock = threading.Lock()
        self._max_samples = max_samples
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    # -------------------------------------------------------------- recording
    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` to the counter ``name{labels}`` (creating it at 0)."""
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge ``name{labels}`` to its latest value."""
        with self._lock:
            self._gauges[metric_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one observation into the histogram ``name{labels}``."""
        key = metric_key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = _Histogram(self._max_samples)
                self._histograms[key] = histogram
            histogram.observe(value)

    # --------------------------------------------------------------- reading
    def counter_value(self, name: str, **labels: Any) -> float:
        with self._lock:
            return self._counters.get(metric_key(name, labels), 0.0)

    def gauge_value(self, name: str, **labels: Any) -> float:
        with self._lock:
            return self._gauges.get(metric_key(name, labels), 0.0)

    def histogram_summary(self, name: str, **labels: Any) -> HistogramSummary:
        with self._lock:
            histogram = self._histograms.get(metric_key(name, labels))
            return histogram.summary() if histogram else HistogramSummary()

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={
                    key: histogram.summary()
                    for key, histogram in self._histograms.items()
                },
            )

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # --------------------------------------------------------------- exports
    def to_bench_metrics(
        self,
        prefix: str = "",
        *,
        snapshot: MetricsSnapshot | None = None,
        gated: Iterable[str] = (),
    ) -> "dict[str, Metric]":
        """Export registry values as benchmark :class:`Metric` entries.

        Counters and gauges export their value; histograms export
        ``<key>.count`` plus (for second-valued names, i.e. names whose base
        ends in ``_seconds``) ``<key>.p50_ms``/``<key>.p95_ms``/``<key>.p99_ms``.
        Everything
        defaults to informational — registry values are measurements, not
        gates — except keys listed in ``gated``, which carry the default
        regression threshold.
        """
        from repro.bench.result import Metric, informational

        snap = snapshot if snapshot is not None else self.snapshot()
        gated_keys = set(gated)

        def make(key: str, value: float, unit: str) -> "Metric":
            if key in gated_keys:
                return Metric(value, unit)
            return informational(value, unit)

        metrics: "dict[str, Metric]" = {}
        for key, value in sorted(snap.counters.items()):
            metrics[f"{prefix}{key}"] = make(key, value, "")
        for key, value in sorted(snap.gauges.items()):
            metrics[f"{prefix}{key}"] = make(key, value, "")
        for key, summary in sorted(snap.histograms.items()):
            metrics[f"{prefix}{key}.count"] = make(key, float(summary.count), "")
            base_name, _ = split_metric_key(key)
            if base_name.endswith("_seconds"):
                metrics[f"{prefix}{key}.p50_ms"] = informational(
                    summary.p50 * 1e3, "ms"
                )
                metrics[f"{prefix}{key}.p95_ms"] = informational(
                    summary.p95 * 1e3, "ms"
                )
                metrics[f"{prefix}{key}.p99_ms"] = informational(
                    summary.p99 * 1e3, "ms"
                )
        return metrics

    def to_bench_result(
        self,
        name: str,
        *,
        prefix: str = "",
        figure: str | None = None,
        stage: str = "observability",
        tags: tuple[str, ...] = ("obs",),
        snapshot: MetricsSnapshot | None = None,
    ) -> "BenchResult":
        """Wrap :meth:`to_bench_metrics` into a ``BENCH_*.json``-able result."""
        from repro.bench.result import BenchResult

        return BenchResult(
            name=name,
            metrics=self.to_bench_metrics(prefix, snapshot=snapshot),
            figure=figure,
            stage=stage,
            tags=tags,
        )

    # -------------------------------------------------------------- rendering
    def render(self, snapshot: MetricsSnapshot | None = None) -> str:
        """Human-readable multi-section dump of the registry state."""
        snap = snapshot if snapshot is not None else self.snapshot()
        lines: list[str] = []
        if snap.counters:
            lines.append("counters:")
            for key, value in sorted(snap.counters.items()):
                lines.append(f"  {key:<48} {value:g}")
        if snap.gauges:
            lines.append("gauges:")
            for key, value in sorted(snap.gauges.items()):
                lines.append(f"  {key:<48} {value:g}")
        if snap.histograms:
            lines.append("histograms:")
            for key, summary in sorted(snap.histograms.items()):
                lines.append(
                    f"  {key:<48} n={summary.count} mean={summary.mean:.6g} "
                    f"p50={summary.p50:.6g} p95={summary.p95:.6g} "
                    f"p99={summary.p99:.6g} max={summary.max:.6g}"
                )
        if not lines:
            return "(no metrics recorded)"
        return "\n".join(lines)


_GLOBAL_REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide default registry instrumented components record into."""
    return _GLOBAL_REGISTRY
