"""Unified observability layer: spans, metrics and trace exporters.

``repro.obs`` is the shared instrumentation substrate of the reproduction.
It deliberately depends on nothing else in the package (the planner, service,
elastic runner and simulator all import it), and it stays out of the way when
unused: the default tracer is disabled unless ``REPRO_OBS`` is set or a
caller enables it, and a disabled span is a stateless no-op singleton.

* :mod:`repro.obs.tracer` — nested, thread-local wall-clock spans.
* :mod:`repro.obs.metrics` — counters/gauges/histograms under canonical
  ``name{label=value}`` keys, with snapshot/diff and ``BENCH_*.json`` export.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (simulated
  utilization rendered as counter tracks beside the wall-clock spans),
  a schema validator, and the plain-text span tree report.
* :mod:`repro.obs.telemetry` — request-scoped telemetry: deterministic
  trace IDs, the append-only structured event journal, and the
  ``reconstruct_requests`` lifecycle reducer.
* :mod:`repro.obs.slo` — sliding-window per-tenant/per-topology SLO
  tracking (latency percentiles, availability, error-budget burn) against
  declared :class:`~repro.obs.slo.SloPolicy` targets.
"""

from repro.obs.export import (
    SIM_PID,
    WALL_PID,
    TraceValidationError,
    chrome_trace_document,
    render_span_tree,
    span_events,
    spans_from_chrome_trace,
    utilization_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    HistogramSummary,
    MetricsRegistry,
    MetricsSnapshot,
    get_metrics,
    metric_key,
    percentile,
    split_metric_key,
)
from repro.obs.slo import SloPolicy, SloReport, SloTracker, slo_from_outcomes
from repro.obs.telemetry import (
    EVENT_KINDS,
    JOURNAL_SCHEMA_VERSION,
    JournalError,
    RequestLifecycle,
    TelemetryJournal,
    TraceIdGenerator,
    attribution_report,
    reconstruct_requests,
    validate_event,
    validate_journal,
)
from repro.obs.tracer import NOOP_SPAN, Span, SpanRecord, SpanTracer, get_tracer

__all__ = [
    "EVENT_KINDS",
    "JOURNAL_SCHEMA_VERSION",
    "NOOP_SPAN",
    "SIM_PID",
    "WALL_PID",
    "HistogramSummary",
    "JournalError",
    "MetricsRegistry",
    "MetricsSnapshot",
    "RequestLifecycle",
    "SloPolicy",
    "SloReport",
    "SloTracker",
    "Span",
    "SpanRecord",
    "SpanTracer",
    "TelemetryJournal",
    "TraceIdGenerator",
    "TraceValidationError",
    "attribution_report",
    "chrome_trace_document",
    "get_metrics",
    "get_tracer",
    "metric_key",
    "percentile",
    "reconstruct_requests",
    "render_span_tree",
    "slo_from_outcomes",
    "span_events",
    "spans_from_chrome_trace",
    "split_metric_key",
    "utilization_events",
    "validate_chrome_trace",
    "validate_event",
    "validate_journal",
    "write_chrome_trace",
]
