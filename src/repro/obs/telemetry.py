"""Request-scoped telemetry: trace IDs and the structured event journal.

This module is the per-request half of the observability layer (the spans
and metrics in :mod:`repro.obs.tracer` / :mod:`repro.obs.metrics` are
aggregate-only).  It answers "what happened to request X?" with two pieces:

* :class:`TraceIdGenerator` — deterministic request IDs.  An ID is the
  request's fingerprint prefix plus a seeded monotonic counter
  (``<fp8>-<seed>-<ordinal>``), so a same-seed replay of a serial request
  stream mints byte-identical IDs.  The plan service mints one ID per
  submitted request and threads it through queueing, single-flight
  coalescing (coalesced requests record the *leader's* ID), retries,
  degradation-ladder tiers, worker crashes/requeues and fault injections,
  and attaches it to spans as a ``trace_id`` attribute (exported into
  Chrome trace ``args``).

* :class:`TelemetryJournal` — an append-only stream of canonical,
  schema-versioned events (:data:`EVENT_KINDS`), held in a bounded
  in-memory ring buffer with an optional JSONL file sink.  Events carry
  monotonic sequence offsets, never wall-clock — latency lives out-of-band
  in :class:`~repro.obs.slo.SloTracker` and ``ServiceStats`` — so a
  same-seed chaos campaign journals byte-identically
  (:meth:`TelemetryJournal.dumps`).  :func:`validate_event` gates every
  write; :func:`validate_journal` re-checks a whole stream (or file).

:func:`reconstruct_requests` folds a journal back into per-request
:class:`RequestLifecycle` records, and :func:`attribution_report`
summarizes how completely the stream accounts for its requests — the
invariant the resilience benchmark gates: every fault, retry and
degradation tier attributed to exactly one request lifecycle.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

#: Version tag carried by every journal event (``"v"``).
JOURNAL_SCHEMA_VERSION = 1

#: Event kinds, in lifecycle order.  ``request.submitted`` opens a request's
#: lifecycle and ``request.resolved`` closes it; everything in between is
#: attributed to the request by its trace ID.
EVENT_SUBMITTED = "request.submitted"
EVENT_CACHE_HIT = "request.cache_hit"
EVENT_COALESCED = "request.coalesced"
EVENT_SHED = "request.shed"
EVENT_ENQUEUED = "request.enqueued"
EVENT_ATTEMPT = "solve.attempt"
EVENT_RETRY = "solve.retry"
EVENT_FAULT = "fault.injected"
EVENT_REQUEUED = "worker.requeued"
EVENT_DEGRADED = "tier.degraded"
EVENT_QUARANTINED = "cache.quarantined"
EVENT_RESOLVED = "request.resolved"

EVENT_KINDS = (
    EVENT_SUBMITTED,
    EVENT_CACHE_HIT,
    EVENT_COALESCED,
    EVENT_SHED,
    EVENT_ENQUEUED,
    EVENT_ATTEMPT,
    EVENT_RETRY,
    EVENT_FAULT,
    EVENT_REQUEUED,
    EVENT_DEGRADED,
    EVENT_QUARANTINED,
    EVENT_RESOLVED,
)

#: The exact field set of a version-1 event.  Every event carries every
#: field (unused ones are ``null``), so the canonical JSONL rendering is a
#: fixed shape and schema drift is a validation error, not a silent skip.
EVENT_FIELDS = (
    "v",
    "seq",
    "kind",
    "trace_id",
    "tenant",
    "topology",
    "fingerprint",
    "tier",
    "attempt",
    "outcome",
    "fault",
    "leader",
    "detail",
)

_OPTIONAL_STR_FIELDS = (
    "trace_id",
    "tenant",
    "topology",
    "fingerprint",
    "tier",
    "outcome",
    "fault",
    "leader",
)

_EVENT_FIELD_SET = frozenset(EVENT_FIELDS)
_EVENT_KIND_SET = frozenset(EVENT_KINDS)


class JournalError(ValueError):
    """Raised for events or streams that violate the journal schema."""


def validate_event(event: Any, where: str = "event") -> None:
    """Check one event against the version-1 schema; raises on violation."""
    if not isinstance(event, Mapping):
        raise JournalError(f"{where}: must be an object, got {type(event).__name__}")
    extra = set(event) - _EVENT_FIELD_SET
    if extra:
        raise JournalError(f"{where}: unknown fields {sorted(extra)}")
    missing = _EVENT_FIELD_SET - set(event)
    if missing:
        raise JournalError(f"{where}: missing fields {sorted(missing)}")
    if event["v"] != JOURNAL_SCHEMA_VERSION:
        raise JournalError(
            f"{where}: unsupported schema version {event['v']!r} "
            f"(expected {JOURNAL_SCHEMA_VERSION})"
        )
    seq = event["seq"]
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise JournalError(f"{where}: 'seq' must be a non-negative integer")
    if event["kind"] not in _EVENT_KIND_SET:
        raise JournalError(f"{where}: unknown event kind {event['kind']!r}")
    for name in _OPTIONAL_STR_FIELDS:
        value = event[name]
        if value is not None and not isinstance(value, str):
            raise JournalError(f"{where}: {name!r} must be a string or null")
    attempt = event["attempt"]
    if attempt is not None and (
        not isinstance(attempt, int) or isinstance(attempt, bool) or attempt < 0
    ):
        raise JournalError(f"{where}: 'attempt' must be a non-negative integer or null")
    detail = event["detail"]
    if detail is not None and not isinstance(detail, Mapping):
        raise JournalError(f"{where}: 'detail' must be an object or null")


def validate_journal(events: "Iterable[Mapping] | str | Path") -> int:
    """Validate a whole event stream (or a JSONL file); returns the count.

    Beyond per-event schema checks, sequence offsets must be strictly
    increasing — the journal is append-only and ordered.
    """
    if isinstance(events, (str, Path)):
        events = _read_lines(Path(events))
    count = 0
    last_seq = -1
    for index, event in enumerate(events):
        validate_event(event, where=f"journal[{index}]")
        if event["seq"] <= last_seq:
            raise JournalError(
                f"journal[{index}]: 'seq' {event['seq']} is not increasing "
                f"(previous {last_seq})"
            )
        last_seq = event["seq"]
        count += 1
    return count


def _read_lines(path: Path) -> list[dict]:
    events: list[dict] = []
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise JournalError(f"{path}:{number}: invalid JSON: {exc}") from exc
    return events


def event_line(event: Mapping[str, Any]) -> str:
    """Canonical single-line JSON rendering (sorted keys, no spaces)."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


class TraceIdGenerator:
    """Mints deterministic request IDs: ``<fp prefix>-<seed>-<ordinal>``.

    The ordinal is a monotonic counter assigned under a lock in submission
    order, so a serial same-seed replay mints identical IDs.  Share one
    generator across the services of a pool so IDs stay unique pool-wide.

    ``namespace`` scopes the ordinal stream: a fleet gives every shard its
    own generator namespaced by the shard ordinal
    (``<fp prefix>-<namespace>-<seed>-<ordinal>``), so per-shard counters
    stay deterministic under fingerprint-range routing — two shards minting
    concurrently never race on one counter, and a request's ID depends only
    on its shard and its position in that shard's submission order.
    """

    def __init__(self, seed: int = 0, namespace: str | None = None) -> None:
        self.seed = seed
        self.namespace = namespace
        self._lock = threading.Lock()
        self._next = 0

    def mint(self, fingerprint: str = "") -> str:
        with self._lock:
            ordinal = self._next
            self._next += 1
        prefix = fingerprint[:8] or "anon"
        if self.namespace is not None:
            return f"{prefix}-{self.namespace}-{self.seed}-{ordinal:06d}"
        return f"{prefix}-{self.seed}-{ordinal:06d}"


class TelemetryJournal:
    """Append-only structured event journal with schema-gated writes.

    Events live in a bounded in-memory ring buffer (``capacity`` most
    recent; the sequence counter keeps rising past drops) and, when ``sink``
    is given, are streamed to a JSONL file — one canonical line per event,
    so two journals of the same event stream are byte-identical.

    The journal owns no clock: events carry monotonic ``seq`` offsets only,
    and wall-clock latency stays out-of-band (``ServiceStats`` /
    :class:`~repro.obs.slo.SloTracker`), which is what makes same-seed
    chaos-campaign journals reproducible byte for byte.
    """

    def __init__(
        self,
        capacity: int = 65536,
        *,
        sink: "str | Path | None" = None,
    ) -> None:
        if capacity <= 0:
            raise JournalError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        # deque(maxlen=...) drops the oldest event in O(1); a list's
        # ``del events[0]`` would shift the whole buffer per drop.
        self._events: deque[dict] = deque(maxlen=capacity)
        self._next_seq = 0
        self._dropped = 0
        self._sink_path: Path | None = None
        self._sink = None
        if sink is not None:
            self._sink_path = Path(sink)
            self._sink_path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = self._sink_path.open("w", encoding="utf-8")

    # ------------------------------------------------------------- recording
    def emit(
        self,
        kind: str,
        trace_id: str | None = None,
        *,
        tenant: str | None = None,
        topology: str | None = None,
        fingerprint: str | None = None,
        tier: str | None = None,
        attempt: int | None = None,
        outcome: str | None = None,
        fault: str | None = None,
        leader: str | None = None,
        detail: Mapping[str, Any] | None = None,
    ) -> dict:
        """Validate and append one event; returns the event record.

        The write gate is an inlined equivalent of :func:`validate_event`:
        ``emit`` constructs the version-1 shape itself, so only the
        caller-supplied values need checking (the full field-set scan runs
        on reads, in :meth:`read` / :func:`validate_journal`).  This keeps
        the per-event cost low enough for the service's cache-hit path.
        """
        if kind not in _EVENT_KIND_SET:
            raise JournalError(f"event: unknown event kind {kind!r}")
        for name, value in (
            ("trace_id", trace_id),
            ("tenant", tenant),
            ("topology", topology),
            ("fingerprint", fingerprint),
            ("tier", tier),
            ("outcome", outcome),
            ("fault", fault),
            ("leader", leader),
        ):
            if value is not None and not isinstance(value, str):
                raise JournalError(f"event: {name!r} must be a string or null")
        if attempt is not None and (
            not isinstance(attempt, int) or isinstance(attempt, bool) or attempt < 0
        ):
            raise JournalError(
                "event: 'attempt' must be a non-negative integer or null"
            )
        if detail is not None and not isinstance(detail, Mapping):
            raise JournalError("event: 'detail' must be an object or null")
        with self._lock:
            event = {
                "v": JOURNAL_SCHEMA_VERSION,
                "seq": self._next_seq,
                "kind": kind,
                "trace_id": trace_id,
                "tenant": tenant,
                "topology": topology,
                "fingerprint": fingerprint,
                "tier": tier,
                "attempt": attempt,
                "outcome": outcome,
                "fault": fault,
                "leader": leader,
                "detail": dict(detail) if detail is not None else None,
            }
            self._next_seq += 1
            if len(self._events) == self.capacity:
                self._dropped += 1
            self._events.append(event)
            if self._sink is not None:
                self._sink.write(event_line(event) + "\n")
        return event

    # --------------------------------------------------------------- reading
    def events(self) -> list[dict]:
        """Snapshot of the buffered events, oldest first."""
        with self._lock:
            return [dict(event) for event in self._events]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def total_events(self) -> int:
        """Events ever emitted, including ones the ring buffer dropped."""
        with self._lock:
            return self._next_seq

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def dumps(self) -> str:
        """The buffered events as canonical JSONL (byte-stable)."""
        with self._lock:
            lines = [event_line(event) for event in self._events]
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: "str | Path") -> Path:
        """Write the buffered events as a JSONL file; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.dumps(), encoding="utf-8")
        return target

    @staticmethod
    def read(path: "str | Path") -> list[dict]:
        """Load and validate a JSONL journal file; returns its events."""
        events = _read_lines(Path(path))
        validate_journal(events)
        return events

    # ------------------------------------------------------------- lifecycle
    def flush(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.flush()

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.flush()
                self._sink.close()
                self._sink = None

    def __enter__(self) -> "TelemetryJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class RequestLifecycle:
    """One request's journal events folded into a lifecycle record."""

    trace_id: str
    tenant: str | None = None
    topology: str | None = None
    fingerprint: str | None = None
    outcome: str | None = None
    tier: str | None = None
    attempts: int = 0
    retries: int = 0
    requeues: int = 0
    leader: str | None = None
    #: Fault kinds injected into this request, in injection order.
    faults: list[str] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)

    @property
    def submitted(self) -> bool:
        return any(e["kind"] == EVENT_SUBMITTED for e in self.events)

    @property
    def resolved(self) -> bool:
        return any(e["kind"] == EVENT_RESOLVED for e in self.events)

    @property
    def complete(self) -> bool:
        """Opened by ``request.submitted`` and closed by ``request.resolved``."""
        return self.submitted and self.resolved

    def kinds(self) -> list[str]:
        return [event["kind"] for event in self.events]


def reconstruct_requests(
    events: Iterable[Mapping[str, Any]],
) -> "dict[str, RequestLifecycle]":
    """Fold an event stream into per-request lifecycles, keyed by trace ID.

    Events without a trace ID (store-scoped persist faults, cache
    quarantines) are not request-scoped and are skipped here; see
    :func:`unattributed_events`.
    """
    lifecycles: dict[str, RequestLifecycle] = {}
    for event in events:
        trace_id = event.get("trace_id")
        if trace_id is None:
            continue
        lifecycle = lifecycles.get(trace_id)
        if lifecycle is None:
            lifecycle = RequestLifecycle(trace_id=trace_id)
            lifecycles[trace_id] = lifecycle
        lifecycle.events.append(dict(event))
        kind = event["kind"]
        for attr in ("tenant", "topology", "fingerprint"):
            if getattr(lifecycle, attr) is None and event.get(attr) is not None:
                setattr(lifecycle, attr, event[attr])
        if kind == EVENT_ATTEMPT:
            lifecycle.attempts += 1
        elif kind == EVENT_RETRY:
            lifecycle.retries += 1
        elif kind == EVENT_REQUEUED:
            lifecycle.requeues += 1
        elif kind == EVENT_FAULT and event.get("fault") is not None:
            lifecycle.faults.append(event["fault"])
        elif kind == EVENT_COALESCED:
            lifecycle.leader = event.get("leader")
        elif kind == EVENT_RESOLVED:
            lifecycle.outcome = event.get("outcome")
            lifecycle.tier = event.get("tier")
    return lifecycles


def unattributed_events(events: Iterable[Mapping[str, Any]]) -> list[dict]:
    """Events carrying no trace ID (store-scoped faults, quarantines)."""
    return [dict(e) for e in events if e.get("trace_id") is None]


def attribution_report(events: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """How completely a journal accounts for its requests.

    Returns a summary the resilience benchmark asserts on:

    * ``requests`` / ``complete`` — lifecycles seen, and how many are both
      submitted and resolved (100% for a healthy service run);
    * ``orphan_events`` — request-scoped events whose trace ID never
      produced a ``request.submitted`` (must be 0: every fault, retry and
      degradation tier belongs to exactly one lifecycle);
    * ``faults`` / ``retries`` / ``degraded_tiers`` — the per-request
      census, cross-checkable against the injector's counters and the
      ``service.retries`` / ``service.degraded{tier=}`` metrics;
    * ``unattributed`` — store-scoped events (persist faults, cache
      quarantines), counted by kind.
    """
    materialized = [dict(e) for e in events]
    lifecycles = reconstruct_requests(materialized)
    orphans = sum(
        1 for lifecycle in lifecycles.values() if not lifecycle.submitted
    )
    faults: dict[str, int] = {}
    degraded: dict[str, int] = {}
    retries = 0
    outcomes: dict[str, int] = {}
    for lifecycle in lifecycles.values():
        retries += lifecycle.retries
        for kind in lifecycle.faults:
            faults[kind] = faults.get(kind, 0) + 1
        if lifecycle.outcome is not None:
            outcomes[lifecycle.outcome] = outcomes.get(lifecycle.outcome, 0) + 1
        for event in lifecycle.events:
            if event["kind"] == EVENT_DEGRADED and event.get("tier"):
                degraded[event["tier"]] = degraded.get(event["tier"], 0) + 1
    unattributed: dict[str, int] = {}
    for event in unattributed_events(materialized):
        key = event.get("fault") or event["kind"]
        unattributed[key] = unattributed.get(key, 0) + 1
    complete = sum(1 for l in lifecycles.values() if l.complete)
    return {
        "events": len(materialized),
        "requests": len(lifecycles),
        "complete": complete,
        "orphan_events": sum(
            len(l.events) for l in lifecycles.values() if not l.submitted
        ),
        "orphan_requests": orphans,
        "outcomes": dict(sorted(outcomes.items())),
        "faults": dict(sorted(faults.items())),
        "retries": retries,
        "degraded_tiers": dict(sorted(degraded.items())),
        "unattributed": dict(sorted(unattributed.items())),
    }


#: Shared no-op sentinel: journal-less components skip emission entirely.
NULL_JOURNAL = None
