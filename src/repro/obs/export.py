"""Trace exporters: Chrome ``trace_event`` JSON and a plain-text span tree.

The Chrome exporter emits the JSON Object Format of the Trace Event spec
(loadable in Perfetto and ``chrome://tracing``): wall-clock spans become
complete (``"ph": "X"``) events under the wall-clock process, and — when a
simulated :class:`~repro.runtime.trace.UtilizationTrace` is supplied — the
simulator's busy segments become per-device slices plus cluster-wide counter
(``"ph": "C"``) tracks under a second, *simulated-time* process, so measured
and simulated timelines sit side by side in one view.

:func:`validate_chrome_trace` checks a document against the subset of the
schema the exporter produces (and a loader needs); the ``repro trace`` CLI
refuses to write an invalid document, and CI validates the captured artifact
with the same function.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.obs.tracer import SpanRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsSnapshot
    from repro.runtime.trace import UtilizationTrace


class TraceValidationError(ValueError):
    """A document does not conform to the Chrome ``trace_event`` schema."""


#: Process ids of the two timelines in one exported document.
WALL_PID = 1
SIM_PID = 2

_MICROS = 1e6

#: Event phases the validator accepts, with per-phase required fields.
_PHASE_FIELDS: dict[str, tuple[str, ...]] = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "B": ("name", "ts", "pid", "tid"),
    "E": ("ts", "pid", "tid"),
    "C": ("name", "ts", "pid", "args"),
    "M": ("name", "pid", "args"),
    "i": ("name", "ts", "pid"),
}


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _metadata_event(kind: str, pid: int, tid: int, **args: Any) -> dict[str, Any]:
    return {"ph": "M", "name": kind, "pid": pid, "tid": tid, "args": dict(args)}


def span_events(
    spans: Sequence[SpanRecord], *, origin: float | None = None
) -> list[dict[str, Any]]:
    """Wall-clock spans as complete events, plus thread-name metadata."""
    if not spans:
        return []
    base = origin if origin is not None else min(span.start for span in spans)
    events: list[dict[str, Any]] = [
        _metadata_event("process_name", WALL_PID, 0, name="wall clock (repro)"),
        _metadata_event("process_sort_index", WALL_PID, 0, sort_index=0),
    ]
    thread_names: dict[int, str] = {}
    for span in spans:
        thread_names.setdefault(span.thread_id, span.thread_name)
        args = {key: _json_safe(value) for key, value in span.attributes.items()}
        event: dict[str, Any] = {
            "ph": "X",
            "name": span.name,
            "cat": span.category or "span",
            "pid": WALL_PID,
            "tid": span.thread_id,
            "ts": (span.start - base) * _MICROS,
            "dur": span.duration * _MICROS,
        }
        if args:
            event["args"] = args
        events.append(event)
    for tid, name in sorted(thread_names.items()):
        events.append(_metadata_event("thread_name", WALL_PID, tid, name=name))
    return events


def utilization_events(
    trace: "UtilizationTrace", *, num_points: int = 200
) -> list[dict[str, Any]]:
    """A simulated ``UtilizationTrace`` as device slices + counter tracks.

    Busy segments become per-device complete events (one simulated-time
    "thread" per device), and the sampled cluster timeline becomes two
    counter tracks: achieved cluster FLOP/s and the cluster utilization
    fraction of aggregate peak.
    """
    events: list[dict[str, Any]] = [
        _metadata_event("process_name", SIM_PID, 0, name="simulated timeline"),
        _metadata_event("process_sort_index", SIM_PID, 0, sort_index=1),
    ]
    devices_seen: set[int] = set()
    for segment in trace.segments:
        devices_seen.add(segment.device_id)
        args: dict[str, Any] = {"flops_per_second": segment.flops_per_second}
        if segment.metaop_index is not None:
            args["metaop_index"] = segment.metaop_index
        events.append(
            {
                "ph": "X",
                "name": segment.label or f"metaop{segment.metaop_index}",
                "cat": "simulator",
                "pid": SIM_PID,
                "tid": segment.device_id,
                "ts": segment.start * _MICROS,
                "dur": segment.duration * _MICROS,
                "args": args,
            }
        )
    for device_id in sorted(devices_seen):
        events.append(
            _metadata_event("thread_name", SIM_PID, device_id, name=f"gpu{device_id}")
        )
    aggregate_peak = trace.peak_flops_per_device * trace.num_devices
    for when, flops in trace.cluster_timeline(num_points=num_points):
        ts = when * _MICROS
        events.append(
            {
                "ph": "C",
                "name": "cluster.achieved_flops",
                "pid": SIM_PID,
                "ts": ts,
                "args": {"flops_per_second": flops},
            }
        )
        if aggregate_peak > 0:
            events.append(
                {
                    "ph": "C",
                    "name": "cluster.utilization",
                    "pid": SIM_PID,
                    "ts": ts,
                    "args": {"fraction": flops / aggregate_peak},
                }
            )
    return events


def chrome_trace_document(
    spans: Sequence[SpanRecord],
    *,
    utilization: "UtilizationTrace | None" = None,
    metrics: "MetricsSnapshot | None" = None,
    metadata: Mapping[str, Any] | None = None,
    num_points: int = 200,
) -> dict[str, Any]:
    """Assemble the full Chrome trace document (JSON Object Format)."""
    events = span_events(spans)
    if utilization is not None:
        events.extend(utilization_events(utilization, num_points=num_points))
    other: dict[str, Any] = {"generator": "repro.obs"}
    if metadata:
        other.update({key: _json_safe(value) for key, value in metadata.items()})
    if metrics is not None:
        other["metrics"] = metrics.as_dict()
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def validate_chrome_trace(document: Any, *, max_errors: int = 20) -> int:
    """Validate a Chrome trace document; returns the number of events.

    Raises :class:`TraceValidationError` listing up to ``max_errors``
    violations of the ``trace_event`` schema subset this layer emits.
    """
    if not isinstance(document, Mapping):
        raise TraceValidationError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise TraceValidationError("'traceEvents' must be a list")
    errors: list[str] = []
    for index, event in enumerate(events):
        if len(errors) >= max_errors:
            errors.append("... further errors suppressed")
            break
        where = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            errors.append(f"{where}: event must be an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASE_FIELDS:
            errors.append(f"{where}: unknown or missing phase {phase!r}")
            continue
        for field_name in _PHASE_FIELDS[phase]:
            if field_name not in event:
                errors.append(f"{where}: phase {phase!r} requires {field_name!r}")
        for numeric in ("ts", "dur"):
            value = event.get(numeric)
            if value is None:
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{where}: {numeric!r} must be numeric")
            elif value < 0:
                errors.append(f"{where}: {numeric!r} must be non-negative")
        if "args" in event and not isinstance(event["args"], Mapping):
            errors.append(f"{where}: 'args' must be an object")
        name = event.get("name")
        if name is not None and not isinstance(name, str):
            errors.append(f"{where}: 'name' must be a string")
    if errors:
        raise TraceValidationError(
            "invalid Chrome trace document:\n  " + "\n  ".join(errors)
        )
    return len(events)


def write_chrome_trace(path: str | Path, document: Mapping[str, Any]) -> Path:
    """Validate ``document`` and write it as JSON; returns the path."""
    validate_chrome_trace(document)
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=1) + "\n", encoding="utf-8")
    return target


def spans_from_chrome_trace(document: Mapping[str, Any]) -> list[SpanRecord]:
    """Reconstruct span records from a trace document's complete events.

    Parent/child links are re-derived from interval containment by the tree
    renderer, so ``parent_id`` comes back as ``None``; thread names are
    resolved from the document's metadata events.
    """
    events = document.get("traceEvents", [])
    thread_names: dict[tuple[int, int], str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            key = (event.get("pid", 0), event.get("tid", 0))
            thread_names[key] = str(event.get("args", {}).get("name", ""))
    spans: list[SpanRecord] = []
    for index, event in enumerate(events):
        if event.get("ph") != "X":
            continue
        pid = event.get("pid", 0)
        tid = event.get("tid", 0)
        name = thread_names.get((pid, tid), f"tid{tid}")
        spans.append(
            SpanRecord(
                name=str(event.get("name", "")),
                category=str(event.get("cat", "")),
                start=float(event.get("ts", 0.0)) / _MICROS,
                duration=float(event.get("dur", 0.0)) / _MICROS,
                thread_id=pid * 10_000_000 + tid,
                thread_name=f"{name}" if pid == WALL_PID else f"sim:{name}",
                span_id=index,
                parent_id=None,
                depth=0,
                attributes=dict(event.get("args", {})),
            )
        )
    return spans


# ------------------------------------------------------------ text tree report
def _forest(spans: Iterable[SpanRecord]):
    """Nest one thread's spans by interval containment; returns root nodes."""
    ordered = sorted(spans, key=lambda span: (span.start, -span.duration))
    roots: list[tuple[SpanRecord, list]] = []
    stack: list[tuple[SpanRecord, list]] = []
    epsilon = 1e-12
    for span in ordered:
        node: tuple[SpanRecord, list] = (span, [])
        while stack and span.start >= stack[-1][0].end - epsilon:
            stack.pop()
        if stack:
            stack[-1][1].append(node)
        else:
            roots.append(node)
        stack.append(node)
    return roots


def render_span_tree(
    spans: Sequence[SpanRecord], *, min_fraction: float = 0.0
) -> str:
    """Plain-text tree of the spans, one section per thread.

    ``min_fraction`` prunes spans shorter than that fraction of their
    thread's root span (0 keeps everything).
    """
    if not spans:
        return "(no spans recorded)"
    by_thread: dict[tuple[int, str], list[SpanRecord]] = {}
    for span in spans:
        by_thread.setdefault((span.thread_id, span.thread_name), []).append(span)

    lines: list[str] = []

    def emit(node, root_duration: float, depth: int) -> None:
        span, children = node
        if root_duration > 0 and span.duration / root_duration < min_fraction:
            return
        share = (
            f" {span.duration / root_duration * 100:5.1f}%"
            if root_duration > 0 and depth > 0
            else ""
        )
        label = "  " * depth + span.name
        lines.append(f"{label:<52} {span.duration * 1e3:10.3f} ms{share}")
        for child in children:
            emit(child, root_duration, depth + 1)

    for (_, thread_name), thread_spans in sorted(
        by_thread.items(), key=lambda item: item[0][1]
    ):
        lines.append(f"[{thread_name}]")
        for root in _forest(thread_spans):
            emit(root, root[0].duration, 0)
        lines.append("")
    return "\n".join(lines).rstrip()
