"""Training systems under evaluation: Spindle and the competitors of Tab. 1a."""

from repro.baselines.base import SystemCapabilities, TrainingSystem
from repro.baselines.distmm import DistMMMTSystem
from repro.baselines.optimus import SpindleOptimusSystem
from repro.baselines.sequential import (
    DeepSpeedSystem,
    MegatronLMSystem,
    SpindleSeqSystem,
    TemporallyDecoupledSystem,
)
from repro.baselines.spindle_system import SpindleSystem

#: All systems of the end-to-end comparison (Fig. 8), keyed by name.
SYSTEM_CLASSES: dict[str, type[TrainingSystem]] = {
    SpindleSystem.name: SpindleSystem,
    SpindleOptimusSystem.name: SpindleOptimusSystem,
    DistMMMTSystem.name: DistMMMTSystem,
    MegatronLMSystem.name: MegatronLMSystem,
    DeepSpeedSystem.name: DeepSpeedSystem,
    SpindleSeqSystem.name: SpindleSeqSystem,
}


def make_system(name: str, cluster, **kwargs) -> TrainingSystem:
    """Instantiate a training system by name on the given cluster."""
    key = name.lower()
    if key not in SYSTEM_CLASSES:
        raise KeyError(f"Unknown system {name!r}; available: {sorted(SYSTEM_CLASSES)}")
    return SYSTEM_CLASSES[key](cluster, **kwargs)


__all__ = [
    "DeepSpeedSystem",
    "DistMMMTSystem",
    "MegatronLMSystem",
    "SYSTEM_CLASSES",
    "SpindleOptimusSystem",
    "SpindleSeqSystem",
    "SpindleSystem",
    "SystemCapabilities",
    "TemporallyDecoupledSystem",
    "TrainingSystem",
    "make_system",
]
