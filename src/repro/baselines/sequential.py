"""Temporally-decoupled baselines: Megatron-LM, DeepSpeed and Spindle-Seq.

The paper runs the SOTA single-task systems on MT MM workloads by decoupling
sub-models along the temporal dimension: within each iteration every task takes
up the whole cluster for a short period and tasks execute sequentially (§5.1).
Every operator is parallelised across all devices, which is exactly what makes
lightweight operators underutilise the cluster.

``SpindleSeqSystem`` (Appendix H) follows the same sequential strategy but runs
through the Spindle code path, charging the (small) wave-boundary overheads of
the runtime engine; it demonstrates that Spindle's gains come from planning,
not from implementation differences.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.base import SystemCapabilities, TrainingSystem
from repro.graph.task import SpindleTask
from repro.runtime.results import IterationResult, TimeBreakdown


class TemporallyDecoupledSystem(TrainingSystem):
    """Executes tasks sequentially, each occupying the entire cluster."""

    name = "sequential"
    capabilities = SystemCapabilities(inter_task_aware=False, intra_task_aware=False)

    #: Multiplier applied to compute time (models per-framework kernel tuning).
    compute_overhead_factor: float = 1.0
    #: Multiplier applied to parameter synchronisation time.
    sync_overhead_factor: float = 1.0
    #: Fixed per-task overhead (scheduling gaps between decoupled sub-models).
    per_task_overhead_seconds: float = 0.0

    def run_iteration(self, tasks: Sequence[SpindleTask]) -> IterationResult:
        if not tasks:
            raise ValueError("At least one task is required")
        graph = self._unified_graph(tasks)
        metaop_labels = self._metaop_labels(graph)
        trace = self._new_trace()
        all_devices = list(range(self.cluster.num_devices))
        num_devices = self.cluster.num_devices

        current_time = 0.0
        compute_total = 0.0
        for task in tasks:
            task_graph = graph.task_subgraph(task.name)
            for name in task_graph.topological_order():
                op = task_graph.operator(name)
                duration = (
                    self.timing_model.operator_time(op, num_devices)
                    * self.compute_overhead_factor
                )
                self._record_operator(
                    trace,
                    op,
                    all_devices,
                    start=current_time,
                    duration=duration,
                    metaop_index=metaop_labels.get(name),
                )
                current_time += duration
                compute_total += duration
            current_time += self.per_task_overhead_seconds

        task_devices = {task.name: all_devices for task in tasks}
        sync = (
            self.parameter_sync_time(tasks, task_devices) * self.sync_overhead_factor
        )
        overheads = self.per_task_overhead_seconds * len(tasks)
        iteration_time = current_time + sync
        trace.end_time = max(trace.end_time, iteration_time)

        breakdown = TimeBreakdown(
            forward_backward=compute_total,
            param_sync=sync,
            send_recv=overheads,
        )
        return IterationResult(
            iteration_time=iteration_time,
            breakdown=breakdown,
            trace=trace,
            device_memory_bytes=self.device_memory(tasks, task_devices),
            num_waves=len(tasks),
            metadata={"system": self.name},
        )


class MegatronLMSystem(TemporallyDecoupledSystem):
    """Megatron-LM run with temporally decoupled sub-models."""

    name = "megatron-lm"
    compute_overhead_factor = 1.0
    sync_overhead_factor = 1.05


class DeepSpeedSystem(TemporallyDecoupledSystem):
    """DeepSpeed (ZeRO) run with temporally decoupled sub-models."""

    name = "deepspeed"
    compute_overhead_factor = 1.0
    sync_overhead_factor = 1.0


class SpindleSeqSystem(TemporallyDecoupledSystem):
    """Spindle runtime executing the naive sequential plan (Appendix H)."""

    name = "spindle-seq"
    compute_overhead_factor = 1.0
    sync_overhead_factor = 1.0
    # One wave boundary per decoupled sub-model: a batched P2P latency charge.
    per_task_overhead_seconds = 2e-4
