"""Common interface and shared machinery of the training systems under test.

Every system — Spindle itself and the four competitors of Tab. 1a — implements
:class:`TrainingSystem`: given a list of tasks it produces an
:class:`~repro.runtime.results.IterationResult` with the iteration time, the
time breakdown, a device-utilization trace and per-device memory, all measured
on the same simulated cluster and cost models so comparisons are apples to
apples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.cluster.topology import ClusterTopology
from repro.core.contraction import contract_graph
from repro.costmodel.comm import ring_allreduce_time
from repro.costmodel.memory import MemoryModel
from repro.costmodel.timing import ExecutionTimeModel, TimingModelConfig
from repro.graph.builder import build_unified_graph
from repro.graph.graph import ComputationGraph
from repro.graph.ops import Operator
from repro.graph.task import SpindleTask
from repro.runtime.param_groups import SYNC_OVERLAP_FRACTION
from repro.runtime.results import IterationResult
from repro.runtime.trace import UtilizationTrace


@dataclass(frozen=True)
class SystemCapabilities:
    """Heterogeneity awareness of a system (the rows of Tab. 1a)."""

    inter_task_aware: bool
    intra_task_aware: bool


class TrainingSystem(ABC):
    """A distributed training system evaluated on the simulated cluster."""

    name: str = "abstract"
    capabilities = SystemCapabilities(inter_task_aware=False, intra_task_aware=False)

    def __init__(
        self,
        cluster: ClusterTopology,
        timing_config: TimingModelConfig | None = None,
        memory_model: MemoryModel | None = None,
    ) -> None:
        self.cluster = cluster
        self.timing_model = ExecutionTimeModel(cluster, timing_config)
        self.memory_model = memory_model or MemoryModel()
        self.last_planning_seconds: float = 0.0

    # ------------------------------------------------------------- public API
    @abstractmethod
    def run_iteration(self, tasks: Sequence[SpindleTask]) -> IterationResult:
        """Simulate one training iteration of ``tasks`` on the cluster."""

    # ---------------------------------------------------------------- helpers
    def _unified_graph(self, tasks: Sequence[SpindleTask]) -> ComputationGraph:
        return build_unified_graph(list(tasks))

    def _metaop_labels(self, graph: ComputationGraph) -> dict[str, int]:
        """Map operator names to MetaOp indices (for comparable Fig. 9 traces)."""
        metagraph = contract_graph(graph)
        labels: dict[str, int] = {}
        for metaop in metagraph.metaops.values():
            for op in metaop.operators:
                labels[op.name] = metaop.index
        return labels

    def _new_trace(self) -> UtilizationTrace:
        return UtilizationTrace(
            num_devices=self.cluster.num_devices,
            peak_flops_per_device=self.cluster.max_peak_flops,
        )

    def _record_operator(
        self,
        trace: UtilizationTrace,
        op: Operator,
        devices: Sequence[int],
        start: float,
        duration: float,
        metaop_index: int | None,
    ) -> None:
        """Add busy segments for one operator executed by a device group."""
        if duration <= 0:
            return
        achieved = (1.0 + self.timing_model.config.backward_multiplier) * op.flops
        per_device = achieved / duration / max(1, len(devices))
        for device in devices:
            trace.add_busy(
                device_id=device,
                start=start,
                duration=duration,
                flops_per_second=per_device,
                metaop_index=metaop_index,
            )

    def parameter_sync_time(
        self,
        tasks: Sequence[SpindleTask],
        task_devices: dict[str, Sequence[int]],
    ) -> float:
        """Critical-path time of cross-task parameter synchronisation.

        Every shared parameter key is all-reduced across the union of the
        device groups of the tasks that activate it; task-local parameters are
        all-reduced within their task's own device group (plain data-parallel
        gradient synchronisation).  The critical path is the busiest device's
        accumulated synchronisation time, and the same backward-overlap credit
        used by the Spindle runtime engine is applied, so the accounting
        matches across systems.
        """
        key_devices: dict[str, set[int]] = {}
        key_bytes: dict[str, float] = {}
        anonymous: list[tuple[float, tuple[int, ...]]] = []
        for task in tasks:
            devices = tuple(task_devices[task.name])
            for op in task.operators:
                if op.param_bytes == 0:
                    continue
                if op.param_key is None:
                    anonymous.append((op.param_bytes, devices))
                    continue
                key_devices.setdefault(op.param_key, set()).update(devices)
                key_bytes[op.param_key] = max(
                    key_bytes.get(op.param_key, 0.0), op.param_bytes
                )

        per_device: dict[int, float] = {}

        def charge(volume: float, devices: Sequence[int]) -> None:
            group = sorted(set(devices))
            if len(group) <= 1 or volume <= 0:
                return
            link = self.cluster.group_bandwidth(group)
            time = ring_allreduce_time(volume, len(group), link)
            for device in group:
                per_device[device] = per_device.get(device, 0.0) + time

        # Group shared keys by their device group so each group pays a single
        # fused all-reduce, as NCCL communication groups would.
        grouped: dict[tuple[int, ...], float] = {}
        for key, devices in key_devices.items():
            group = tuple(sorted(devices))
            grouped[group] = grouped.get(group, 0.0) + key_bytes[key]
        for group, volume in grouped.items():
            charge(volume, group)
        for volume, devices in anonymous:
            charge(volume, devices)
        if not per_device:
            return 0.0
        return max(per_device.values()) * (1.0 - SYNC_OVERLAP_FRACTION)

    def device_memory(
        self,
        tasks: Sequence[SpindleTask],
        task_devices: dict[str, Sequence[int]],
        operator_devices: dict[str, Sequence[int]] | None = None,
    ) -> dict[int, float]:
        """Per-device memory footprint given each task's (or operator's) devices."""
        memory = {
            device.device_id: self.memory_model.framework_overhead()
            for device in self.cluster.devices
        }
        seen_param_keys: dict[int, set[str]] = {d: set() for d in memory}
        for task in tasks:
            for op in task.operators:
                if operator_devices is not None and op.name in operator_devices:
                    devices = list(operator_devices[op.name])
                else:
                    devices = list(task_devices[task.name])
                n = max(1, len(devices))
                params = self.memory_model.parameter_state_bytes(op, n)
                acts = self.memory_model.activation_bytes(op, n)
                for device in devices:
                    if op.param_key is None or op.param_key not in seen_param_keys[device]:
                        memory[device] += params
                        if op.param_key is not None:
                            seen_param_keys[device].add(op.param_key)
                    memory[device] += acts
        return memory
