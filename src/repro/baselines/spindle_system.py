"""The full Spindle system: execution planner + runtime engine behind the
common :class:`~repro.baselines.base.TrainingSystem` interface."""

from __future__ import annotations

from typing import Sequence

from repro.baselines.base import SystemCapabilities, TrainingSystem
from repro.cluster.topology import ClusterTopology
from repro.core.plan import ExecutionPlan
from repro.core.planner import ExecutionPlanner
from repro.costmodel.memory import MemoryModel
from repro.costmodel.timing import TimingModelConfig
from repro.graph.task import SpindleTask
from repro.obs import get_tracer
from repro.runtime.engine import RuntimeEngine
from repro.runtime.results import IterationResult
from repro.service.cache import PlanCache
from repro.service.fingerprint import fingerprint_workload


class SpindleSystem(TrainingSystem):
    """Spindle: wavefront-scheduled MT MM training (the paper's contribution).

    When a :class:`~repro.service.cache.PlanCache` is attached (``plan_cache``),
    planning first consults the cache under the workload's canonical
    fingerprint; a hit returns the cached plan with zero planning cost, which
    is how dynamic workloads with recurring phases skip re-planning.
    """

    name = "spindle"
    capabilities = SystemCapabilities(inter_task_aware=True, intra_task_aware=True)

    def __init__(
        self,
        cluster: ClusterTopology,
        timing_config: TimingModelConfig | None = None,
        memory_model: MemoryModel | None = None,
        placement_strategy: str = "locality",
        profile_noise_std: float = 0.0,
        plan_cache: PlanCache | None = None,
    ) -> None:
        super().__init__(cluster, timing_config, memory_model)
        self.placement_strategy = placement_strategy
        self.profile_noise_std = profile_noise_std
        self._timing_config = timing_config
        self.plan_cache = plan_cache
        self.last_plan: ExecutionPlan | None = None
        self.last_engine: RuntimeEngine | None = None
        self.last_plan_cached: bool = False

    def plan(self, tasks: Sequence[SpindleTask]) -> ExecutionPlan:
        """Run the execution planner only (used by planner-cost experiments)."""
        planner = ExecutionPlanner(
            self.cluster,
            timing_config=self._timing_config,
            memory_model=self.memory_model,
            placement_strategy=self.placement_strategy,
            profile_noise_std=self.profile_noise_std,
        )
        tasks = list(tasks)
        # Fingerprinting happens outside the timed window: it is cache-key
        # work, not planning work, and must not skew the planner-cost numbers
        # (Fig. 12) this system reports.
        fingerprint = fingerprint_workload(
            tasks, self.cluster, planner.config_signature()
        )
        if self.plan_cache is not None:
            cached = self.plan_cache.get(fingerprint)
            if cached is not None:
                self.last_planning_seconds = 0.0
                self.last_plan = cached
                self.last_plan_cached = True
                return cached
        with get_tracer().timed(
            "system.plan", category="system", system=self.name
        ) as span:
            plan = planner.plan(tasks, fingerprint=fingerprint)
        self.last_planning_seconds = span.seconds
        self.last_plan = plan
        self.last_plan_cached = False
        if self.plan_cache is not None:
            self.plan_cache.put(fingerprint, plan)
        return plan

    def run_iteration(self, tasks: Sequence[SpindleTask]) -> IterationResult:
        plan = self.plan(tasks)
        engine = RuntimeEngine(plan, timing_config=self._timing_config)
        self.last_engine = engine
        result = engine.run_iteration()
        result.metadata["system"] = self.name
        result.metadata["planning_seconds"] = self.last_planning_seconds
        result.metadata["num_metaops"] = plan.metagraph.num_metaops
        result.metadata["theoretical_optimum"] = plan.theoretical_optimum
        return result
