"""DistMM-MT: intra-task tower-level allocation, sequential tasks (§5.1).

DistMM accelerates single-task multi-modal training by allocating appropriate
resources to the different multi-tower modality encoders of the task.  The
multi-task extension evaluated in the paper (DistMM-MT) applies this strategy
to every task independently and then executes the tasks sequentially, so it is
intra-task heterogeneity aware but not inter-task aware.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.base import SystemCapabilities, TrainingSystem
from repro.graph.graph import ComputationGraph
from repro.graph.ops import Operator
from repro.graph.task import SpindleTask
from repro.runtime.results import IterationResult, TimeBreakdown


class DistMMMTSystem(TrainingSystem):
    """Tower-level resource allocation within each task, tasks run one by one."""

    name = "distmm-mt"
    capabilities = SystemCapabilities(inter_task_aware=False, intra_task_aware=True)

    def run_iteration(self, tasks: Sequence[SpindleTask]) -> IterationResult:
        if not tasks:
            raise ValueError("At least one task is required")
        graph = self._unified_graph(tasks)
        metaop_labels = self._metaop_labels(graph)
        trace = self._new_trace()
        num_devices = self.cluster.num_devices
        all_devices = list(range(num_devices))

        current_time = 0.0
        compute_total = 0.0
        operator_devices: dict[str, list[int]] = {}
        for task in tasks:
            task_graph = graph.task_subgraph(task.name)
            towers, dependents = self._split_towers(task_graph)
            allocations = self._allocate_towers(task, towers, num_devices)

            # Phase 1: the independent towers run concurrently on their shares.
            tower_phase = 0.0
            cursor = 0
            for tower_ops, n in zip(towers, allocations):
                devices = all_devices[cursor : cursor + n]
                cursor += n
                tower_time = 0.0
                op_start = current_time
                for op in tower_ops:
                    duration = self.timing_model.operator_time(op, n)
                    self._record_operator(
                        trace,
                        op,
                        devices,
                        start=op_start,
                        duration=duration,
                        metaop_index=metaop_labels.get(op.name),
                    )
                    operator_devices[op.name] = devices
                    op_start += duration
                    tower_time += duration
                tower_phase = max(tower_phase, tower_time)
            current_time += tower_phase
            compute_total += tower_phase

            # Phase 2: the dependent (cross-modal) operators run on all devices.
            for op in dependents:
                duration = self.timing_model.operator_time(op, num_devices)
                self._record_operator(
                    trace,
                    op,
                    all_devices,
                    start=current_time,
                    duration=duration,
                    metaop_index=metaop_labels.get(op.name),
                )
                operator_devices[op.name] = all_devices
                current_time += duration
                compute_total += duration

        task_devices = {task.name: all_devices for task in tasks}
        sync = self.parameter_sync_time(tasks, task_devices)
        iteration_time = current_time + sync
        trace.end_time = max(trace.end_time, iteration_time)

        breakdown = TimeBreakdown(
            forward_backward=compute_total, param_sync=sync, send_recv=0.0
        )
        return IterationResult(
            iteration_time=iteration_time,
            breakdown=breakdown,
            trace=trace,
            device_memory_bytes=self.device_memory(
                tasks, task_devices, operator_devices=operator_devices
            ),
            num_waves=len(tasks),
            metadata={"system": self.name},
        )

    # ----------------------------------------------------------------- helpers
    @staticmethod
    def _split_towers(
        task_graph: ComputationGraph,
    ) -> tuple[list[list[Operator]], list[Operator]]:
        """Separate the task's independent towers from the dependent tail.

        A tower is the chain of operators reachable from one task input before
        any operator with more than one predecessor (the fusion point); the
        remaining operators form the dependent cross-modal part executed after
        the towers.
        """
        towers: list[list[Operator]] = []
        tower_names: set[str] = set()
        for source in task_graph.sources():
            tower: list[Operator] = []
            name = source
            while True:
                tower.append(task_graph.operator(name))
                tower_names.add(name)
                successors = task_graph.successors(name)
                if len(successors) != 1:
                    break
                nxt = successors[0]
                if task_graph.in_degree(nxt) != 1:
                    break
                name = nxt
            towers.append(tower)
        dependents = [
            task_graph.operator(name)
            for name in task_graph.topological_order()
            if name not in tower_names
        ]
        return towers, dependents

    def _tower_time(self, tower: list[Operator], n_devices: int) -> float:
        return sum(self.timing_model.operator_time(op, n_devices) for op in tower)

    def _allocate_towers(
        self, task: SpindleTask, towers: list[list[Operator]], num_devices: int
    ) -> list[int]:
        """Split the cluster among the towers to balance their finish times.

        DistMM co-locates the encoders of one task and sizes their device
        groups so the towers finish together.  For the common two-tower case we
        search the valid split directly; larger tower counts fall back to a
        greedy assignment that always grows the currently-slowest tower.
        """
        if len(towers) == 1:
            return [num_devices]
        if len(towers) == 2:
            flops = [sum(op.flops for op in tower) for tower in towers]
            ideal0 = num_devices * flops[0] / max(1.0, sum(flops))
            best: tuple[tuple[float, float], list[int]] | None = None
            for n0 in range(1, num_devices):
                n1 = num_devices - n0
                phase = max(
                    self._tower_time(towers[0], n0), self._tower_time(towers[1], n1)
                )
                # Ties (e.g. launch-bound towers) fall back to the split closest
                # to the FLOP-proportional share.
                score = (phase, abs(n0 - ideal0))
                if best is None or score < best[0]:
                    best = (score, [n0, n1])
            assert best is not None
            return best[1]
        # Greedy: start every tower at one device, repeatedly grow the
        # currently-slowest tower while devices remain.
        shares = [1] * len(towers)
        remaining = num_devices - len(towers)
        while remaining > 0:
            slowest = max(
                range(len(towers)),
                key=lambda i: self._tower_time(towers[i], shares[i]),
            )
            shares[slowest] += 1
            remaining -= 1
        return shares
