"""Spindle-Optimus: workload-aware task-level resource allocation (§5.1).

Inspired by the Optimus cluster scheduler, this baseline allocates devices to
whole tasks by the marginal gain ``(T(n) - T(n')) / (n' - n)`` — the reduction
in task completion time per additional device — and then runs all tasks
concurrently, each on its own device block.  It is inter-task heterogeneity
aware but blind to the workload variation inside a task, which is what limits
it relative to Spindle's operator-level strategy.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.base import SystemCapabilities, TrainingSystem
from repro.core.allocator import default_valid_allocations
from repro.core.metagraph import MetaOp
from repro.graph.task import SpindleTask
from repro.runtime.results import IterationResult, TimeBreakdown


class SpindleOptimusSystem(TrainingSystem):
    """Greedy marginal-gain task-level allocation; tasks run concurrently."""

    name = "spindle-optimus"
    capabilities = SystemCapabilities(inter_task_aware=True, intra_task_aware=False)

    def run_iteration(self, tasks: Sequence[SpindleTask]) -> IterationResult:
        if not tasks:
            raise ValueError("At least one task is required")
        graph = self._unified_graph(tasks)
        metaop_labels = self._metaop_labels(graph)
        num_devices = self.cluster.num_devices

        rounds = self._split_into_rounds(tasks, num_devices)
        trace = self._new_trace()
        compute_total = 0.0
        all_allocations: dict[str, int] = {}
        task_devices: dict[str, list[int]] = {}
        for round_tasks in rounds:
            allocations = self.allocate(round_tasks, num_devices)
            devices = self._assign_device_blocks(round_tasks, allocations)
            all_allocations.update(allocations)
            task_devices.update(devices)

            round_duration = 0.0
            for task in round_tasks:
                task_block = devices[task.name]
                n = len(task_block)
                task_graph = graph.task_subgraph(task.name)
                op_start = compute_total
                for name in task_graph.topological_order():
                    op = task_graph.operator(name)
                    duration = self.timing_model.operator_time(op, n)
                    self._record_operator(
                        trace,
                        op,
                        task_block,
                        start=op_start,
                        duration=duration,
                        metaop_index=metaop_labels.get(name),
                    )
                    op_start += duration
                round_duration = max(round_duration, op_start - compute_total)
            compute_total += round_duration

        sync = self.parameter_sync_time(tasks, task_devices)
        iteration_time = compute_total + sync
        trace.end_time = max(trace.end_time, iteration_time)

        breakdown = TimeBreakdown(
            forward_backward=compute_total, param_sync=sync, send_recv=0.0
        )
        return IterationResult(
            iteration_time=iteration_time,
            breakdown=breakdown,
            trace=trace,
            device_memory_bytes=self.device_memory(tasks, task_devices),
            num_waves=len(rounds),
            metadata={
                "system": self.name,
                "task_allocations": all_allocations,
            },
        )

    def _split_into_rounds(
        self, tasks: Sequence[SpindleTask], num_devices: int
    ) -> list[list[SpindleTask]]:
        """Partition tasks into rounds when there are more tasks than devices.

        Task-level allocation needs at least one device per concurrently
        running task, so on small clusters the tasks are balanced (by total
        FLOPs) across ``ceil(T / N)`` sequential rounds.
        """
        num_rounds = -(-len(tasks) // num_devices)
        if num_rounds == 1:
            return [list(tasks)]
        rounds: list[list[SpindleTask]] = [[] for _ in range(num_rounds)]
        loads = [0.0] * num_rounds
        for task in sorted(tasks, key=lambda t: t.flops, reverse=True):
            lightest = min(range(num_rounds), key=lambda i: loads[i])
            rounds[lightest].append(task)
            loads[lightest] += task.flops
        return [r for r in rounds if r]

    # ----------------------------------------------------------------- helpers
    def task_completion_time(self, task: SpindleTask, n_devices: int) -> float:
        """Completion time of one task executed entirely on ``n_devices``."""
        return sum(
            self.timing_model.operator_time(op, n_devices) for op in task.operators
        )

    def _valid_task_allocations(self, task: SpindleTask, num_devices: int) -> list[int]:
        proxy = MetaOp(index=0, operators=[task.operators[0]])
        return default_valid_allocations(proxy, num_devices)

    def allocate(self, tasks: Sequence[SpindleTask], num_devices: int) -> dict[str, int]:
        """Greedy marginal-gain allocation of devices to tasks."""
        if len(tasks) > num_devices:
            raise ValueError(
                f"Task-level allocation needs at least one device per task: "
                f"{len(tasks)} tasks on {num_devices} devices"
            )
        allocations = {task.name: 1 for task in tasks}
        remaining = num_devices - len(tasks)
        valid = {
            task.name: self._valid_task_allocations(task, num_devices)
            for task in tasks
        }
        times = {
            task.name: self.task_completion_time(task, 1) for task in tasks
        }
        task_by_name = {task.name: task for task in tasks}

        while remaining > 0:
            best_name = None
            best_gain = 0.0
            best_next = None
            for name, current in allocations.items():
                upgrades = [
                    n for n in valid[name] if current < n <= current + remaining
                ]
                if not upgrades:
                    continue
                nxt = min(upgrades)
                new_time = self.task_completion_time(task_by_name[name], nxt)
                gain = (times[name] - new_time) / (nxt - current)
                if gain > best_gain:
                    best_gain, best_name, best_next = gain, name, nxt
            if best_name is None or best_gain <= 0:
                break
            remaining -= best_next - allocations[best_name]
            allocations[best_name] = best_next
            times[best_name] = self.task_completion_time(
                task_by_name[best_name], best_next
            )
        return allocations

    def _assign_device_blocks(
        self, tasks: Sequence[SpindleTask], allocations: dict[str, int]
    ) -> dict[str, list[int]]:
        """Assign contiguous device blocks to tasks, heaviest tasks first."""
        order = sorted(tasks, key=lambda t: allocations[t.name], reverse=True)
        cursor = 0
        blocks: dict[str, list[int]] = {}
        for task in order:
            n = allocations[task.name]
            blocks[task.name] = list(range(cursor, cursor + n))
            cursor += n
        return blocks
