"""Thread-safe fingerprint-keyed plan cache with LRU eviction and TTL expiry.

The cache stores, per fingerprint, the live :class:`ExecutionPlan` object and
— rendered lazily, on first payload access, via
:mod:`repro.core.serialization` — its serialized JSON document.  Serving the
stored string rather than re-serializing per request guarantees that every
payload hit returns a byte-identical document, which lets downstream consumers
(request routers, content-addressed stores) deduplicate responses by raw
bytes; deferring the render means cache users that only ever consume live
plans (e.g. the dynamic-workload runner) never pay for serialization.

Entries expire ``ttl_seconds`` after insertion (``None`` disables expiry) and
the least-recently-used entry is evicted once ``capacity`` is exceeded.  The
cache can persist its payloads to a JSON file and reload them later; reloaded
entries carry the payload only (the live plan objects are not reconstructed),
which is what a serving tier restarted from a snapshot needs — :meth:`get`
treats such entries as misses while :meth:`get_payload` serves them.

Fingerprints are canonical (see :mod:`repro.service.fingerprint`): requests
that differ only in task naming or ordering share one entry, so the served
plan embeds the task/operator names of whichever structurally-equal request
was planned first.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.core.plan import ExecutionPlan
from repro.core.serialization import plan_to_json

#: Version tag of the persisted cache snapshot format.
CACHE_SNAPSHOT_VERSION = 1


class CacheError(Exception):
    """Raised for invalid cache configuration or malformed snapshots."""


@dataclass
class CacheStats:
    """Counters describing the cache's behaviour since construction."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _CacheEntry:
    plan: Optional[ExecutionPlan]
    inserted_at: float
    payload: Optional[str] = None
    hits: int = field(default=0)


class PlanCache:
    """LRU + TTL cache mapping workload fingerprints to execution plans.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently used entry is evicted
        when a put would exceed it.
    ttl_seconds:
        Entries older than this are treated as absent (and dropped on access).
        ``None`` means entries never expire.
    clock:
        Monotonic time source, injectable for deterministic TTL tests.
    """

    def __init__(
        self,
        capacity: int = 64,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity <= 0:
            raise CacheError("Cache capacity must be positive")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise CacheError("ttl_seconds must be positive (or None to disable)")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[str, _CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    # ----------------------------------------------------------------- access
    def get(self, fingerprint: str) -> Optional[ExecutionPlan]:
        """Return the cached live plan, or ``None`` on miss/expiry.

        Payload-only entries (loaded from a snapshot) count as misses here:
        the caller will have to plan anyway, and the hit rate should say so.
        """
        entry = self._lookup(fingerprint, need_plan=True)
        return entry.plan if entry is not None else None

    def get_payload(self, fingerprint: str) -> Optional[str]:
        """Return the serialized plan document (byte-identical across hits).

        The document is rendered on first access and stored, so every
        subsequent hit serves the exact same bytes.
        """
        entry = self._lookup(fingerprint)
        if entry is None:
            return None
        if entry.payload is None:
            # Render outside the lock; concurrent renders of the same plan
            # produce identical strings, so last-writer-wins is benign.
            entry.payload = plan_to_json(entry.plan)
        return entry.payload

    def put(
        self,
        fingerprint: str,
        plan: ExecutionPlan,
        payload: str | None = None,
    ) -> None:
        """Insert a plan; its payload is rendered lazily unless supplied."""
        entry = _CacheEntry(payload=payload, plan=plan, inserted_at=self._clock())
        with self._lock:
            self._entries[fingerprint] = entry
            self._entries.move_to_end(fingerprint)
            self.stats.puts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self, fingerprint: str) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            return self._entries.pop(fingerprint, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def purge_expired(self) -> int:
        """Drop all expired entries; returns how many were removed."""
        if self.ttl_seconds is None:
            return 0
        now = self._clock()
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if now - entry.inserted_at > self.ttl_seconds
            ]
            for key in stale:
                del self._entries[key]
                self.stats.expirations += 1
        return len(stale)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                return False
            return not self._expired(entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def fingerprints(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    # ------------------------------------------------------------ persistence
    def save(self, path: str | Path) -> Path:
        """Write the cached payloads (keyed by fingerprint) to ``path``."""
        with self._lock:
            for entry in self._entries.values():
                if entry.payload is None:
                    entry.payload = plan_to_json(entry.plan)
            snapshot = {
                "format_version": CACHE_SNAPSHOT_VERSION,
                "entries": {
                    key: entry.payload for key, entry in self._entries.items()
                },
            }
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(snapshot), encoding="utf-8")
        return path

    def load(self, path: str | Path) -> int:
        """Load payload-only entries from a snapshot; returns how many."""
        try:
            snapshot = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise CacheError(f"Invalid cache snapshot {path}: {exc}") from exc
        if snapshot.get("format_version") != CACHE_SNAPSHOT_VERSION:
            raise CacheError(
                f"Unsupported cache snapshot version "
                f"{snapshot.get('format_version')!r}"
            )
        entries = snapshot.get("entries")
        if not isinstance(entries, dict):
            raise CacheError("Cache snapshot is missing its 'entries' mapping")
        now = self._clock()
        with self._lock:
            for key, payload in entries.items():
                if not isinstance(payload, str):
                    raise CacheError(f"Snapshot entry {key!r} is not a payload string")
                self._entries[key] = _CacheEntry(
                    payload=payload, plan=None, inserted_at=now
                )
                self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return len(entries)

    # -------------------------------------------------------------- internals
    def _expired(self, entry: _CacheEntry) -> bool:
        return (
            self.ttl_seconds is not None
            and self._clock() - entry.inserted_at > self.ttl_seconds
        )

    def _lookup(
        self, fingerprint: str, need_plan: bool = False
    ) -> Optional[_CacheEntry]:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.stats.misses += 1
                return None
            if self._expired(entry):
                del self._entries[fingerprint]
                self.stats.expirations += 1
                self.stats.misses += 1
                return None
            if need_plan and entry.plan is None:
                # Snapshot-loaded entry: the payload is servable but the
                # caller needs a live plan, which it will have to compute.
                self.stats.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            entry.hits += 1
            self.stats.hits += 1
            return entry
