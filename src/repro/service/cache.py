"""Thread-safe fingerprint-keyed plan cache with LRU eviction and TTL expiry.

The cache stores, per fingerprint, the live :class:`ExecutionPlan` object and
— rendered lazily, on first payload access, via
:mod:`repro.core.serialization` — its serialized JSON document.  Serving the
stored string rather than re-serializing per request guarantees that every
payload hit returns a byte-identical document, which lets downstream consumers
(request routers, content-addressed stores) deduplicate responses by raw
bytes; deferring the render means cache users that only ever consume live
plans (e.g. the dynamic-workload runner) never pay for serialization.

Entries expire ``ttl_seconds`` after insertion (``None`` disables expiry) and
the least-recently-used entry is evicted once ``capacity`` is exceeded.
Expired entries are not discarded outright: they move to a bounded stale side
list, retrievable via :meth:`get_stale`, which is the "serve stale, flagged"
tier of the service's degradation ladder — when planning itself is failing, a
recently-expired plan beats no plan.  The cache can persist its payloads to a
JSON file and reload them later; reloaded entries carry the payload only (the
live plan objects are not reconstructed), which is what a serving tier
restarted from a snapshot needs — :meth:`get` treats such entries as misses
while :meth:`get_payload` serves them.

Rendered payloads carry a SHA-256 checksum computed at render time;
:meth:`get_payload` re-verifies it on every serve and quarantines (drops and
counts) entries whose bytes no longer match — corrupted payloads are treated
as misses, never served.  With a telemetry ``journal`` attached each
quarantine is additionally journaled as a ``cache.quarantined`` event
carrying the entry's fingerprint (cache-scoped, so no trace ID — the
corruption is attributed to the *entry*, while the injection that caused it
is attributed to its request by the fault injector).

Fingerprints are canonical (see :mod:`repro.service.fingerprint`): requests
that differ only in task naming or ordering share one entry, so the served
plan embeds the task/operator names of whichever structurally-equal request
was planned first.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.core.plan import ExecutionPlan
from repro.core.serialization import plan_to_json

#: Version tag of the persisted cache snapshot format.
CACHE_SNAPSHOT_VERSION = 1


def payload_checksum(payload: str) -> str:
    """SHA-256 hex digest of a serialized plan payload."""
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CacheError(Exception):
    """Raised for invalid cache configuration or malformed snapshots."""


@dataclass
class CacheStats:
    """Counters describing the cache's behaviour since construction."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    expirations: int = 0
    #: Payloads whose checksum no longer matched at serve time (quarantined).
    corruptions: int = 0
    #: Expired or snapshot-only entries served through :meth:`get_stale`.
    stale_hits: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "corruptions": self.corruptions,
            "stale_hits": self.stale_hits,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _CacheEntry:
    plan: Optional[ExecutionPlan]
    inserted_at: float
    payload: Optional[str] = None
    checksum: Optional[str] = None
    hits: int = field(default=0)
    #: Monotonic recency stamp (shared across the stripes of a striped
    #: cache); the entry with the smallest stamp is the global LRU victim.
    stamp: int = field(default=0)

    def render(self) -> str:
        """Render (and checksum) the payload on first access."""
        if self.payload is None:
            self.payload = plan_to_json(self.plan)
            self.checksum = payload_checksum(self.payload)
        return self.payload

    def payload_intact(self) -> bool:
        """Whether the stored payload still matches its checksum.

        Entries without a checksum (legacy v1 snapshots) are trusted —
        there is nothing to verify against.
        """
        if self.payload is None or self.checksum is None:
            return True
        return payload_checksum(self.payload) == self.checksum


class PlanCache:
    """LRU + TTL cache mapping workload fingerprints to execution plans.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently used entry is evicted
        when a put would exceed it.
    ttl_seconds:
        Entries older than this are treated as absent (and dropped on access).
        ``None`` means entries never expire.
    clock:
        Monotonic time source, injectable for deterministic TTL tests.
    journal:
        Optional :class:`~repro.obs.telemetry.TelemetryJournal` receiving a
        ``cache.quarantined`` event per checksum-mismatch quarantine; a
        :class:`~repro.service.server.PlanService` attaches its own journal
        here when the cache has none.
    stamp_source:
        Monotonic recency-stamp counter (``next(...)`` yields an int).  Each
        get/put stamps the touched entry, mirroring the LRU reordering.  A
        striped cache shares one counter across its stripes so the stripe
        heads are globally comparable; standalone caches keep a private one.
    """

    def __init__(
        self,
        capacity: int = 64,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        journal=None,
        stamp_source=None,
    ) -> None:
        if capacity <= 0:
            raise CacheError("Cache capacity must be positive")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise CacheError("ttl_seconds must be positive (or None to disable)")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self.journal = journal
        # itertools.count.__next__ is atomic in CPython, so stamping under a
        # *stripe* lock with a shared counter never tears.
        self._stamps = stamp_source if stamp_source is not None else itertools.count(1)
        self._entries: OrderedDict[str, _CacheEntry] = OrderedDict()
        # Expired entries, retained (bounded by capacity) for the service's
        # stale-serving degradation tier; never returned by get()/get_payload().
        self._stale: OrderedDict[str, _CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    # ----------------------------------------------------------------- access
    def get(self, fingerprint: str) -> Optional[ExecutionPlan]:
        """Return the cached live plan, or ``None`` on miss/expiry.

        Payload-only entries (loaded from a snapshot) count as misses here:
        the caller will have to plan anyway, and the hit rate should say so.
        """
        entry = self._lookup(fingerprint, need_plan=True)
        return entry.plan if entry is not None else None

    def get_payload(self, fingerprint: str) -> Optional[str]:
        """Return the serialized plan document (byte-identical across hits).

        The document is rendered on first access and stored with its
        checksum, so every subsequent hit serves the exact same verified
        bytes.  A checksum mismatch quarantines the entry (dropped, counted
        in ``stats.corruptions``) and reports a miss — corrupt bytes are
        never served.
        """
        entry = self._lookup(fingerprint)
        if entry is None:
            return None
        # Render outside the lock; concurrent renders of the same plan
        # produce identical strings, so last-writer-wins is benign.
        payload = entry.render()
        if not entry.payload_intact():
            self._quarantine(fingerprint)
            return None
        return payload

    def get_stale(self, fingerprint: str) -> "Optional[tuple[ExecutionPlan | None, str | None]]":
        """Serve an expired or snapshot-only entry (degraded tier).

        Returns ``(plan, payload)`` — either may be ``None`` (snapshot
        entries carry no live plan; never-rendered expired entries carry no
        payload).  Corrupted payloads are quarantined here too.  Fresh
        entries are *not* served through this path; use :meth:`get`.
        """
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                if self._expired(entry):
                    del self._entries[fingerprint]
                    self._remember_stale(fingerprint, entry)
                    self.stats.expirations += 1
                elif entry.plan is None:
                    # Snapshot-loaded payload-only entry: stale-servable.
                    pass
                else:
                    return None  # fresh and live: not a stale serve
            entry = self._stale.get(fingerprint) or (
                entry if entry is not None and entry.plan is None else None
            )
            if entry is None:
                return None
        if entry.payload is not None and not entry.payload_intact():
            with self._lock:
                self._stale.pop(fingerprint, None)
                self._entries.pop(fingerprint, None)
                self.stats.corruptions += 1
            self._journal_quarantine(fingerprint)
            return None
        with self._lock:
            self.stats.stale_hits += 1
        return entry.plan, entry.payload

    def put(
        self,
        fingerprint: str,
        plan: ExecutionPlan,
        payload: str | None = None,
    ) -> None:
        """Insert a plan; its payload is rendered lazily unless supplied."""
        entry = _CacheEntry(
            payload=payload,
            checksum=payload_checksum(payload) if payload is not None else None,
            plan=plan,
            inserted_at=self._clock(),
            stamp=next(self._stamps),
        )
        with self._lock:
            self._entries[fingerprint] = entry
            self._entries.move_to_end(fingerprint)
            self.stats.puts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def put_payload(
        self,
        fingerprint: str,
        payload: str,
        checksum: str | None = None,
    ) -> None:
        """Insert a payload-only entry (snapshot restore / warm start).

        Such entries serve ``get_payload``/``get_stale`` but miss on
        :meth:`get` — the live plan was not reconstructed.  ``checksum``
        enables integrity verification on every serve; ``None`` (legacy v1
        snapshots) stores the payload unverified.
        """
        entry = _CacheEntry(
            payload=payload,
            checksum=checksum,
            plan=None,
            inserted_at=self._clock(),
            stamp=next(self._stamps),
        )
        with self._lock:
            self._entries[fingerprint] = entry
            self._entries.move_to_end(fingerprint)
            self.stats.puts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self, fingerprint: str) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            return self._entries.pop(fingerprint, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._stale.clear()

    def purge_expired(self) -> int:
        """Move all expired entries to the stale list; returns how many."""
        if self.ttl_seconds is None:
            return 0
        now = self._clock()
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if now - entry.inserted_at > self.ttl_seconds
            ]
            for key in stale:
                self._remember_stale(key, self._entries.pop(key))
                self.stats.expirations += 1
        return len(stale)

    def corrupt(self, fingerprint: str) -> bool:
        """Flip bytes in the stored payload (fault injection / tests only).

        Renders the payload first so there is something to corrupt; the
        checksum is *not* updated, which is the point — the next
        :meth:`get_payload` or store save must detect the mismatch.  Returns
        whether an entry was corrupted.
        """
        with self._lock:
            entry = self._entries.get(fingerprint) or self._stale.get(fingerprint)
        if entry is None:
            return False
        if entry.payload is None:
            entry.render()
        entry.payload = entry.payload[:-8] + "CORRUPT}"
        return True

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                return False
            return not self._expired(entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def fingerprints(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    # The two hooks a striped cache's global-LRU trim needs: each stripe's
    # OrderedDict is in recency order (stamps strictly increase per touch),
    # so the head entry carries the stripe-minimal stamp, and the stripe with
    # the smallest head stamp holds the globally least-recently-used entry.
    def lru_stamp(self) -> int | None:
        """Recency stamp of this cache's LRU entry (``None`` when empty)."""
        with self._lock:
            if not self._entries:
                return None
            return next(iter(self._entries.values())).stamp

    def evict_lru(self) -> str | None:
        """Evict the least-recently-used entry; returns its fingerprint."""
        with self._lock:
            if not self._entries:
                return None
            fingerprint, _ = self._entries.popitem(last=False)
            self.stats.evictions += 1
            return fingerprint

    # ------------------------------------------------------------ persistence
    def save(self, path: str | Path) -> Path:
        """Write the cached payloads (keyed by fingerprint) to ``path``."""
        with self._lock:
            for entry in self._entries.values():
                entry.render()
            snapshot = {
                "format_version": CACHE_SNAPSHOT_VERSION,
                "entries": {
                    key: entry.payload for key, entry in self._entries.items()
                },
            }
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(snapshot), encoding="utf-8")
        return path

    def load(self, path: str | Path) -> int:
        """Load payload-only entries from a snapshot; returns how many."""
        try:
            snapshot = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise CacheError(f"Invalid cache snapshot {path}: {exc}") from exc
        if snapshot.get("format_version") != CACHE_SNAPSHOT_VERSION:
            raise CacheError(
                f"Unsupported cache snapshot version "
                f"{snapshot.get('format_version')!r}"
            )
        entries = snapshot.get("entries")
        if not isinstance(entries, dict):
            raise CacheError("Cache snapshot is missing its 'entries' mapping")
        now = self._clock()
        with self._lock:
            for key, payload in entries.items():
                if not isinstance(payload, str):
                    raise CacheError(f"Snapshot entry {key!r} is not a payload string")
                self._entries[key] = _CacheEntry(
                    payload=payload,
                    plan=None,
                    inserted_at=now,
                    stamp=next(self._stamps),
                )
                self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return len(entries)

    # -------------------------------------------------------------- internals
    def _expired(self, entry: _CacheEntry) -> bool:
        return (
            self.ttl_seconds is not None
            and self._clock() - entry.inserted_at > self.ttl_seconds
        )

    def _remember_stale(self, fingerprint: str, entry: _CacheEntry) -> None:
        """Retain an expired entry for stale serving (bounded, LRU)."""
        self._stale[fingerprint] = entry
        self._stale.move_to_end(fingerprint)
        while len(self._stale) > self.capacity:
            self._stale.popitem(last=False)

    def _quarantine(self, fingerprint: str) -> None:
        """Drop a corrupted entry everywhere and count the detection.

        The triggering access was already counted as a hit by ``_lookup``;
        re-classify it as a miss so ``requests`` still counts it once.
        """
        with self._lock:
            self._entries.pop(fingerprint, None)
            self._stale.pop(fingerprint, None)
            self.stats.corruptions += 1
            self.stats.hits -= 1
            self.stats.misses += 1
        self._journal_quarantine(fingerprint)

    def _journal_quarantine(self, fingerprint: str) -> None:
        if self.journal is not None:
            self.journal.emit("cache.quarantined", None, fingerprint=fingerprint)

    def stale_fingerprints(self) -> list[str]:
        with self._lock:
            return list(self._stale)

    def _lookup(
        self, fingerprint: str, need_plan: bool = False
    ) -> Optional[_CacheEntry]:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.stats.misses += 1
                return None
            if self._expired(entry):
                self._remember_stale(fingerprint, self._entries.pop(fingerprint))
                self.stats.expirations += 1
                self.stats.misses += 1
                return None
            if need_plan and entry.plan is None:
                # Snapshot-loaded entry: the payload is servable but the
                # caller needs a live plan, which it will have to compute.
                self.stats.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            entry.hits += 1
            entry.stamp = next(self._stamps)
            self.stats.hits += 1
            return entry
