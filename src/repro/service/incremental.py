"""Incremental re-planning: reuse scalability curves across plan requests.

Scalability estimation dominates the planner's cost (Fig. 12): every MetaOp is
profiled at several allocation sizes before its piecewise alpha-beta curve is
fitted.  A MetaOp's curve, however, depends only on its representative
operator's workload (type, tensor shape, FLOPs, parameters, batch) and on the
cluster — not on which other tasks happen to be in the request.  Dynamic
workloads (Appendix D) therefore re-profile mostly unchanged MetaOps at every
phase transition.

:class:`IncrementalPlanner` exploits this purity: it keeps an LRU pool of
fitted curves keyed by the MetaOp workload signature and hands them to the
planner as precomputed curves, so a phase transition only profiles the MetaOps
it has never seen.  The pool must not be shared across different clusters or
planner configurations — curves embed both — which the class enforces by
binding to one planner instance.

With ``reuse_levels=True`` the wrapper additionally retains the most recent
plan and routes requests through
:meth:`~repro.core.planner.ExecutionPlanner.plan_incremental`, which adopts
structurally unchanged MetaLevel allocations — and, on a full structural
match, the schedule and device placement too — instead of re-solving them.
The produced plans stay byte-identical to a full solve (the planner enforces
the soundness preconditions and the equivalence tests pin the contract); only
latency changes, which is what the unified-runtime benchmark gates.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.estimator import ScalingCurve
from repro.core.plan import ExecutionPlan
from repro.core.planner import ExecutionPlanner, PlannerInput, StageHook


class StaleTopologyError(RuntimeError):
    """The bound planner's cluster changed under an incremental planner.

    Pooled curves embed the topology they were profiled on; transferring them
    onto a different cluster silently misestimates every MetaOp.  Elastic
    replanning must build one :class:`IncrementalPlanner` per topology (see
    :class:`repro.elastic.runner.ElasticTrainingRunner`) instead of rebinding
    this one.
    """


@dataclass
class IncrementalStats:
    """Curve-reuse counters across all plans produced so far."""

    plans: int = 0
    curves_reused: int = 0
    curves_estimated: int = 0
    estimation_seconds_saved: float = 0.0
    #: MetaLevel allocations adopted from the retained previous plan
    #: (``reuse_levels=True`` only; see ``PlanningReport.reused_levels``).
    levels_reused: int = 0
    #: Plans that adopted every MetaLevel of the retained previous plan —
    #: in practice the full-structure tier, which also transfers the
    #: schedule and device placement wholesale.
    full_structure_reuses: int = 0

    @property
    def reuse_rate(self) -> float:
        total = self.curves_reused + self.curves_estimated
        if total == 0:
            return 0.0
        return self.curves_reused / total


class IncrementalPlanner:
    """Plans workloads while pooling per-MetaOp scalability curves.

    Parameters
    ----------
    planner:
        The underlying execution planner.  All plans produced through this
        wrapper share its cluster and configuration, which is what makes the
        pooled curves transferable between requests.
    max_curves:
        Capacity of the curve pool; least recently used curves are dropped.
    reuse_levels:
        Retain the most recent plan and route requests through
        :meth:`ExecutionPlanner.plan_incremental` so structurally unchanged
        MetaLevels (or whole plans) are adopted instead of re-solved.  Off by
        default: callers that never see perturbed resubmissions (one-shot
        planning, the plan service's arbitrary request streams) should not
        pay the retained-plan memory.
    """

    def __init__(
        self,
        planner: ExecutionPlanner,
        max_curves: int = 4096,
        reuse_levels: bool = False,
    ) -> None:
        if max_curves <= 0:
            raise ValueError("max_curves must be positive")
        self.planner = planner
        self.max_curves = max_curves
        self.reuse_levels = reuse_levels
        self._curves: OrderedDict[tuple, ScalingCurve] = OrderedDict()
        self._previous_plan: ExecutionPlan | None = None
        self.stats = IncrementalStats()
        self._last_estimation_cost: float | None = None
        self._topology_signature = planner.cluster.signature()

    # ------------------------------------------------------------- public API
    @property
    def cluster(self):
        """The bound planner's cluster (PlanService prototype interface)."""
        return self.planner.cluster

    def config_signature(self) -> dict:
        """The bound planner's configuration (PlanService prototype interface)."""
        return self.planner.config_signature()

    def plan(
        self,
        workload: PlannerInput,
        *,
        stage_hook: StageHook | None = None,
        fingerprint: str | None = None,
    ) -> ExecutionPlan:
        """Plan ``workload``, reusing pooled curves for known MetaOps.

        ``stage_hook`` is forwarded to the underlying planner so callers (the
        elastic runner's replan bookkeeping) can observe per-stage progress;
        ``fingerprint`` skips re-deriving an already-computed canonical
        fingerprint (the :class:`~repro.service.server.PlanService` workers
        pass the one they keyed the request on).
        """
        if self.planner.cluster.signature() != self._topology_signature:
            raise StaleTopologyError(
                "the bound planner's cluster changed; pooled curves are only "
                "valid for the topology they were profiled on — create a new "
                "IncrementalPlanner for the new topology"
            )
        if self.reuse_levels:
            plan = self.planner.plan_incremental(
                workload,
                previous=self._previous_plan,
                precomputed_curves=self._curves,
                stage_hook=stage_hook,
                fingerprint=fingerprint,
            )
            self._previous_plan = plan
            self.stats.levels_reused += plan.report.reused_levels
            if (
                plan.report.num_levels > 0
                and plan.report.reused_levels == plan.report.num_levels
            ):
                self.stats.full_structure_reuses += 1
        else:
            plan = self.planner.plan(
                workload,
                precomputed_curves=self._curves,
                stage_hook=stage_hook,
                fingerprint=fingerprint,
            )
        reused = plan.report.reused_curves
        estimated = plan.report.num_metaops - reused
        self.stats.plans += 1
        self.stats.curves_reused += reused
        self.stats.curves_estimated += estimated
        self._account_savings(plan, reused, estimated)
        self._harvest(plan)
        return plan

    @property
    def num_pooled_curves(self) -> int:
        return len(self._curves)

    @property
    def has_retained_plan(self) -> bool:
        """Whether a previous plan is retained for structural reuse
        (``reuse_levels`` only; the service's incremental ladder tier keys
        off this)."""
        return self.reuse_levels and self._previous_plan is not None

    def clear(self) -> None:
        """Drop the pooled curves (e.g. after recalibrating the cost model).

        The bound planner's estimator keeps its own deterministic curve
        memoization (keyed identically), which must be flushed with the pool —
        otherwise the next plan would be served stale pre-recalibration curves
        from there instead.  The retained previous plan (``reuse_levels``) is
        dropped with them — its allocations embed the same cost model.
        """
        self._curves.clear()
        self._previous_plan = None
        self.planner.estimator.clear_cache()

    # -------------------------------------------------------------- internals
    def _harvest(self, plan: ExecutionPlan) -> None:
        for index, curve in plan.curves.items():
            # MetaOp.curve_key is cached on the MetaOp, so harvesting after
            # planning reuses the keys the estimator already computed.
            key = plan.metagraph.metaop(index).curve_key
            self._curves[key] = curve
            self._curves.move_to_end(key)
        while len(self._curves) > self.max_curves:
            self._curves.popitem(last=False)

    def _account_savings(
        self, plan: ExecutionPlan, reused: int, estimated: int
    ) -> None:
        """Estimate the estimation-stage seconds avoided by curve reuse."""
        stage = plan.report.stage_seconds.get("scalability_estimation", 0.0)
        if estimated > 0:
            per_curve = stage / estimated
            self._last_estimation_cost = per_curve
        else:
            per_curve = self._last_estimation_cost or 0.0
        self.stats.estimation_seconds_saved += per_curve * reused
