"""Canonical workload fingerprints keying the plan cache.

Planning is a pure function of (task set, cluster topology, planner
configuration): identical inputs always produce identical plans, so the plan
service keys its cache on a content hash of those three inputs.  The hash is
*canonical* — insensitive to task ordering and to task naming — because dynamic
workloads (Appendix D) resubmit the same task sets under fresh phase labels and
in arbitrary order, and those requests must land on the same cache entry.

Canonicalisation rules:

* A task is described structurally: batch size, weight, its modules (each an
  ordered chain of operator descriptors) and the module-level flows.  Operator
  *names* and the owning task's *name* are excluded — operator names embed the
  task name, and neither influences the schedule, allocation or placement the
  planner produces.  Parameter sharing keys are kept verbatim: they define
  cross-task parameter groups and are not derived from task names anywhere in
  the model zoo.  Note the resulting contract: names *are* embedded in plan
  documents (MetaOps reference their task for display and correlation), so a
  cache hit under a naming-insensitive fingerprint returns a plan carrying the
  names of whichever structurally-equal request was planned first.  Consumers
  that correlate plan entries with their own task names must map by structure,
  not by name — which is how the dynamic-workload runner consumes cached
  plans.
* The task documents of a request are sorted by their serialized form, making
  the fingerprint order-insensitive.
* A raw :class:`~repro.graph.graph.ComputationGraph` request is canonicalised
  with its operator names intact (names are the graph's node identity; graph
  callers manage their own naming), with nodes and edges sorted.
* Cluster topology and planner configuration are serialized field by field, so
  any change — device spec, interconnect bandwidth, timing constants, placement
  strategy — changes the fingerprint.

All documents are hashed as compact JSON with sorted keys via SHA-256.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Sequence, Union

from repro.cluster.topology import ClusterTopology
from repro.graph.graph import ComputationGraph
from repro.graph.ops import Operator
from repro.graph.task import SpindleTask

FingerprintInput = Union[ComputationGraph, Sequence[SpindleTask]]


def canonical_operator(op: Operator, include_name: bool = False) -> list[Any]:
    """Structural descriptor of one operator, excluding its (task-derived) name."""
    doc: list[Any] = [
        op.op_type,
        op.modality,
        list(op.input_spec.as_tuple()),
        op.flops,
        op.param_bytes,
        op.activation_bytes,
        op.param_key,
    ]
    if include_name:
        doc.insert(0, op.name)
    return doc


def canonical_task(task: SpindleTask) -> dict[str, Any]:
    """Order- and name-insensitive structural document of one task."""
    modules = {
        name: [canonical_operator(op) for op in module.operators]
        for name, module in sorted(task.modules.items())
    }
    flows = sorted(
        [src, dst, volume if volume is not None else -1.0]
        for src, dst, volume in task.flows
    )
    return {
        "batch_size": task.batch_size,
        "weight": task.weight,
        "modules": modules,
        "flows": flows,
    }


def canonical_tasks(tasks: Sequence[SpindleTask]) -> list[dict[str, Any]]:
    """Task documents sorted by content, so task order does not matter."""
    documents = [canonical_task(task) for task in tasks]
    documents.sort(key=lambda doc: json.dumps(doc, sort_keys=True))
    return documents


def canonical_graph(graph: ComputationGraph) -> dict[str, Any]:
    """Structural document of a raw computation graph (names kept)."""
    operators = sorted(
        canonical_operator(op, include_name=True)
        for op in graph.operators.values()
    )
    edges = sorted([flow.src, flow.dst, flow.volume_bytes] for flow in graph.flows)
    return {"operators": operators, "edges": edges}


def canonical_cluster(cluster: ClusterTopology) -> dict[str, Any]:
    """Full structural document of the cluster topology.

    Delegates to :meth:`ClusterTopology.canonical_dict`, which also covers
    heterogeneous clusters (per-island specs, irregular island sizes) and the
    devices' ``achievable_fraction`` — straggler events degrade only that
    field, and degraded substrates must never share a fingerprint with
    healthy ones.
    """
    return cluster.canonical_dict()


def canonical_workload(
    workload: FingerprintInput,
    cluster: ClusterTopology,
    config: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The full document hashed by :func:`fingerprint_workload`."""
    if isinstance(workload, ComputationGraph):
        workload_doc: Any = {"graph": canonical_graph(workload)}
    else:
        workload_doc = {"tasks": canonical_tasks(list(workload))}
    return {
        "workload": workload_doc,
        "cluster": canonical_cluster(cluster),
        "config": dict(config) if config is not None else {},
    }


def hash_document(document: Any) -> str:
    """SHA-256 hex digest of a JSON-serializable document."""
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fingerprint_workload(
    workload: FingerprintInput,
    cluster: ClusterTopology,
    config: Mapping[str, Any] | None = None,
) -> str:
    """Canonical content hash of (workload, cluster, planner configuration)."""
    return hash_document(canonical_workload(workload, cluster, config))
