"""Fingerprint-sharded serving fleet: routing, lock striping, partitions.

:class:`PlanServiceFleet` scales the single :class:`~repro.service.server.
PlanService` into N shards addressed by **fingerprint-range routing**: the
canonical workload fingerprint's hex prefix is folded into a 64-bit key and
mapped to a shard with :func:`jump_consistent_hash` (Lamping & Veach's
jump consistent hash), so

* identical fingerprints always land on the same shard — single-flight
  coalescing therefore holds *across* router entry points for free (two
  clients submitting the same workload through different fleet handles
  still share one solve);
* resharding from N to M shards moves only the minimal ``|M - N| / max``
  fraction of the keyspace, and the moved keys re-route deterministically —
  a warm-started fleet re-serves byte-identical payloads after a shard-count
  change because entries reload into whichever shard now owns their range.

The shared plan cache is a :class:`StripedPlanCache`: K independent
:class:`~repro.service.cache.PlanCache` stripes keyed by the same
fingerprint-range routing, each behind its own lock, with LRU/TTL semantics
preserved *globally* — stripes share one monotonic recency-stamp counter, so
the eviction victim under capacity pressure is the globally least-recently-
used entry, exactly as in the flat cache.  Byte-identical payload serving,
checksum quarantine and stale-entry retention are inherited per stripe.

Durability is partitioned: each shard owns one
:class:`~repro.service.store.PlanStore` snapshot file covering its
fingerprint range.  Warm starts preload every partition in parallel, and
:meth:`PlanServiceFleet.persist` writes each shard's currently-owned range
(so a fleet restarted with a different shard count repartitions the store on
its next persist).

Telemetry stays deterministic under sharding: each shard mints trace IDs
from its own :class:`~repro.obs.telemetry.TraceIdGenerator` namespaced by
the shard ordinal (``<fp8>-s<shard>-<seed>-<ordinal>``), so a request's ID
depends only on its shard and its position in that shard's submission order
— never on cross-shard interleaving.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Optional

from repro.core.plan import ExecutionPlan
from repro.core.planner import ExecutionPlanner, PlannerInput
from repro.graph.graph import ComputationGraph
from repro.obs.telemetry import TelemetryJournal, TraceIdGenerator
from repro.service.cache import CacheStats, PlanCache
from repro.service.resilience import PlanResponse, ResiliencePolicy
from repro.service.server import (
    FingerprintMemo,
    PlanService,
    ServiceError,
)
from repro.service.stats import ServiceStats
from repro.service.store import PlanStore

_JUMP_MULTIPLIER = 2862933555777941757
_MASK_64 = (1 << 64) - 1


class FleetError(ServiceError):
    """Raised for invalid fleet configuration or use after close."""


def jump_consistent_hash(key: int, num_buckets: int) -> int:
    """Map a 64-bit key onto ``[0, num_buckets)`` with minimal resharding.

    Lamping & Veach's jump consistent hash: growing from N to N+1 buckets
    moves exactly ~1/(N+1) of the keyspace and never moves a key between two
    pre-existing buckets, which is what keeps a persisted fleet's partitions
    stable (only the minimal range re-routes on a shard-count change).
    """
    if num_buckets <= 0:
        raise FleetError("num_buckets must be positive")
    key &= _MASK_64
    bucket, candidate = -1, 0
    while candidate < num_buckets:
        bucket = candidate
        key = (key * _JUMP_MULTIPLIER + 1) & _MASK_64
        candidate = int((bucket + 1) * ((1 << 31) / ((key >> 33) + 1)))
    return bucket


def shard_for_fingerprint(fingerprint: str, num_shards: int) -> int:
    """Shard ordinal owning ``fingerprint``'s range.

    The canonical fingerprint is a SHA-256 hex digest; its first 16 hex
    characters are a uniformly-distributed 64-bit key, folded through
    :func:`jump_consistent_hash`.  Non-hex prefixes (foreign fingerprint
    schemes) fall back to Python's string hash folded to 64 bits — stable
    within a process, which is the scope a fleet instance lives in.
    """
    if not fingerprint:
        return 0
    prefix = fingerprint[:16]
    try:
        key = int(prefix, 16)
    except ValueError:
        key = hash(prefix) & _MASK_64
    return jump_consistent_hash(key, num_shards)


class StripedPlanCache:
    """A lock-striped :class:`PlanCache`: K stripes, one global LRU order.

    Each stripe is a full :class:`PlanCache` (its own lock, LRU order, TTL
    expiry, stale list, checksum quarantine) holding the fingerprints whose
    range routes to it (:func:`shard_for_fingerprint` with ``num_stripes``
    buckets).  Capacity is enforced *globally*: stripes share one monotonic
    recency-stamp counter, so when the fleet overflows ``capacity`` the trim
    evicts the stripe head with the smallest stamp — the same entry a flat
    LRU cache would evict.  Accesses to different ranges never contend on
    one lock; semantics (including the eviction order and byte-identical
    payload serving) are preserved, which the flat cache's test suite
    verifies against both implementations.
    """

    def __init__(
        self,
        capacity: int = 64,
        ttl_seconds: float | None = None,
        clock=None,
        journal=None,
        num_stripes: int = 8,
    ) -> None:
        import itertools
        import time

        if num_stripes <= 0:
            raise FleetError("num_stripes must be positive")
        clock = clock if clock is not None else time.monotonic
        stamps = itertools.count(1)
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self.num_stripes = num_stripes
        self._journal = journal
        # Each stripe gets the full global capacity: per-stripe self-eviction
        # must never fire before the global trim (which alone knows the
        # cross-stripe LRU order).  The degenerate all-keys-in-one-stripe
        # case still evicts correctly — that stripe's LRU is the global LRU.
        self._stripes = [
            PlanCache(
                capacity=capacity,
                ttl_seconds=ttl_seconds,
                clock=clock,
                journal=journal,
                stamp_source=stamps,
            )
            for _ in range(num_stripes)
        ]
        self._trim_lock = threading.Lock()

    # -------------------------------------------------------------- routing
    def stripe_of(self, fingerprint: str) -> int:
        return shard_for_fingerprint(fingerprint, self.num_stripes)

    def _stripe(self, fingerprint: str) -> PlanCache:
        return self._stripes[self.stripe_of(fingerprint)]

    @property
    def stripes(self) -> "list[PlanCache]":
        return list(self._stripes)

    # ------------------------------------------------------------- journal
    # PlanService adopts journal-less caches (``cache.journal = journal``);
    # propagate assignments to every stripe so quarantines keep journaling.
    @property
    def journal(self):
        return self._journal

    @journal.setter
    def journal(self, journal) -> None:
        self._journal = journal
        for stripe in self._stripes:
            stripe.journal = journal

    # -------------------------------------------------------------- access
    def get(self, fingerprint: str) -> Optional[ExecutionPlan]:
        return self._stripe(fingerprint).get(fingerprint)

    def get_payload(self, fingerprint: str) -> Optional[str]:
        return self._stripe(fingerprint).get_payload(fingerprint)

    def get_stale(self, fingerprint: str):
        return self._stripe(fingerprint).get_stale(fingerprint)

    def put(
        self, fingerprint: str, plan: ExecutionPlan, payload: str | None = None
    ) -> None:
        self._stripe(fingerprint).put(fingerprint, plan, payload)
        self._trim()

    def put_payload(
        self, fingerprint: str, payload: str, checksum: str | None = None
    ) -> None:
        self._stripe(fingerprint).put_payload(fingerprint, payload, checksum)
        self._trim()

    def invalidate(self, fingerprint: str) -> bool:
        return self._stripe(fingerprint).invalidate(fingerprint)

    def corrupt(self, fingerprint: str) -> bool:
        return self._stripe(fingerprint).corrupt(fingerprint)

    def clear(self) -> None:
        for stripe in self._stripes:
            stripe.clear()

    def purge_expired(self) -> int:
        return sum(stripe.purge_expired() for stripe in self._stripes)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._stripe(fingerprint)

    def __len__(self) -> int:
        return sum(len(stripe) for stripe in self._stripes)

    def fingerprints(self) -> list[str]:
        out: list[str] = []
        for stripe in self._stripes:
            out.extend(stripe.fingerprints())
        return out

    def stale_fingerprints(self) -> list[str]:
        out: list[str] = []
        for stripe in self._stripes:
            out.extend(stripe.stale_fingerprints())
        return out

    @property
    def stats(self) -> CacheStats:
        """Aggregated counters across every stripe (read-only snapshot)."""
        merged = CacheStats()
        for stripe in self._stripes:
            stats = stripe.stats
            merged.hits += stats.hits
            merged.misses += stats.misses
            merged.puts += stats.puts
            merged.evictions += stats.evictions
            merged.expirations += stats.expirations
            merged.corruptions += stats.corruptions
            merged.stale_hits += stats.stale_hits
        return merged

    # --------------------------------------------------------- persistence
    def save(self, path) -> "Path":
        """Snapshot every stripe's payloads into one flat-format file."""
        import json

        from repro.service.cache import CACHE_SNAPSHOT_VERSION

        entries: dict[str, str] = {}
        for stripe in self._stripes:
            for fingerprint in stripe.fingerprints():
                payload = stripe.get_payload(fingerprint)
                if payload is not None:
                    entries[fingerprint] = payload
        snapshot = {
            "format_version": CACHE_SNAPSHOT_VERSION,
            "entries": entries,
        }
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(snapshot), encoding="utf-8")
        return path

    def load(self, path) -> int:
        """Load a flat snapshot, routing each entry to its stripe."""
        # Parse/validate once via a scratch flat cache, then re-route.
        scratch = PlanCache(capacity=max(self.capacity, 1))
        count = scratch.load(path)
        for fingerprint in scratch.fingerprints():
            payload = scratch.get_payload(fingerprint)
            if payload is not None:
                self.put_payload(fingerprint, payload)
        return count

    # ------------------------------------------------------------ internals
    def _trim(self) -> None:
        """Evict globally-LRU entries until the fleet is within capacity.

        Serialized by ``_trim_lock`` (evictions are rare relative to
        accesses); each victim lookup is O(stripes) over the stripe heads.
        """
        if len(self) <= self.capacity:
            return
        with self._trim_lock:
            while len(self) > self.capacity:
                victim: PlanCache | None = None
                victim_stamp: int | None = None
                for stripe in self._stripes:
                    stamp = stripe.lru_stamp()
                    if stamp is None:
                        continue
                    if victim_stamp is None or stamp < victim_stamp:
                        victim, victim_stamp = stripe, stamp
                if victim is None:
                    return
                victim.evict_lru()


class PlanServiceFleet:
    """N fingerprint-range-sharded :class:`PlanService` shards, one front end.

    The router fingerprints each request once (shared
    :class:`~repro.service.server.FingerprintMemo`), routes it to the shard
    owning its range, and hands the precomputed fingerprint down — so a
    request is canonicalised exactly once no matter how many shards or
    entry points exist.  Identical fingerprints deterministically route to
    one shard, preserving single-flight coalescing across entry points.

    Parameters
    ----------
    planner_factory:
        Zero-argument factory building an :class:`ExecutionPlanner` (each
        shard's workers build their own instance, as in
        :class:`PlanService`).
    num_shards:
        Shard count; :func:`shard_for_fingerprint` with this bucket count
        is the routing function.
    num_stripes:
        Stripe count of the shared :class:`StripedPlanCache`; defaults to
        ``num_shards`` so cache stripes and shards cover the same
        fingerprint ranges.
    cache:
        Pre-built shared cache (striped or flat); by default a
        :class:`StripedPlanCache` of ``capacity`` entries.
    num_workers / max_batch_size / resilience:
        Per-shard :class:`PlanService` configuration.
    store_dir:
        Directory of per-shard :class:`PlanStore` partitions
        (``shard-<ordinal>.json``).  With ``warm_start`` every partition is
        preloaded in parallel at construction — including partitions written
        under a *different* shard count, whose entries re-route to their
        current owners through the shared cache.
    auto_compact_threshold:
        Forwarded to each partition store: a load that quarantines at least
        this many entries triggers an automatic snapshot compaction.
    journal / slo:
        Shared telemetry journal and SLO tracker.  Each shard additionally
        gets its own trace-ID namespace (``s<ordinal>``) and scope label
        (``<topology>/s<ordinal>``), so journals from same-seed serial
        replays are byte-identical and SLO rollups stay separable per shard.
    """

    def __init__(
        self,
        planner_factory: Callable[[], ExecutionPlanner],
        *,
        num_shards: int = 4,
        num_stripes: int | None = None,
        cache=None,
        capacity: int = 256,
        stats: ServiceStats | None = None,
        num_workers: int = 1,
        max_batch_size: int = 8,
        resilience: ResiliencePolicy | None = None,
        store_dir: "str | Path | None" = None,
        warm_start: bool = True,
        auto_compact_threshold: int | None = None,
        journal: TelemetryJournal | None = None,
        slo=None,
        trace_seed: int = 0,
    ) -> None:
        if num_shards <= 0:
            raise FleetError("num_shards must be positive")
        prototype = planner_factory()
        self.num_shards = num_shards
        self.cache = (
            cache
            if cache is not None
            else StripedPlanCache(
                capacity=capacity,
                num_stripes=num_stripes if num_stripes is not None else num_shards,
            )
        )
        self.stats = stats if stats is not None else ServiceStats()
        self.journal = journal
        self.slo = slo
        self.trace_seed = trace_seed
        self._fingerprints = FingerprintMemo(
            prototype.cluster, prototype.config_signature()
        )
        self._topology = prototype.cluster.signature()[:8]
        self._closed = False
        self._lock = threading.Lock()

        self.stores: list[PlanStore] = []
        self._store_dir: Path | None = None
        if store_dir is not None:
            self._store_dir = Path(store_dir)
            self.stores = [
                PlanStore(
                    self._store_dir / f"shard-{ordinal:02d}.json",
                    auto_compact_threshold=auto_compact_threshold,
                )
                for ordinal in range(num_shards)
            ]
        self.warm_started = 0
        if self._store_dir is not None and warm_start:
            self.warm_started = self._parallel_warm_start()

        self.shards: list[PlanService] = [
            PlanService(
                planner_factory,
                cache=self.cache,
                stats=self.stats,
                num_workers=num_workers,
                max_batch_size=max_batch_size,
                resilience=resilience,
                journal=journal,
                slo=slo,
                trace_ids=TraceIdGenerator(trace_seed, namespace=f"s{ordinal}"),
                label=f"{self._topology}/s{ordinal}",
            )
            for ordinal in range(num_shards)
        ]
        self._shard_requests = [0] * num_shards

    # ------------------------------------------------------------- routing
    def fingerprint(self, workload: PlannerInput) -> str:
        """Canonical fingerprint, memoized once fleet-wide."""
        if not isinstance(workload, ComputationGraph):
            workload = tuple(workload)
        return self._fingerprints.fingerprint(workload)

    def shard_of(self, fingerprint: str) -> int:
        """Ordinal of the shard owning ``fingerprint``'s range."""
        return shard_for_fingerprint(fingerprint, self.num_shards)

    def shard_census(self) -> list[int]:
        """Requests routed to each shard since construction."""
        with self._lock:
            return list(self._shard_requests)

    # ------------------------------------------------------------ serving
    def submit(
        self, workload: PlannerInput, *, tenant: str | None = None
    ) -> Future:
        """Route one request to its shard; returns the shard's future."""
        if not isinstance(workload, ComputationGraph):
            workload = tuple(workload)
        fp = self.fingerprint(workload)
        shard = self._route(fp)
        return shard.submit(workload, tenant=tenant, fingerprint=fp)

    def submit_many(
        self, workloads, *, tenant: str | None = None
    ) -> "list[Future]":
        """One dispatch cycle: fingerprint, group by shard, batch-submit.

        Same-shard requests of the cycle are handed to their shard as one
        batch (one :meth:`PlanService.submit_many` call per shard), and the
        returned futures line up with ``workloads`` positionally.
        """
        snapshot = [
            w if isinstance(w, ComputationGraph) else tuple(w) for w in workloads
        ]
        fps = [self.fingerprint(w) for w in snapshot]
        groups: dict[int, list[int]] = {}
        for index, fp in enumerate(fps):
            groups.setdefault(self.shard_of(fp), []).append(index)
        futures: list[Future | None] = [None] * len(snapshot)
        for ordinal, indices in groups.items():
            shard = self._route_ordinal(ordinal, count=len(indices))
            batch = shard.submit_many(
                [snapshot[i] for i in indices],
                tenant=tenant,
                fingerprints=[fps[i] for i in indices],
            )
            for i, future in zip(indices, batch):
                futures[i] = future
        return futures  # type: ignore[return-value]

    def plan(
        self,
        workload: PlannerInput,
        timeout: float | None = None,
        *,
        tenant: str | None = None,
    ) -> ExecutionPlan:
        if not isinstance(workload, ComputationGraph):
            workload = tuple(workload)
        fp = self.fingerprint(workload)
        return self._route(fp).plan(
            workload, timeout, tenant=tenant, fingerprint=fp
        )

    def request(
        self,
        workload: PlannerInput,
        timeout: float | None = None,
        *,
        tenant: str | None = None,
    ) -> PlanResponse:
        if not isinstance(workload, ComputationGraph):
            workload = tuple(workload)
        fp = self.fingerprint(workload)
        return self._route(fp).request(
            workload, timeout, tenant=tenant, fingerprint=fp
        )

    def serialized_plan(
        self, workload: PlannerInput, timeout: float | None = None
    ) -> str:
        """The serialized plan document, byte-identical across hits/shards."""
        fp = self.fingerprint(workload)
        payload = self.cache.get_payload(fp)
        if payload is not None:
            return payload
        self.plan(workload, timeout=timeout)
        payload = self.cache.get_payload(fp)
        if payload is None:  # pragma: no cover - evicted between plan and read
            from repro.core.serialization import plan_to_json

            payload = plan_to_json(self.plan(workload, timeout=timeout))
        return payload

    def pending_requests(self) -> int:
        return sum(shard.pending_requests() for shard in self.shards)

    # --------------------------------------------------------- durability
    def persist(self) -> int:
        """Write each shard's currently-owned fingerprint range to its
        partition; returns how many partitions were written.

        Ownership is recomputed at persist time, so a fleet warm-started
        from partitions written under a different shard count repartitions
        the store here.  I/O errors on one partition don't stop the rest.
        """
        if not self.stores:
            return 0
        owned: dict[int, list[str]] = {i: [] for i in range(self.num_shards)}
        for fingerprint in self.cache.fingerprints():
            owned[self.shard_of(fingerprint)].append(fingerprint)
        written = 0
        for ordinal, store in enumerate(self.stores):
            try:
                store.save(self.cache, fingerprints=owned[ordinal])
            except OSError:
                continue
            written += 1
        # Shrinking fleets leave higher-ordinal partitions behind; their
        # entries were just rewritten into the current owners, so drop them
        # rather than letting a future warm start resurrect stale payloads.
        if self._store_dir is not None and self._store_dir.is_dir():
            own = {store.path for store in self.stores}
            for path in self._store_dir.glob("shard-*.json"):
                if path not in own:
                    try:
                        path.unlink()
                    except OSError:
                        pass
        return written

    def close(self, wait: bool = True, cancel_pending: bool = False) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.persist()
        for shard in self.shards:
            shard.close(wait=wait, cancel_pending=cancel_pending)

    def __enter__(self) -> "PlanServiceFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------- internals
    def _route(self, fingerprint: str) -> PlanService:
        return self._route_ordinal(self.shard_of(fingerprint))

    def _route_ordinal(self, ordinal: int, count: int = 1) -> PlanService:
        with self._lock:
            if self._closed:
                raise FleetError("PlanServiceFleet is closed")
            self._shard_requests[ordinal] += count
        return self.shards[ordinal]

    def _parallel_warm_start(self) -> int:
        """Preload every on-disk partition concurrently into the shared cache.

        Loads every ``shard-*.json`` present in the store directory — not
        just the current fleet's own partitions — so a fleet restarted with
        *fewer* shards than the one that persisted still recovers the whole
        keyspace (the extra partitions' entries re-route to their new owners
        via the shared cache, and the next :meth:`persist` repartitions the
        directory).  Partitions cover disjoint fingerprint ranges, and the
        striped cache takes per-stripe locks, so the loads don't serialize
        on one another (beyond the GIL).  Returns total entries loaded.
        """
        own = {store.path for store in self.stores}
        stores = list(self.stores)
        if self._store_dir is not None and self._store_dir.is_dir():
            stores.extend(
                PlanStore(path)
                for path in sorted(self._store_dir.glob("shard-*.json"))
                if path not in own
            )
        if not stores:
            return 0
        with ThreadPoolExecutor(
            max_workers=len(stores), thread_name_prefix="fleet-warm"
        ) as pool:
            results = list(
                pool.map(lambda store: store.load_into(self.cache), stores)
            )
        return sum(result.loaded for result in results)
