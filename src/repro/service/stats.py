"""Service-level throughput, latency and hit-rate accounting.

The plan service records one observation per completed request: how it was
satisfied (cache hit, coalesced onto an in-flight computation, or a fresh
planner run) and its end-to-end latency.  :class:`ServiceStats` aggregates the
observations into the numbers an operator of a serving tier watches —
throughput, latency percentiles and the hit/coalesce split — and renders them
as a small report table.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.obs.metrics import percentile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

#: Request outcomes recorded by the plan service.  ``degraded`` marks
#: requests served through a degradation-ladder tier (stale / incremental /
#: reference) after fresh planning failed; ``shed`` marks requests rejected
#: by bounded-queue admission control.
OUTCOME_HIT = "hit"
OUTCOME_MISS = "miss"
OUTCOME_COALESCED = "coalesced"
OUTCOME_DEGRADED = "degraded"
OUTCOME_SHED = "shed"

_OUTCOMES = (
    OUTCOME_HIT,
    OUTCOME_MISS,
    OUTCOME_COALESCED,
    OUTCOME_DEGRADED,
    OUTCOME_SHED,
)


@dataclass(frozen=True)
class LatencySummary:
    """Latency distribution of one outcome class, in seconds.

    Every field is well-defined on any sample count: an empty summary is all
    zeros (with ``count == 0`` marking it empty rather than measured-as-zero)
    and a single sample is its own mean, median, p95 and max.  Percentiles of
    larger sets use the shared linear-interpolation estimator
    (:func:`repro.obs.metrics.percentile`), never an index-rounding edge case.
    """

    count: int
    mean: float
    p50: float
    p95: float
    max: float
    p99: float = 0.0

    @staticmethod
    def from_samples(samples: list[float]) -> "LatencySummary":
        if not samples:
            return LatencySummary(
                count=0, mean=0.0, p50=0.0, p95=0.0, max=0.0, p99=0.0
            )
        if len(samples) == 1:
            value = samples[0]
            return LatencySummary(
                count=1, mean=value, p50=value, p95=value, max=value, p99=value
            )
        ordered = sorted(samples)
        return LatencySummary(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=percentile(ordered, 0.50),
            p95=percentile(ordered, 0.95),
            max=ordered[-1],
            p99=percentile(ordered, 0.99),
        )


class ServiceStats:
    """Thread-safe accumulator of per-request service observations."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._started_at = clock()
        self._latencies: dict[str, list[float]] = {o: [] for o in _OUTCOMES}
        self._errors = 0

    # -------------------------------------------------------------- recording
    def record(self, outcome: str, latency_seconds: float) -> None:
        if outcome not in _OUTCOMES:
            raise ValueError(f"Unknown request outcome {outcome!r}")
        with self._lock:
            self._latencies[outcome].append(latency_seconds)

    def record_error(self) -> None:
        with self._lock:
            self._errors += 1

    # ------------------------------------------------------------- aggregates
    @property
    def total_requests(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._latencies.values())

    @property
    def errors(self) -> int:
        with self._lock:
            return self._errors

    def count(self, outcome: str) -> int:
        with self._lock:
            return len(self._latencies[outcome])

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served without a fresh planner run."""
        with self._lock:
            total = sum(len(v) for v in self._latencies.values())
            if total == 0:
                return 0.0
            served = len(self._latencies[OUTCOME_HIT]) + len(
                self._latencies[OUTCOME_COALESCED]
            )
            return served / total

    @property
    def elapsed_seconds(self) -> float:
        return self._clock() - self._started_at

    @property
    def throughput(self) -> float:
        """Completed requests per second since the stats object was created."""
        elapsed = self.elapsed_seconds
        if elapsed <= 0:
            return 0.0
        return self.total_requests / elapsed

    def latency(self, outcome: str) -> LatencySummary:
        with self._lock:
            return LatencySummary.from_samples(list(self._latencies[outcome]))

    def overall_latency(self) -> LatencySummary:
        with self._lock:
            merged = [s for samples in self._latencies.values() for s in samples]
        return LatencySummary.from_samples(merged)

    # -------------------------------------------------------------- reporting
    def to_registry(
        self, registry: "MetricsRegistry | None" = None
    ) -> "MetricsRegistry":
        """Export the accumulated observations under the canonical obs names.

        Fills ``service.requests``, ``service.cache{outcome=...}`` and
        ``service.errors`` counters, ``service.hit_rate`` /
        ``service.throughput`` gauges, and the ``service.latency_seconds``
        histogram (overall plus one per outcome).  A fresh registry is
        created when none is passed.
        """
        from repro.obs.metrics import MetricsRegistry

        registry = registry if registry is not None else MetricsRegistry()
        with self._lock:
            samples = {o: list(v) for o, v in self._latencies.items()}
            errors = self._errors
        for outcome, values in samples.items():
            registry.inc("service.cache", len(values), outcome=outcome)
            for value in values:
                registry.observe("service.latency_seconds", value, outcome=outcome)
                registry.observe("service.latency_seconds", value)
        registry.inc("service.requests", sum(len(v) for v in samples.values()))
        registry.inc("service.errors", errors)
        registry.gauge("service.hit_rate", self.hit_rate)
        registry.gauge("service.throughput", self.throughput)
        return registry

    def to_metrics(self, prefix: str = "") -> "dict[str, object]":
        """The counters as benchmark :class:`~repro.bench.result.Metric` values.

        Routed through the canonical obs registry names (:meth:`to_registry`)
        and re-keyed to the metric names the existing ``BENCH_*.json``
        baselines pin, so the registry naming scheme and the benchmark schema
        stay one dataset.  Count- and rate-style counters are gated (they are
        deterministic for a replayed request stream); wall-clock
        latency/throughput numbers are informational, since they vary with
        the machine running the suite.
        """
        from repro.bench.result import Metric, informational

        registry = self.to_registry()
        overall = registry.histogram_summary("service.latency_seconds")
        return {
            f"{prefix}requests": Metric(
                registry.counter_value("service.requests"), "req"
            ),
            f"{prefix}hit_rate": Metric(
                registry.gauge_value("service.hit_rate"), "", higher_is_better=True
            ),
            f"{prefix}errors": Metric(
                registry.counter_value("service.errors"), "", regression_threshold=0.0
            ),
            f"{prefix}throughput": informational(
                registry.gauge_value("service.throughput"), "req/s"
            ),
            f"{prefix}latency_p50": informational(overall.p50 * 1e3, "ms"),
            f"{prefix}latency_p95": informational(overall.p95 * 1e3, "ms"),
            f"{prefix}latency_p99": informational(overall.p99 * 1e3, "ms"),
        }

    def as_dict(self) -> dict[str, float]:
        overall = self.overall_latency()
        return {
            "requests": self.total_requests,
            "hits": self.count(OUTCOME_HIT),
            "misses": self.count(OUTCOME_MISS),
            "coalesced": self.count(OUTCOME_COALESCED),
            "degraded": self.count(OUTCOME_DEGRADED),
            "shed": self.count(OUTCOME_SHED),
            "errors": self.errors,
            "hit_rate": self.hit_rate,
            "throughput_rps": self.throughput,
            "latency_mean_s": overall.mean,
            "latency_p50_s": overall.p50,
            "latency_p95_s": overall.p95,
            "latency_p99_s": overall.p99,
        }

    def render(self) -> str:
        """Human-readable multi-line summary of the service counters."""
        resilience = ""
        if self.count(OUTCOME_DEGRADED) or self.count(OUTCOME_SHED):
            resilience = (
                f", degraded {self.count(OUTCOME_DEGRADED)}, "
                f"shed {self.count(OUTCOME_SHED)}"
            )
        lines = [
            f"requests     : {self.total_requests} "
            f"(hits {self.count(OUTCOME_HIT)}, "
            f"coalesced {self.count(OUTCOME_COALESCED)}, "
            f"misses {self.count(OUTCOME_MISS)}, errors {self.errors}"
            f"{resilience})",
            f"hit rate     : {self.hit_rate * 100:.1f}%",
            f"throughput   : {self.throughput:.1f} req/s",
        ]
        for outcome in _OUTCOMES:
            summary = self.latency(outcome)
            if summary.count == 0:
                continue
            lines.append(
                f"latency {outcome:<9}: mean {summary.mean * 1e3:.2f} ms, "
                f"p50 {summary.p50 * 1e3:.2f} ms, p95 {summary.p95 * 1e3:.2f} ms"
            )
        return "\n".join(lines)
