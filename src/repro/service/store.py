"""Crash-safe persistent plan store: atomic snapshots, checksums, quarantine.

:class:`PlanStore` is the durable half of the plan cache.  It writes
versioned snapshots of a :class:`~repro.service.cache.PlanCache`'s payloads
and reloads them on restart (warm start), with three crash-safety
guarantees:

* **Atomic snapshots** — every save writes to a temp file in the target
  directory and ``os.replace``\\ s it over the snapshot, so a crash (or an
  injected persistence fault) mid-write leaves the previous snapshot intact;
  readers never observe a torn file.
* **Per-entry checksums** — each payload is stored with its SHA-256; the
  format also carries a whole-snapshot entry count so truncation is
  detectable even when individual entries parse.
* **Quarantine, not failure** — a corrupt entry (checksum mismatch,
  non-string payload) is quarantined (recorded with its reason, counted as
  ``service.store{event=quarantined}``) while every intact entry still
  loads.  Only an unreadable/unparseable snapshot raises
  :class:`StoreError`.

Format v2 (one JSON document)::

    {"format_version": 2,
     "entry_count": N,
     "entries": {fingerprint: {"payload": str, "checksum": sha256}}}

Legacy v1 snapshots (written by ``PlanCache.save``; payloads without
checksums) load with verification skipped.

Fault injection: pass a :class:`~repro.faults.injection.FaultInjector` and
every save first consults :meth:`~repro.faults.injection.FaultInjector.on_persist`,
which may raise an injected I/O error *before the rename* — exercising the
crash-consistency path deterministically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import get_metrics
from repro.service.cache import (
    CACHE_SNAPSHOT_VERSION,
    PlanCache,
    payload_checksum,
)

#: Version tag of the checksummed store snapshot format.
STORE_FORMAT_VERSION = 2


class StoreError(Exception):
    """Raised for unreadable or structurally invalid store snapshots."""


@dataclass
class StoreLoadResult:
    """Outcome of one :meth:`PlanStore.load_into` call."""

    loaded: int = 0
    #: fingerprint -> human-readable quarantine reason
    quarantined: dict[str, str] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.loaded + len(self.quarantined)


class PlanStore:
    """A checksummed, atomically-replaced snapshot file of plan payloads.

    Parameters
    ----------
    path:
        Snapshot file location; parent directories are created on save.
    injector:
        Optional fault injector consulted once per save
        (``persist_error`` faults abort the save before the atomic rename).
    """

    def __init__(self, path: str | Path, *, injector=None) -> None:
        self.path = Path(path)
        self.injector = injector
        #: Quarantine log of the most recent load (fingerprint -> reason).
        self.quarantined: dict[str, str] = {}

    # ------------------------------------------------------------------ save
    def save(self, cache: PlanCache) -> Path:
        """Atomically snapshot ``cache``'s payloads (fresh entries only).

        The write goes to ``<path>.tmp`` and is renamed over the snapshot in
        one step; any failure before the rename — injected persistence
        faults included — leaves the previous snapshot untouched.
        """
        entries: dict[str, dict[str, str]] = {}
        for fingerprint in cache.fingerprints():
            payload = cache.get_payload(fingerprint)
            if payload is None:
                continue  # expired or quarantined between listing and read
            entries[fingerprint] = {
                "payload": payload,
                "checksum": payload_checksum(payload),
            }
        document = {
            "format_version": STORE_FORMAT_VERSION,
            "entry_count": len(entries),
            "entries": entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        if self.injector is not None:
            # The injected fault models a crash mid-write: the temp file may
            # exist (partially written) but the snapshot must stay intact.
            try:
                self.injector.on_persist()
            except Exception:
                tmp.write_text('{"torn": ', encoding="utf-8")
                raise
        tmp.write_text(json.dumps(document), encoding="utf-8")
        os.replace(tmp, self.path)
        get_metrics().inc("service.store", event="saved")
        return self.path

    # ------------------------------------------------------------------ load
    def load_into(self, cache: PlanCache) -> StoreLoadResult:
        """Load the snapshot into ``cache``; quarantine corrupt entries.

        Intact entries land as payload-only cache entries (served by
        ``get_payload``/``get_stale``; ``get`` still misses, exactly like
        ``PlanCache.load``).  Returns how many loaded and what was
        quarantined; a missing snapshot file loads nothing.
        """
        result = StoreLoadResult()
        if not self.path.is_file():
            return result
        try:
            snapshot = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"Unreadable plan-store snapshot {self.path}: {exc}")
        version = snapshot.get("format_version")
        if version == CACHE_SNAPSHOT_VERSION:
            return self._load_v1(snapshot, cache, result)
        if version != STORE_FORMAT_VERSION:
            raise StoreError(
                f"Unsupported plan-store snapshot version {version!r} "
                f"in {self.path}"
            )
        entries = snapshot.get("entries")
        if not isinstance(entries, dict):
            raise StoreError(f"Snapshot {self.path} is missing its 'entries' mapping")
        declared = snapshot.get("entry_count")
        if isinstance(declared, int) and declared != len(entries):
            # Truncated-but-parseable snapshot: load what survived, flag it.
            result.quarantined["<snapshot>"] = (
                f"entry_count {declared} != {len(entries)} entries present"
            )
        metrics = get_metrics()
        for fingerprint, record in entries.items():
            reason = self._verify(record)
            if reason is not None:
                result.quarantined[fingerprint] = reason
                metrics.inc("service.store", event="quarantined")
                continue
            cache.put_payload(
                fingerprint, record["payload"], checksum=record["checksum"]
            )
            result.loaded += 1
        self.quarantined = dict(result.quarantined)
        metrics.inc("service.store", event="loaded")
        return result

    @staticmethod
    def _verify(record: object) -> str | None:
        """Reason the entry must be quarantined, or ``None`` if intact."""
        if not isinstance(record, dict):
            return "entry is not an object"
        payload = record.get("payload")
        checksum = record.get("checksum")
        if not isinstance(payload, str):
            return "payload is not a string"
        if not isinstance(checksum, str):
            return "checksum missing"
        if payload_checksum(payload) != checksum:
            return "checksum mismatch"
        try:
            json.loads(payload)
        except json.JSONDecodeError:
            return "payload is not valid JSON"
        return None

    def _load_v1(
        self, snapshot: dict, cache: PlanCache, result: StoreLoadResult
    ) -> StoreLoadResult:
        """Legacy ``PlanCache.save`` snapshots: no checksums to verify."""
        entries = snapshot.get("entries")
        if not isinstance(entries, dict):
            raise StoreError(f"Snapshot {self.path} is missing its 'entries' mapping")
        for fingerprint, payload in entries.items():
            if not isinstance(payload, str):
                result.quarantined[fingerprint] = "payload is not a string"
                continue
            cache.put_payload(fingerprint, payload, checksum=None)
            result.loaded += 1
        self.quarantined = dict(result.quarantined)
        return result
