"""Crash-safe persistent plan store: atomic snapshots, checksums, quarantine.

:class:`PlanStore` is the durable half of the plan cache.  It writes
versioned snapshots of a :class:`~repro.service.cache.PlanCache`'s payloads
and reloads them on restart (warm start), with three crash-safety
guarantees:

* **Atomic, crash-consistent snapshots** — every save writes to a temp file
  in the target directory, ``fsync``\\ s it, and ``os.replace``\\ s it over
  the snapshot, so a crash (or an injected persistence fault) mid-write —
  or a power loss right after the rename — leaves a complete snapshot on
  disk; readers never observe a torn file.
* **Per-entry checksums** — each payload is stored with its SHA-256; the
  format also carries a whole-snapshot entry count so truncation is
  detectable even when individual entries parse.
* **Quarantine, not failure** — a corrupt entry (checksum mismatch,
  non-string payload) is quarantined (recorded with its reason, counted as
  ``service.store{event=quarantined}``) while every intact entry still
  loads.  Only an unreadable/unparseable snapshot raises
  :class:`StoreError`.

Format v2 (one JSON document)::

    {"format_version": 2,
     "entry_count": N,
     "entries": {fingerprint: {"payload": str, "checksum": sha256}}}

Legacy v1 snapshots (written by ``PlanCache.save``; payloads without
checksums) load with verification skipped.

Fault injection: pass a :class:`~repro.faults.injection.FaultInjector` and
every save first consults :meth:`~repro.faults.injection.FaultInjector.on_persist`,
which may raise an injected I/O error *before the rename* — exercising the
crash-consistency path deterministically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import get_metrics
from repro.service.cache import (
    CACHE_SNAPSHOT_VERSION,
    PlanCache,
    payload_checksum,
)

#: Version tag of the checksummed store snapshot format.
STORE_FORMAT_VERSION = 2


class StoreError(Exception):
    """Raised for unreadable or structurally invalid store snapshots."""


@dataclass
class StoreLoadResult:
    """Outcome of one :meth:`PlanStore.load_into` call."""

    loaded: int = 0
    #: fingerprint -> human-readable quarantine reason
    quarantined: dict[str, str] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.loaded + len(self.quarantined)


class PlanStore:
    """A checksummed, atomically-replaced snapshot file of plan payloads.

    Parameters
    ----------
    path:
        Snapshot file location; parent directories are created on save.
    injector:
        Optional fault injector consulted once per save
        (``persist_error`` faults abort the save before the atomic rename).
    auto_compact_threshold:
        When a load quarantines at least this many entries, the snapshot is
        automatically compacted (rewritten without the dead entries) right
        after the load.  ``None`` (default) disables auto-compaction.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        injector=None,
        auto_compact_threshold: int | None = None,
    ) -> None:
        self.path = Path(path)
        self.injector = injector
        self.auto_compact_threshold = auto_compact_threshold
        #: Quarantine log of the most recent load (fingerprint -> reason).
        self.quarantined: dict[str, str] = {}

    # ------------------------------------------------------------------ save
    def save(
        self, cache: PlanCache, *, fingerprints: "list[str] | None" = None
    ) -> Path:
        """Atomically snapshot ``cache``'s payloads (fresh entries only).

        With ``fingerprints``, only those entries are written — the
        partitioned-save path used by fleet shards, where each store owns
        one fingerprint range of a shared cache.

        The write goes to ``<path>.tmp``, is fsynced, and is renamed over
        the snapshot in one step; any failure before the rename — injected
        persistence faults included — leaves the previous snapshot
        untouched, and the fsync guarantees the renamed file's contents
        survive a crash immediately after.
        """
        selection = (
            cache.fingerprints() if fingerprints is None else fingerprints
        )
        entries: dict[str, dict[str, str]] = {}
        for fingerprint in selection:
            payload = cache.get_payload(fingerprint)
            if payload is None:
                continue  # expired or quarantined between listing and read
            entries[fingerprint] = {
                "payload": payload,
                "checksum": payload_checksum(payload),
            }
        document = {
            "format_version": STORE_FORMAT_VERSION,
            "entry_count": len(entries),
            "entries": entries,
        }
        if self.injector is not None:
            # The injected fault models a crash mid-write: the temp file may
            # exist (partially written) but the snapshot must stay intact.
            try:
                self.injector.on_persist()
            except Exception:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                tmp = self.path.with_name(self.path.name + ".tmp")
                tmp.write_text('{"torn": ', encoding="utf-8")
                raise
        self._write_snapshot(document)
        get_metrics().inc("service.store", event="saved")
        return self.path

    def _write_snapshot(self, document: dict) -> None:
        """Durably write ``document`` as the snapshot: tmp + fsync + rename."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(document))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    # --------------------------------------------------------------- compact
    def compact(self) -> int:
        """Rewrite the snapshot keeping only intact entries.

        Dead weight — entries that fail checksum/structure verification, a
        stale ``entry_count``, or legacy v1 framing — is dropped and the
        survivors are rewritten as a fresh v2 snapshot (legacy payloads gain
        checksums).  Returns how many entries were dropped.  A missing
        snapshot is a no-op.
        """
        if not self.path.is_file():
            return 0
        try:
            snapshot = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"Unreadable plan-store snapshot {self.path}: {exc}")
        raw = snapshot.get("entries")
        if not isinstance(raw, dict):
            raise StoreError(f"Snapshot {self.path} is missing its 'entries' mapping")
        legacy = snapshot.get("format_version") == CACHE_SNAPSHOT_VERSION
        entries: dict[str, dict[str, str]] = {}
        dropped = 0
        for fingerprint, record in raw.items():
            if legacy:
                record = (
                    {"payload": record, "checksum": payload_checksum(record)}
                    if isinstance(record, str)
                    else record
                )
            if self._verify(record) is not None:
                dropped += 1
                continue
            entries[fingerprint] = {
                "payload": record["payload"],
                "checksum": record["checksum"],
            }
        self._write_snapshot(
            {
                "format_version": STORE_FORMAT_VERSION,
                "entry_count": len(entries),
                "entries": entries,
            }
        )
        get_metrics().inc("service.store", event="compacted")
        return dropped

    # ------------------------------------------------------------------ load
    def load_into(self, cache: PlanCache) -> StoreLoadResult:
        """Load the snapshot into ``cache``; quarantine corrupt entries.

        Intact entries land as payload-only cache entries (served by
        ``get_payload``/``get_stale``; ``get`` still misses, exactly like
        ``PlanCache.load``).  Returns how many loaded and what was
        quarantined; a missing snapshot file loads nothing.
        """
        result = StoreLoadResult()
        if not self.path.is_file():
            return result
        try:
            snapshot = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"Unreadable plan-store snapshot {self.path}: {exc}")
        version = snapshot.get("format_version")
        if version == CACHE_SNAPSHOT_VERSION:
            return self._load_v1(snapshot, cache, result)
        if version != STORE_FORMAT_VERSION:
            raise StoreError(
                f"Unsupported plan-store snapshot version {version!r} "
                f"in {self.path}"
            )
        entries = snapshot.get("entries")
        if not isinstance(entries, dict):
            raise StoreError(f"Snapshot {self.path} is missing its 'entries' mapping")
        declared = snapshot.get("entry_count")
        if isinstance(declared, int) and declared != len(entries):
            # Truncated-but-parseable snapshot: load what survived, flag it.
            result.quarantined["<snapshot>"] = (
                f"entry_count {declared} != {len(entries)} entries present"
            )
        metrics = get_metrics()
        for fingerprint, record in entries.items():
            reason = self._verify(record)
            if reason is not None:
                result.quarantined[fingerprint] = reason
                metrics.inc("service.store", event="quarantined")
                continue
            cache.put_payload(
                fingerprint, record["payload"], checksum=record["checksum"]
            )
            result.loaded += 1
        self.quarantined = dict(result.quarantined)
        metrics.inc("service.store", event="loaded")
        self._maybe_auto_compact(result)
        return result

    def _maybe_auto_compact(self, result: StoreLoadResult) -> None:
        threshold = self.auto_compact_threshold
        if threshold is not None and len(result.quarantined) >= threshold:
            self.compact()

    @staticmethod
    def _verify(record: object) -> str | None:
        """Reason the entry must be quarantined, or ``None`` if intact."""
        if not isinstance(record, dict):
            return "entry is not an object"
        payload = record.get("payload")
        checksum = record.get("checksum")
        if not isinstance(payload, str):
            return "payload is not a string"
        if not isinstance(checksum, str):
            return "checksum missing"
        if payload_checksum(payload) != checksum:
            return "checksum mismatch"
        try:
            json.loads(payload)
        except json.JSONDecodeError:
            return "payload is not valid JSON"
        return None

    def _load_v1(
        self, snapshot: dict, cache: PlanCache, result: StoreLoadResult
    ) -> StoreLoadResult:
        """Legacy ``PlanCache.save`` snapshots: no checksums to verify."""
        entries = snapshot.get("entries")
        if not isinstance(entries, dict):
            raise StoreError(f"Snapshot {self.path} is missing its 'entries' mapping")
        for fingerprint, payload in entries.items():
            if not isinstance(payload, str):
                result.quarantined[fingerprint] = "payload is not a string"
                continue
            cache.put_payload(fingerprint, payload, checksum=None)
            result.loaded += 1
        self.quarantined = dict(result.quarantined)
        self._maybe_auto_compact(result)
        return result
