"""Resilience policies for the plan service: retries, deadlines, breakers.

This module holds the *policy* half of the fault-tolerant service (the
mechanics live in :mod:`repro.service.server`):

* :class:`ResiliencePolicy` — the knobs: per-request deadline, bounded retry
  with exponential backoff plus seeded jitter, circuit-breaker thresholds,
  bounded-queue admission control, and the degradation ladder toggles.
* :class:`CircuitBreaker` — a per-service (hence, in a
  :class:`~repro.service.server.PlanServicePool`, per-topology-signature)
  closed → open → half-open breaker over consecutive solve failures.
* :class:`PlanResponse` — the per-request resolution record: exactly one
  outcome (``served`` / ``degraded`` / ``shed`` / ``error``) plus the ladder
  tier that produced it, which is the unit the chaos invariants quantify
  over.

Determinism: backoff jitter is drawn from a :class:`random.Random` seeded
with ``(policy.seed, request_index, attempt)`` — no process-global RNG — so a
replayed request stream backs off identically.  Wall-clock never enters a
canonical report; only outcomes, tiers and counts do.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.plan import ExecutionPlan

#: Ladder tiers, best first.  ``cache`` and ``fresh`` resolve as ``served``;
#: ``stale``, ``incremental`` and ``reference`` resolve as ``degraded``.
TIER_CACHE = "cache"
TIER_FRESH = "fresh"
TIER_STALE = "stale"
TIER_INCREMENTAL = "incremental"
TIER_REFERENCE = "reference"

DEGRADED_TIERS = (TIER_STALE, TIER_INCREMENTAL, TIER_REFERENCE)

#: Per-request outcomes: every admitted or rejected request ends in exactly
#: one of these.
RESPONSE_SERVED = "served"
RESPONSE_DEGRADED = "degraded"
RESPONSE_SHED = "shed"
RESPONSE_ERROR = "error"

#: Circuit-breaker states, exported as the ``service.breaker_state`` gauge.
BREAKER_CLOSED = 0
BREAKER_HALF_OPEN = 1
BREAKER_OPEN = 2

_BREAKER_STATE_NAMES = {
    BREAKER_CLOSED: "closed",
    BREAKER_HALF_OPEN: "half_open",
    BREAKER_OPEN: "open",
}


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the hardened service path.

    Parameters
    ----------
    max_attempts:
        Solve attempts per request (including the first) before the request
        falls through to the degradation ladder.
    backoff_base_seconds / backoff_multiplier / backoff_max_seconds:
        Exponential backoff between attempts: attempt ``k`` (k >= 1) waits
        ``min(base * multiplier**(k-1), max)`` scaled by jitter.
    backoff_jitter:
        Fractional jitter: the wait is multiplied by a seeded uniform draw
        from ``[1 - jitter, 1 + jitter]``.
    deadline_seconds:
        Per-request deadline measured from submission; an attempt never
        starts (and a backoff never sleeps) past the deadline — the request
        degrades instead.  ``None`` disables deadlines.
    breaker_failure_threshold / breaker_reset_seconds:
        Consecutive solve failures that trip the breaker open, and how long
        it stays open before admitting one half-open probe.  A threshold of
        ``0`` disables the breaker.
    max_queue_depth:
        Bounded-queue admission control: a request arriving while this many
        requests are queued or in flight is shed immediately with
        :class:`~repro.service.server.ServiceOverloadError`.  ``None``
        disables shedding.
    allow_stale / allow_incremental / allow_reference:
        Degradation-ladder tiers (checked in this order after retries are
        exhausted); disabling all three makes exhaustion a hard error.
    seed:
        Seed of the backoff-jitter stream.
    """

    max_attempts: int = 3
    backoff_base_seconds: float = 0.005
    backoff_multiplier: float = 2.0
    backoff_max_seconds: float = 0.1
    backoff_jitter: float = 0.25
    deadline_seconds: float | None = None
    breaker_failure_threshold: int = 5
    breaker_reset_seconds: float = 0.5
    max_queue_depth: int | None = None
    allow_stale: bool = True
    allow_incremental: bool = True
    allow_reference: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_seconds < 0 or self.backoff_max_seconds < 0:
            raise ValueError("backoff seconds must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be at least 1.0")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be in [0, 1)")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive (or None)")
        if self.breaker_failure_threshold < 0:
            raise ValueError("breaker_failure_threshold must be non-negative")
        if self.breaker_reset_seconds <= 0:
            raise ValueError("breaker_reset_seconds must be positive")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive (or None)")

    def backoff_seconds(self, request_index: int, attempt: int) -> float:
        """Deterministic backoff before retry ``attempt`` (attempt >= 1)."""
        if attempt < 1:
            return 0.0
        base = min(
            self.backoff_base_seconds * self.backoff_multiplier ** (attempt - 1),
            self.backoff_max_seconds,
        )
        if self.backoff_jitter == 0.0 or base == 0.0:
            return base
        rng = random.Random(f"{self.seed}:{request_index}:{attempt}")
        return base * (1.0 + self.backoff_jitter * (2.0 * rng.random() - 1.0))


class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed → open → half-open).

    ``allow()`` answers "may a solve attempt run right now?".  Closed always
    allows; open rejects until ``reset_seconds`` have elapsed, then moves to
    half-open and admits probes; a success in half-open closes the breaker,
    a failure reopens it.  Thread-safe; the clock is injectable so tests can
    step time deterministically.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_seconds: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 0:
            raise ValueError("failure_threshold must be non-negative")
        if reset_seconds <= 0:
            raise ValueError("reset_seconds must be positive")
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: Times the breaker tripped open (monotonically increasing).
        self.trips = 0

    @property
    def state(self) -> int:
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def state_name(self) -> str:
        return _BREAKER_STATE_NAMES[self.state]

    def allow(self) -> bool:
        """Whether a solve attempt may run now (disabled breakers always do)."""
        if self.failure_threshold == 0:
            return True
        with self._lock:
            self._maybe_half_open()
            return self._state != BREAKER_OPEN

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._state = BREAKER_CLOSED

    def record_failure(self) -> None:
        if self.failure_threshold == 0:
            return
        with self._lock:
            self._maybe_half_open()
            self._consecutive_failures += 1
            if self._state == BREAKER_HALF_OPEN or (
                self._state == BREAKER_CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = BREAKER_OPEN
                self._opened_at = self._clock()
                self.trips += 1

    def _maybe_half_open(self) -> None:
        if (
            self._state == BREAKER_OPEN
            and self._clock() - self._opened_at >= self.reset_seconds
        ):
            self._state = BREAKER_HALF_OPEN


@dataclass
class PlanResponse:
    """How one request resolved: exactly one outcome, one serving tier.

    ``plan`` is the live plan for every tier that produced one; the
    stale-payload tier can serve ``payload`` only.  ``attempts`` counts solve
    attempts actually started (0 for cache hits and sheds); ``retries`` is
    ``max(attempts - 1, 0)`` plus ladder attempts.  ``error`` carries the
    final error string for ``outcome == "error"``.

    ``trace_id`` is the deterministic request ID minted at submission (the
    key into the telemetry journal; coalesced followers keep their own IDs
    even though they resolve with the leader's plan), and ``tenant`` the
    optional accounting label the request was submitted under.  Both are
    deterministic under serial submission, so they belong in the canonical
    report.
    """

    outcome: str
    tier: str | None
    fingerprint: str
    plan: "ExecutionPlan | None" = None
    payload: str | None = None
    attempts: int = 0
    error: str | None = None
    trace_id: str | None = None
    tenant: str | None = None

    @property
    def ok(self) -> bool:
        return self.outcome in (RESPONSE_SERVED, RESPONSE_DEGRADED)

    @property
    def degraded(self) -> bool:
        return self.outcome == RESPONSE_DEGRADED

    def canonical_dict(self) -> dict:
        """Deterministic per-request record (no wall-clock, no object ids)."""
        return {
            "outcome": self.outcome,
            "tier": self.tier,
            "fingerprint": self.fingerprint,
            "plan_fingerprint": (
                self.plan.fingerprint if self.plan is not None else None
            ),
            "attempts": self.attempts,
            "error": self.error,
            "trace_id": self.trace_id,
            "tenant": self.tenant,
        }
