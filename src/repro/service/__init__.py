"""Planning service: fingerprint-keyed caching and concurrent plan serving.

Planning is a pure function of (task set, cluster, planner configuration), so
identical and overlapping requests can be memoized and served concurrently
instead of recomputed serially:

* :mod:`repro.service.fingerprint` — canonical, order/naming-insensitive
  content hashes of planning requests,
* :mod:`repro.service.cache` — a thread-safe LRU+TTL plan cache serving
  byte-identical serialized plans, with payload checksums and stale-entry
  retention for the degradation ladder,
* :mod:`repro.service.server` — a concurrent plan service with a bounded
  worker pool, request batching, single-flight deduplication and (opt-in)
  retries, deadlines, circuit breaking, load shedding and graceful
  degradation,
* :mod:`repro.service.fleet` — a fingerprint-range-sharded fleet of plan
  services behind one routing front end, with a lock-striped shared cache
  and per-shard store partitions,
* :mod:`repro.service.resilience` — the resilience policy, circuit breaker
  and per-request :class:`~repro.service.resilience.PlanResponse` record,
* :mod:`repro.service.store` — a crash-safe persistent plan store (atomic
  snapshots, per-entry checksums, quarantine) for warm starts,
* :mod:`repro.service.incremental` — incremental re-planning that pools
  per-MetaOp scalability curves across overlapping requests,
* :mod:`repro.service.stats` — service-level throughput/latency/hit-rate
  accounting.
"""

from repro.service.cache import CacheError, CacheStats, PlanCache, payload_checksum
from repro.service.fingerprint import (
    canonical_cluster,
    canonical_graph,
    canonical_task,
    canonical_tasks,
    canonical_workload,
    fingerprint_workload,
    hash_document,
)
from repro.service.fleet import (
    FleetError,
    PlanServiceFleet,
    StripedPlanCache,
    jump_consistent_hash,
    shard_for_fingerprint,
)
from repro.service.incremental import (
    IncrementalPlanner,
    IncrementalStats,
    StaleTopologyError,
)
from repro.service.resilience import (
    DEGRADED_TIERS,
    RESPONSE_DEGRADED,
    RESPONSE_ERROR,
    RESPONSE_SERVED,
    RESPONSE_SHED,
    TIER_CACHE,
    TIER_FRESH,
    TIER_INCREMENTAL,
    TIER_REFERENCE,
    TIER_STALE,
    CircuitBreaker,
    PlanResponse,
    ResiliencePolicy,
)
from repro.service.server import (
    FingerprintMemo,
    PlanService,
    PlanServicePool,
    ServiceError,
    ServiceOverloadError,
)
from repro.service.stats import (
    OUTCOME_COALESCED,
    OUTCOME_DEGRADED,
    OUTCOME_HIT,
    OUTCOME_MISS,
    OUTCOME_SHED,
    LatencySummary,
    ServiceStats,
)
from repro.service.store import (
    STORE_FORMAT_VERSION,
    PlanStore,
    StoreError,
    StoreLoadResult,
)

__all__ = [
    "CacheError",
    "CacheStats",
    "CircuitBreaker",
    "DEGRADED_TIERS",
    "FingerprintMemo",
    "FleetError",
    "IncrementalPlanner",
    "IncrementalStats",
    "LatencySummary",
    "OUTCOME_COALESCED",
    "OUTCOME_DEGRADED",
    "OUTCOME_HIT",
    "OUTCOME_MISS",
    "OUTCOME_SHED",
    "PlanCache",
    "PlanResponse",
    "PlanService",
    "PlanServiceFleet",
    "PlanServicePool",
    "PlanStore",
    "RESPONSE_DEGRADED",
    "RESPONSE_ERROR",
    "RESPONSE_SERVED",
    "RESPONSE_SHED",
    "STORE_FORMAT_VERSION",
    "ResiliencePolicy",
    "ServiceError",
    "ServiceOverloadError",
    "ServiceStats",
    "StaleTopologyError",
    "StoreError",
    "StoreLoadResult",
    "StripedPlanCache",
    "TIER_CACHE",
    "TIER_FRESH",
    "TIER_INCREMENTAL",
    "TIER_REFERENCE",
    "TIER_STALE",
    "canonical_cluster",
    "canonical_graph",
    "canonical_task",
    "canonical_tasks",
    "canonical_workload",
    "fingerprint_workload",
    "hash_document",
    "jump_consistent_hash",
    "payload_checksum",
    "shard_for_fingerprint",
]
