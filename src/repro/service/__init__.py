"""Planning service: fingerprint-keyed caching and concurrent plan serving.

Planning is a pure function of (task set, cluster, planner configuration), so
identical and overlapping requests can be memoized and served concurrently
instead of recomputed serially:

* :mod:`repro.service.fingerprint` — canonical, order/naming-insensitive
  content hashes of planning requests,
* :mod:`repro.service.cache` — a thread-safe LRU+TTL plan cache serving
  byte-identical serialized plans,
* :mod:`repro.service.server` — a concurrent plan service with a bounded
  worker pool, request batching and single-flight deduplication,
* :mod:`repro.service.incremental` — incremental re-planning that pools
  per-MetaOp scalability curves across overlapping requests,
* :mod:`repro.service.stats` — service-level throughput/latency/hit-rate
  accounting.
"""

from repro.service.cache import CacheError, CacheStats, PlanCache
from repro.service.fingerprint import (
    canonical_cluster,
    canonical_graph,
    canonical_task,
    canonical_tasks,
    canonical_workload,
    fingerprint_workload,
    hash_document,
)
from repro.service.incremental import (
    IncrementalPlanner,
    IncrementalStats,
    StaleTopologyError,
)
from repro.service.server import PlanService, PlanServicePool, ServiceError
from repro.service.stats import (
    OUTCOME_COALESCED,
    OUTCOME_HIT,
    OUTCOME_MISS,
    LatencySummary,
    ServiceStats,
)

__all__ = [
    "CacheError",
    "CacheStats",
    "IncrementalPlanner",
    "IncrementalStats",
    "LatencySummary",
    "OUTCOME_COALESCED",
    "OUTCOME_HIT",
    "OUTCOME_MISS",
    "PlanCache",
    "PlanService",
    "PlanServicePool",
    "ServiceError",
    "ServiceStats",
    "StaleTopologyError",
    "canonical_cluster",
    "canonical_graph",
    "canonical_task",
    "canonical_tasks",
    "canonical_workload",
    "fingerprint_workload",
    "hash_document",
]
