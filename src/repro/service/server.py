"""Concurrent plan service: worker pool, request batching and single-flight.

:class:`PlanService` turns the execution planner into a servable component.
Requests (task sets or raw computation graphs) are fingerprinted on arrival
and resolved through three paths, cheapest first:

1. **Cache hit** — the fingerprint is already in the :class:`PlanCache`; the
   returned future is resolved immediately with the cached plan.
2. **Single-flight coalescing** — an identical request is already being
   planned; the caller receives the *same* future, so N concurrent identical
   requests cost one planner run.
3. **Fresh planning** — the request is queued for the bounded worker pool.
   Workers drain the queue in batches (up to ``max_batch_size`` requests per
   wake-up) and group batch items by fingerprint, so duplicates that reach the
   queue are still planned only once.

Every completed request records its outcome and end-to-end latency in a
:class:`~repro.service.stats.ServiceStats` accumulator.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from typing import Callable, Union

from repro.cluster.topology import ClusterTopology
from repro.core.plan import ExecutionPlan
from repro.core.planner import ExecutionPlanner, PlannerInput
from repro.core.serialization import plan_to_json
from repro.graph.graph import ComputationGraph
from repro.obs import get_metrics, get_tracer
from repro.service.cache import PlanCache
from repro.service.fingerprint import fingerprint_workload
from repro.service.incremental import IncrementalPlanner
from repro.service.stats import (
    OUTCOME_COALESCED,
    OUTCOME_HIT,
    OUTCOME_MISS,
    ServiceStats,
)

#: Planner prototypes a service can serve: a plain planner, an incremental
#: (curve-pooling) wrapper, or a zero-argument factory of either.
ServablePlanner = Union[ExecutionPlanner, IncrementalPlanner]
PlannerOrFactory = Union[ServablePlanner, Callable[[], ServablePlanner]]

_SHUTDOWN = object()


class ServiceError(Exception):
    """Raised for invalid service configuration or use after shutdown."""


class PlanService:
    """A concurrent, deduplicating, caching front-end to the execution planner.

    Parameters
    ----------
    planner:
        Either a ready :class:`ExecutionPlanner` (or curve-pooling
        :class:`~repro.service.incremental.IncrementalPlanner`) shared by all
        workers, or a zero-argument factory; with a factory every worker
        thread builds its own planner instance (useful when profiling noise
        is enabled, since the synthetic profiler's RNG is per-planner).
    cache:
        Plan cache consulted before planning and populated after; a default
        unbounded-TTL cache of 64 entries is created when omitted.  Pass a
        shared cache to pool plans across services.
    num_workers:
        Size of the bounded worker pool.
    max_batch_size:
        Maximum number of queued requests one worker drains per wake-up.
    """

    def __init__(
        self,
        planner: PlannerOrFactory,
        *,
        cache: PlanCache | None = None,
        stats: ServiceStats | None = None,
        num_workers: int = 2,
        max_batch_size: int = 8,
    ) -> None:
        if num_workers <= 0:
            raise ServiceError("num_workers must be positive")
        if max_batch_size <= 0:
            raise ServiceError("max_batch_size must be positive")
        if callable(planner) and not isinstance(
            planner, (ExecutionPlanner, IncrementalPlanner)
        ):
            self._planner_factory: Callable[[], ServablePlanner] = planner
            self._prototype = planner()
        else:
            self._planner_factory = lambda: planner  # type: ignore[return-value]
            self._prototype = planner
        if not isinstance(self._prototype, (ExecutionPlanner, IncrementalPlanner)):
            raise ServiceError(
                "planner must be an ExecutionPlanner, an IncrementalPlanner "
                "or a factory of either"
            )
        self.cache = cache if cache is not None else PlanCache(capacity=64)
        self.stats = stats if stats is not None else ServiceStats()
        self.max_batch_size = max_batch_size
        self._queue: queue.Queue = queue.Queue()
        self._inflight: dict[str, Future] = {}
        self._lock = threading.Lock()
        self._closed = False
        # Fingerprint memo keyed by the identity of the request's task objects.
        # Resubmitting the same task objects (the common serving pattern) skips
        # canonicalisation entirely; entries hold strong references to their
        # workloads so CPython cannot recycle the memoized ids.  Workloads are
        # treated as immutable once submitted.
        self._fingerprint_memo: OrderedDict[tuple[int, ...], tuple[object, str]] = (
            OrderedDict()
        )
        self._fingerprint_memo_capacity = 1024
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"plan-worker-{i}", daemon=True
            )
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------- public API
    def fingerprint(self, workload: PlannerInput) -> str:
        """Fingerprint a request exactly as :meth:`submit` would."""
        if isinstance(workload, ComputationGraph):
            key = (id(workload),)
        else:
            key = tuple(id(task) for task in workload)
        with self._lock:
            memoized = self._fingerprint_memo.get(key)
            if memoized is not None:
                self._fingerprint_memo.move_to_end(key)
                return memoized[1]
        fp = fingerprint_workload(
            workload, self._prototype.cluster, self._prototype.config_signature()
        )
        with self._lock:
            self._fingerprint_memo[key] = (workload, fp)
            self._fingerprint_memo.move_to_end(key)
            while len(self._fingerprint_memo) > self._fingerprint_memo_capacity:
                self._fingerprint_memo.popitem(last=False)
        return fp

    def submit(self, workload: PlannerInput) -> Future:
        """Enqueue a planning request; returns a future yielding the plan.

        Identical in-flight requests share one future (single-flight); cached
        requests resolve immediately.  The enqueue → dedup portion of the
        request lifecycle runs inside a ``service.submit`` span whose
        ``outcome`` attribute records how the request was resolved; the solve
        and cache-fill steps are spanned in the worker thread
        (:meth:`_plan_one`).
        """
        start = time.monotonic()
        metrics = get_metrics()
        with get_tracer().span("service.submit", category="service") as span:
            if not isinstance(workload, ComputationGraph):
                workload = tuple(workload)  # snapshot mutable task sequences
            fp = self.fingerprint(workload)
            span.set(fingerprint=fp[:12])

            # The closed check, inflight registration and enqueue happen under
            # one lock: close() flips _closed under the same lock before
            # pushing the shutdown sentinels, so a request can never land
            # behind them (which would leave its future unresolved forever).
            with self._lock:
                if self._closed:
                    raise ServiceError("PlanService is closed")
                cached = self.cache.get(fp)
                if cached is not None:
                    future: Future = Future()
                    future.set_result(cached)
                    self.stats.record(OUTCOME_HIT, time.monotonic() - start)
                    metrics.inc("service.cache", outcome=OUTCOME_HIT)
                    span.set(outcome=OUTCOME_HIT)
                    return future
                inflight = self._inflight.get(fp)
                if inflight is not None:
                    self._record_on_completion(inflight, OUTCOME_COALESCED, start)
                    metrics.inc("service.cache", outcome=OUTCOME_COALESCED)
                    span.set(outcome=OUTCOME_COALESCED)
                    return inflight
                future = Future()
                self._inflight[fp] = future
                self._record_on_completion(future, OUTCOME_MISS, start)
                self._queue.put((fp, workload))
                metrics.inc("service.cache", outcome=OUTCOME_MISS)
                span.set(outcome=OUTCOME_MISS)
            return future

    def plan(self, workload: PlannerInput, timeout: float | None = None) -> ExecutionPlan:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(workload).result(timeout=timeout)

    def serialized_plan(
        self, workload: PlannerInput, timeout: float | None = None
    ) -> str:
        """Return the serialized plan document, byte-identical across hits."""
        fp = self.fingerprint(workload)
        payload = self.cache.get_payload(fp)
        if payload is not None:
            return payload
        plan = self.plan(workload, timeout=timeout)
        return self.cache.get_payload(fp) or plan_to_json(plan)

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def pending_requests(self) -> int:
        """Number of requests queued or being planned right now."""
        with self._lock:
            return len(self._inflight)

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests and shut the worker pool down.

        Requests submitted before the close are still planned (they sit ahead
        of the shutdown sentinels in the queue)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for _ in self._workers:
                self._queue.put(_SHUTDOWN)
        if wait:
            for worker in self._workers:
                worker.join()

    def __enter__(self) -> "PlanService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- internals
    def _record_on_completion(self, future: Future, outcome: str, start: float) -> None:
        def _done(completed: Future) -> None:
            # Failed requests are accounted as errors by the worker, not as
            # outcomes — recording them here too would double-count them and
            # pollute the latency percentiles.
            if completed.cancelled() or completed.exception() is not None:
                return
            self.stats.record(outcome, time.monotonic() - start)

        future.add_done_callback(_done)

    def _worker_loop(self) -> None:
        planner = self._planner_factory()
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            batch = [item]
            while len(batch) < self.max_batch_size:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _SHUTDOWN:
                    self._queue.put(_SHUTDOWN)  # leave the signal for a peer
                    break
                batch.append(extra)
            # Group by fingerprint: duplicates that reached the queue (e.g.
            # submitted between a cache eviction and re-planning) are planned
            # once per batch.
            grouped: dict[str, PlannerInput] = {}
            for fp, workload in batch:
                grouped.setdefault(fp, workload)
            for fp, workload in grouped.items():
                self._plan_one(planner, fp, workload)

    def _plan_one(
        self, planner: ServablePlanner, fp: str, workload: PlannerInput
    ) -> None:
        tracer = get_tracer()
        try:
            with tracer.span(
                "service.solve", category="service", fingerprint=fp[:12]
            ):
                plan = planner.plan(workload, fingerprint=fp)
            with tracer.span(
                "service.cache_put", category="service", fingerprint=fp[:12]
            ):
                self.cache.put(fp, plan)
        except Exception as exc:  # noqa: BLE001 - surfaced through the future
            with self._lock:
                future = self._inflight.pop(fp, None)
            self.stats.record_error()
            get_metrics().inc("service.errors")
            if future is not None:
                future.set_exception(exc)
            return
        with self._lock:
            future = self._inflight.pop(fp, None)
        if future is not None:
            future.set_result(plan)


class PlanServicePool:
    """One :class:`PlanService` per topology signature, sharing cache + stats.

    Elastic training runs replan whenever the substrate changes, and several
    concurrent jobs on one cluster walk through the *same* derived topologies
    (the same failure produces the same snapshot).  Routing every replan
    through a pool keyed by topology signature gives those jobs:

    * **shared plans** — one fingerprint-keyed :class:`PlanCache` across all
      topologies of the pool, so a substrate one job already planned for is a
      cache hit for every other job;
    * **single-flight replanning** — jobs replanning the same workload on the
      same topology at the same moment coalesce onto one planner run inside
      the topology's service;
    * **curve pooling per substrate** — each service wraps its planner in an
      :class:`~repro.service.incremental.IncrementalPlanner`, so curves warm
      up across successive replans on a recurring topology but never leak
      across topologies.

    Parameters
    ----------
    planner_factory:
        Builds the :class:`ExecutionPlanner` for a derived topology (same
        contract as the elastic runner's ``planner_factory``).
    cache / stats:
        Shared across every service of the pool; fresh ones are created when
        omitted.
    num_workers / max_batch_size:
        Per-topology service worker-pool configuration.
    """

    def __init__(
        self,
        planner_factory: Callable[[ClusterTopology], ExecutionPlanner],
        *,
        cache: PlanCache | None = None,
        stats: ServiceStats | None = None,
        num_workers: int = 2,
        max_batch_size: int = 8,
    ) -> None:
        self.planner_factory = planner_factory
        self.cache = cache if cache is not None else PlanCache(capacity=64)
        self.stats = stats if stats is not None else ServiceStats()
        self.num_workers = num_workers
        self.max_batch_size = max_batch_size
        self._services: dict[str, PlanService] = {}
        self._lock = threading.Lock()
        self._closed = False

    def service_for(self, topology: ClusterTopology) -> PlanService:
        """The (shared) service planning for ``topology``'s signature."""
        signature = topology.signature()
        with self._lock:
            if self._closed:
                raise ServiceError("PlanServicePool is closed")
            service = self._services.get(signature)
            if service is None:
                service = PlanService(
                    IncrementalPlanner(self.planner_factory(topology)),
                    cache=self.cache,
                    stats=self.stats,
                    num_workers=self.num_workers,
                    max_batch_size=self.max_batch_size,
                )
                self._services[signature] = service
        return service

    @property
    def num_services(self) -> int:
        with self._lock:
            return len(self._services)

    def close(self, wait: bool = True) -> None:
        """Shut every per-topology service down."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            services = list(self._services.values())
        for service in services:
            service.close(wait=wait)

    def __enter__(self) -> "PlanServicePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
