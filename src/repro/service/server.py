"""Concurrent plan service: worker pool, batching, single-flight, resilience.

:class:`PlanService` turns the execution planner into a servable component.
Requests (task sets or raw computation graphs) are fingerprinted on arrival
and resolved through three paths, cheapest first:

1. **Cache hit** — the fingerprint is already in the :class:`PlanCache`; the
   returned future is resolved immediately with the cached plan.
2. **Single-flight coalescing** — an identical request is already being
   planned; the caller receives the *same* future, so N concurrent identical
   requests cost one planner run.
3. **Fresh planning** — the request is queued for the bounded worker pool.
   Workers drain the queue in batches (up to ``max_batch_size`` requests per
   wake-up) and group batch items by fingerprint, so duplicates that reach the
   queue are still planned only once.

With a :class:`~repro.service.resilience.ResiliencePolicy` the fresh-planning
path is hardened: solve attempts are bounded by per-request deadlines and
retried with seeded exponential backoff, a circuit breaker trips after
consecutive failures, bounded-queue admission control sheds excess load
explicitly, and exhausted requests walk a degradation ladder —

    fresh cache hit → retry fresh solve → stale cache entry (flagged)
    → incremental reuse → reference-path solve → ``ServiceError``

— so every admitted request resolves in exactly one outcome (``served`` /
``degraded`` / ``shed`` / ``error``); futures never hang, including across
injected worker crashes (the pool respawns dead workers and requeues their
in-flight requests) and across :meth:`PlanService.close`.

Fault injection (:mod:`repro.faults`) threads through the same hook points
deterministically; see ``docs/resilience.md`` for the ladder, the policy
knobs and the determinism rules.

Every completed request records its outcome and end-to-end latency in a
:class:`~repro.service.stats.ServiceStats` accumulator.

Request-scoped telemetry threads through every path: each submission mints a
deterministic trace ID (:class:`~repro.obs.telemetry.TraceIdGenerator` —
fingerprint prefix + seeded counter, so same-seed serial replays mint
identical IDs), attaches it to the ``service.submit``/``service.solve``
spans, and — when a :class:`~repro.obs.telemetry.TelemetryJournal` is
configured — journals the full lifecycle: submission, cache hit /
coalescing (recording the leader's ID) / shed / enqueue, every solve
attempt and retry, injected faults, worker-crash requeues, degradation
tiers and final resolution.  Resolution events are emitted *before* the
future resolves, so a serial submitter observes a fully-ordered journal
(byte-identical across same-seed replays).  A
:class:`~repro.obs.slo.SloTracker` can ride along to fold outcomes and
latencies into per-tenant/per-topology service levels.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Union

from repro.cluster.topology import ClusterTopology
from repro.core.plan import ExecutionPlan
from repro.core.planner import ExecutionPlanner, PlannerInput
from repro.core.serialization import plan_to_json
from repro.faults.injection import NULL_INJECTOR, InjectedWorkerCrash
from repro.graph.graph import ComputationGraph
from repro.obs import get_metrics, get_tracer
from repro.obs.telemetry import (
    EVENT_ATTEMPT,
    EVENT_CACHE_HIT,
    EVENT_COALESCED,
    EVENT_DEGRADED,
    EVENT_ENQUEUED,
    EVENT_REQUEUED,
    EVENT_RESOLVED,
    EVENT_RETRY,
    EVENT_SHED,
    EVENT_SUBMITTED,
    TelemetryJournal,
    TraceIdGenerator,
)
from repro.service.cache import PlanCache
from repro.service.fingerprint import fingerprint_workload
from repro.service.incremental import IncrementalPlanner
from repro.service.resilience import (
    RESPONSE_DEGRADED,
    RESPONSE_ERROR,
    RESPONSE_SERVED,
    RESPONSE_SHED,
    TIER_CACHE,
    TIER_FRESH,
    TIER_INCREMENTAL,
    TIER_REFERENCE,
    TIER_STALE,
    CircuitBreaker,
    PlanResponse,
    ResiliencePolicy,
)
from repro.service.stats import (
    OUTCOME_COALESCED,
    OUTCOME_DEGRADED,
    OUTCOME_HIT,
    OUTCOME_MISS,
    OUTCOME_SHED,
    ServiceStats,
)

#: Planner prototypes a service can serve: a plain planner, an incremental
#: (curve-pooling) wrapper, or a zero-argument factory of either.
ServablePlanner = Union[ExecutionPlanner, IncrementalPlanner]
PlannerOrFactory = Union[ServablePlanner, Callable[[], ServablePlanner]]

_SHUTDOWN = object()


class FingerprintMemo:
    """Identity-keyed memo of workload fingerprints.

    Resubmitting the same task objects (the common serving pattern) skips
    canonicalisation entirely; entries hold strong references to their
    workloads so CPython cannot recycle the memoized ids.  Workloads are
    treated as immutable once submitted.  Shared by :class:`PlanService`
    and the fleet router (:class:`~repro.service.fleet.PlanServiceFleet`),
    which fingerprints once at the front end and hands the result down.
    """

    def __init__(
        self,
        cluster: ClusterTopology,
        config_signature: str,
        capacity: int = 1024,
    ) -> None:
        self.cluster = cluster
        self.config_signature = config_signature
        self.capacity = capacity
        self._lock = threading.Lock()
        self._memo: OrderedDict[tuple[int, ...], tuple[object, str]] = OrderedDict()

    @staticmethod
    def key_of(workload: PlannerInput) -> tuple[int, ...]:
        if isinstance(workload, ComputationGraph):
            return (id(workload),)
        return tuple(id(task) for task in workload)

    def fingerprint(self, workload: PlannerInput) -> str:
        key = self.key_of(workload)
        with self._lock:
            memoized = self._memo.get(key)
            if memoized is not None:
                self._memo.move_to_end(key)
                return memoized[1]
        fp = fingerprint_workload(workload, self.cluster, self.config_signature)
        self.remember(workload, fp, key=key)
        return fp

    def remember(
        self,
        workload: PlannerInput,
        fingerprint: str,
        key: "tuple[int, ...] | None" = None,
    ) -> None:
        """Seed the memo with an externally computed fingerprint."""
        key = key if key is not None else self.key_of(workload)
        with self._lock:
            self._memo[key] = (workload, fingerprint)
            self._memo.move_to_end(key)
            while len(self._memo) > self.capacity:
                self._memo.popitem(last=False)


class ServiceError(Exception):
    """Raised for invalid service configuration, shutdown, or exhausted
    degradation ladders."""


class ServiceOverloadError(ServiceError):
    """The request was shed by bounded-queue admission control."""


@dataclass
class _Request:
    """One queued planning request: its identity, future and retry state."""

    fingerprint: str
    workload: PlannerInput
    future: Future
    index: int = -1
    attempt: int = 0
    submitted_at: float = field(default_factory=time.monotonic)
    deadline_at: float | None = None
    trace_id: str | None = None
    tenant: str | None = None

    def past_deadline(self) -> bool:
        return self.deadline_at is not None and time.monotonic() > self.deadline_at


class _WorkerCrashed(Exception):
    """Internal: an injected worker crash; carries the requests to requeue."""

    def __init__(self, requests: "list[_Request]") -> None:
        super().__init__("injected worker crash")
        self.requests = requests


class PlanService:
    """A concurrent, deduplicating, caching front-end to the execution planner.

    Parameters
    ----------
    planner:
        Either a ready :class:`ExecutionPlanner` (or curve-pooling
        :class:`~repro.service.incremental.IncrementalPlanner`) shared by all
        workers, or a zero-argument factory; with a factory every worker
        thread builds its own planner instance (useful when profiling noise
        is enabled, since the synthetic profiler's RNG is per-planner).
    cache:
        Plan cache consulted before planning and populated after; a default
        unbounded-TTL cache of 64 entries is created when omitted.  Pass a
        shared cache to pool plans across services.
    num_workers:
        Size of the bounded worker pool.
    max_batch_size:
        Maximum number of queued requests one worker drains per wake-up.
    resilience:
        Optional :class:`ResiliencePolicy` enabling retries, deadlines, the
        circuit breaker, admission control and the degradation ladder.
        Defaults to a stock policy whenever ``fault_injector`` is given
        (an injected fault campaign without recovery would be pointless).
    fault_injector:
        Optional :class:`~repro.faults.injection.FaultInjector` applying a
        deterministic fault schedule at the service's hook points.
    reference_planner_factory:
        Builds the planner of the last-resort ``reference`` ladder tier; by
        default an ``ExecutionPlanner(cluster, optimized=False)`` on the
        prototype's cluster.  Override it when the primary planner is
        non-default-configured, so the reference tier plans under the same
        configuration (and therefore the same fingerprints).
    journal:
        Optional :class:`~repro.obs.telemetry.TelemetryJournal`; when given,
        every request's lifecycle is journaled (see the module docstring).
        Shared with the fault injector by the benchmark harness so injected
        faults land in the same stream.
    slo:
        Optional :class:`~repro.obs.slo.SloTracker` fed one sample per
        resolved request (outcome, latency, tenant, topology).
    trace_ids:
        Optional shared :class:`~repro.obs.telemetry.TraceIdGenerator`
        (a pool passes one across its per-topology services); by default a
        private generator seeded with ``trace_seed``.
    label:
        Scope label stamped on journal events and SLO samples (``topology``
        field); defaults to the topology-signature prefix.  A fleet passes
        ``<topology>/s<ordinal>`` so per-shard rollups stay separable.
    """

    def __init__(
        self,
        planner: PlannerOrFactory,
        *,
        cache: PlanCache | None = None,
        stats: ServiceStats | None = None,
        num_workers: int = 2,
        max_batch_size: int = 8,
        resilience: ResiliencePolicy | None = None,
        fault_injector=None,
        reference_planner_factory: Callable[[], ExecutionPlanner] | None = None,
        journal: TelemetryJournal | None = None,
        slo=None,
        trace_ids: TraceIdGenerator | None = None,
        trace_seed: int = 0,
        label: str | None = None,
    ) -> None:
        if num_workers <= 0:
            raise ServiceError("num_workers must be positive")
        if max_batch_size <= 0:
            raise ServiceError("max_batch_size must be positive")
        if callable(planner) and not isinstance(
            planner, (ExecutionPlanner, IncrementalPlanner)
        ):
            self._planner_factory: Callable[[], ServablePlanner] = planner
            self._prototype = planner()
        else:
            self._planner_factory = lambda: planner  # type: ignore[return-value]
            self._prototype = planner
        if not isinstance(self._prototype, (ExecutionPlanner, IncrementalPlanner)):
            raise ServiceError(
                "planner must be an ExecutionPlanner, an IncrementalPlanner "
                "or a factory of either"
            )
        self.cache = cache if cache is not None else PlanCache(capacity=64)
        self.stats = stats if stats is not None else ServiceStats()
        self.max_batch_size = max_batch_size
        if resilience is None and fault_injector is not None:
            resilience = ResiliencePolicy()
        self.resilience = resilience
        self.injector = fault_injector if fault_injector is not None else NULL_INJECTOR
        self.journal = journal
        self.slo = slo
        self.trace_ids = (
            trace_ids if trace_ids is not None else TraceIdGenerator(trace_seed)
        )
        # Journal-less collaborators inherit the service's journal so cache
        # quarantines and injected faults land in the same event stream as
        # the request lifecycles they belong to.
        if journal is not None:
            if self.cache.journal is None:
                self.cache.journal = journal
            if self.injector is not NULL_INJECTOR and self.injector.journal is None:
                self.injector.journal = journal
        self._reference_planner_factory = reference_planner_factory
        self._reference_planner: ExecutionPlanner | None = None
        self._reference_lock = threading.Lock()
        self._topology_label = (
            label if label is not None else self._prototype.cluster.signature()[:12]
        )
        self.breaker = CircuitBreaker(
            failure_threshold=(
                resilience.breaker_failure_threshold if resilience else 0
            ),
            reset_seconds=(resilience.breaker_reset_seconds if resilience else 0.5),
        )
        self._queue: queue.Queue = queue.Queue()
        self._inflight: dict[str, Future] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._cancel_pending = False
        self._fingerprints = FingerprintMemo(
            self._prototype.cluster, self._prototype.config_signature()
        )
        self._num_workers = num_workers
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"plan-worker-{i}", daemon=True
            )
            for i in range(num_workers)
        ]
        for worker in self._workers:
            worker.start()
        self._update_breaker_gauge()

    # ------------------------------------------------------------- public API
    def fingerprint(self, workload: PlannerInput) -> str:
        """Fingerprint a request exactly as :meth:`submit` would."""
        return self._fingerprints.fingerprint(workload)

    def submit(
        self,
        workload: PlannerInput,
        *,
        tenant: str | None = None,
        fingerprint: str | None = None,
    ) -> Future:
        """Enqueue a planning request; returns a future yielding the plan.

        Identical in-flight requests share one future (single-flight); cached
        requests resolve immediately; with admission control enabled, a
        request arriving over the queue bound resolves immediately with
        :class:`ServiceOverloadError` (explicit load shedding — the future
        never hangs).  The enqueue → dedup portion of the request lifecycle
        runs inside a ``service.submit`` span whose ``outcome`` attribute
        records how the request was resolved; the solve and cache-fill steps
        are spanned in the worker thread.

        Every submission mints a trace ID — even coalesced ones, whose
        journal entry records the in-flight leader's ID (the returned future
        is the leader's, so ``future._repro_trace_id`` stays the leader's
        too).  ``tenant`` is an optional accounting label carried through
        the journal, the :class:`PlanResponse` and the SLO tracker.

        ``fingerprint`` accepts the request's precomputed canonical
        fingerprint (a fleet router fingerprints once to pick the shard);
        when given, the service trusts it and seeds its memo instead of
        re-canonicalising.
        """
        start = time.monotonic()
        metrics = get_metrics()
        with get_tracer().span("service.submit", category="service") as span:
            if not isinstance(workload, ComputationGraph):
                workload = tuple(workload)  # snapshot mutable task sequences
            if fingerprint is not None:
                fp = fingerprint
                self._fingerprints.remember(workload, fp)
            else:
                fp = self.fingerprint(workload)
            trace_id = self.trace_ids.mint(fp)
            span.set(fingerprint=fp[:12], trace_id=trace_id)
            self._emit(EVENT_SUBMITTED, trace_id, tenant=tenant, fingerprint=fp)

            # The closed check, inflight registration and enqueue happen under
            # one lock: close() flips _closed under the same lock before
            # pushing the shutdown sentinels, so a request can never land
            # behind them (which would leave its future unresolved forever).
            with self._lock:
                if self._closed:
                    raise ServiceError("PlanService is closed")
                cached = self.cache.get(fp)
                if cached is not None:
                    future: Future = Future()
                    future._repro_trace_id = trace_id
                    self._attach_response(
                        future,
                        PlanResponse(
                            outcome=RESPONSE_SERVED,
                            tier=TIER_CACHE,
                            fingerprint=fp,
                            plan=cached,
                            trace_id=trace_id,
                            tenant=tenant,
                        ),
                    )
                    self._emit(
                        EVENT_CACHE_HIT, trace_id, tenant=tenant, tier=TIER_CACHE
                    )
                    self._emit(
                        EVENT_RESOLVED,
                        trace_id,
                        tenant=tenant,
                        tier=TIER_CACHE,
                        outcome=RESPONSE_SERVED,
                    )
                    self._slo_record(
                        RESPONSE_SERVED, time.monotonic() - start, tenant
                    )
                    future.set_result(cached)
                    self.stats.record(OUTCOME_HIT, time.monotonic() - start)
                    metrics.inc("service.cache", outcome=OUTCOME_HIT)
                    span.set(outcome=OUTCOME_HIT)
                    return future
                inflight = self._inflight.get(fp)
                if inflight is not None:
                    leader = getattr(inflight, "_repro_trace_id", None)
                    self._emit(
                        EVENT_COALESCED, trace_id, tenant=tenant, leader=leader
                    )
                    self._record_on_completion(
                        inflight, OUTCOME_COALESCED, start, trace_id, tenant
                    )
                    metrics.inc("service.cache", outcome=OUTCOME_COALESCED)
                    span.set(outcome=OUTCOME_COALESCED)
                    return inflight
                if (
                    self.resilience is not None
                    and self.resilience.max_queue_depth is not None
                    and len(self._inflight) >= self.resilience.max_queue_depth
                ):
                    future = Future()
                    future._repro_trace_id = trace_id
                    self._attach_response(
                        future,
                        PlanResponse(
                            outcome=RESPONSE_SHED,
                            tier=None,
                            fingerprint=fp,
                            error="shed by admission control",
                            trace_id=trace_id,
                            tenant=tenant,
                        ),
                    )
                    self._emit(EVENT_SHED, trace_id, tenant=tenant)
                    self._emit(
                        EVENT_RESOLVED,
                        trace_id,
                        tenant=tenant,
                        outcome=RESPONSE_SHED,
                    )
                    self._slo_record(
                        RESPONSE_SHED, time.monotonic() - start, tenant
                    )
                    future.set_exception(
                        ServiceOverloadError(
                            f"request shed: {len(self._inflight)} requests "
                            "already queued or in flight"
                        )
                    )
                    self.stats.record(OUTCOME_SHED, time.monotonic() - start)
                    metrics.inc("service.shed")
                    span.set(outcome=OUTCOME_SHED)
                    return future
                future = Future()
                future._repro_fingerprint = fp  # for timeout cleanup
                future._repro_trace_id = trace_id
                deadline = None
                if (
                    self.resilience is not None
                    and self.resilience.deadline_seconds is not None
                ):
                    deadline = start + self.resilience.deadline_seconds
                request = _Request(
                    fingerprint=fp,
                    workload=workload,
                    future=future,
                    index=self.injector.assign_index(),
                    submitted_at=start,
                    deadline_at=deadline,
                    trace_id=trace_id,
                    tenant=tenant,
                )
                self._inflight[fp] = future
                self._queue.put(request)
                self._emit(EVENT_ENQUEUED, trace_id, tenant=tenant)
                metrics.inc("service.cache", outcome=OUTCOME_MISS)
                span.set(outcome=OUTCOME_MISS)
            return future

    def submit_many(
        self,
        workloads: "list[PlannerInput]",
        *,
        tenant: str | None = None,
        fingerprints: "list[str] | None" = None,
    ) -> "list[Future]":
        """Submit one dispatch cycle's worth of requests, in order.

        The fleet router groups same-shard requests per dispatch cycle and
        hands each shard its group through this entry point; duplicates
        within the batch coalesce exactly as serial :meth:`submit` calls
        would (the first is the single-flight leader).
        """
        if fingerprints is not None and len(fingerprints) != len(workloads):
            raise ServiceError("fingerprints must match workloads one-to-one")
        return [
            self.submit(
                workload,
                tenant=tenant,
                fingerprint=fingerprints[i] if fingerprints is not None else None,
            )
            for i, workload in enumerate(workloads)
        ]

    def plan(
        self,
        workload: PlannerInput,
        timeout: float | None = None,
        *,
        tenant: str | None = None,
        fingerprint: str | None = None,
    ) -> ExecutionPlan:
        """Synchronous convenience wrapper around :meth:`submit`.

        A timeout abandons the request: the single-flight entry for its
        fingerprint is released, so a later identical request plans afresh
        (or hits the cache once the abandoned solve lands) instead of
        latching onto the abandoned future forever.
        """
        future = self.submit(workload, tenant=tenant, fingerprint=fingerprint)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            self._abandon(future)
            raise

    def request(
        self,
        workload: PlannerInput,
        timeout: float | None = None,
        *,
        tenant: str | None = None,
        fingerprint: str | None = None,
    ) -> PlanResponse:
        """Resolve one request into its :class:`PlanResponse`.

        This is the resilient entry point: it never raises for shed,
        degraded or failed requests — the response's ``outcome`` says what
        happened, and ``response.plan`` carries the plan whenever one was
        served.  (A client-side ``timeout`` expiry is the one exception that
        still surfaces as an ``error`` response rather than an exception.)
        """
        future = self.submit(workload, tenant=tenant, fingerprint=fingerprint)
        try:
            plan = future.result(timeout=timeout)
        except FutureTimeoutError:
            self._abandon(future)
            return PlanResponse(
                outcome=RESPONSE_ERROR,
                tier=None,
                fingerprint=getattr(future, "_repro_fingerprint", ""),
                error=f"client timeout after {timeout}s",
                trace_id=getattr(future, "_repro_trace_id", None),
                tenant=tenant,
            )
        except Exception as exc:  # noqa: BLE001 - folded into the response
            response = self._response_of(future)
            if response is not None:
                return response
            return PlanResponse(
                outcome=RESPONSE_ERROR,
                tier=None,
                fingerprint=getattr(future, "_repro_fingerprint", ""),
                error=str(exc),
                trace_id=getattr(future, "_repro_trace_id", None),
                tenant=tenant,
            )
        response = self._response_of(future)
        if response is not None:
            return response
        return PlanResponse(
            outcome=RESPONSE_SERVED,
            tier=TIER_FRESH,
            fingerprint=plan.fingerprint or "",
            plan=plan,
            trace_id=getattr(future, "_repro_trace_id", None),
            tenant=tenant,
        )

    def serialized_plan(
        self, workload: PlannerInput, timeout: float | None = None
    ) -> str:
        """Return the serialized plan document, byte-identical across hits."""
        fp = self.fingerprint(workload)
        payload = self.cache.get_payload(fp)
        if payload is not None:
            return payload
        plan = self.plan(workload, timeout=timeout)
        return self.cache.get_payload(fp) or plan_to_json(plan)

    @property
    def num_workers(self) -> int:
        """Configured worker-pool size (crashed workers are respawned)."""
        return self._num_workers

    def pending_requests(self) -> int:
        """Number of requests queued or being planned right now."""
        with self._lock:
            return len(self._inflight)

    def close(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop accepting requests and shut the worker pool down.

        Requests already queued are still planned by default (they sit ahead
        of the shutdown sentinels in the queue); with ``cancel_pending`` they
        resolve immediately with :class:`ServiceError` instead.  Either way,
        after a ``wait=True`` close every future this service ever returned
        is resolved: any request left unresolved when the workers exit (e.g.
        one requeued behind the sentinels by a crashed worker) is failed with
        :class:`ServiceError` rather than left hanging.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._cancel_pending = cancel_pending
            for _ in self._workers:
                self._queue.put(_SHUTDOWN)
        if wait:
            while True:
                with self._lock:
                    workers = list(self._workers)
                for worker in workers:
                    worker.join()
                with self._lock:
                    if len(self._workers) == len(workers):
                        break
            self._fail_leftovers()

    def __enter__(self) -> "PlanService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- internals
    def _emit(self, kind: str, trace_id: str | None, **fields) -> None:
        """Journal one lifecycle event (no-op without a journal)."""
        if self.journal is not None:
            self.journal.emit(
                kind, trace_id, topology=self._topology_label, **fields
            )

    def _slo_record(
        self, outcome: str, latency_seconds: float, tenant: str | None
    ) -> None:
        if self.slo is not None:
            self.slo.record(
                outcome,
                latency_seconds,
                tenant=tenant,
                topology=self._topology_label,
            )

    def _attach_response(self, future: Future, response: PlanResponse) -> None:
        future._repro_response = response

    @staticmethod
    def _response_of(future: Future) -> PlanResponse | None:
        return getattr(future, "_repro_response", None)

    def _abandon(self, future: Future) -> None:
        """Release the single-flight slot of a timed-out request.

        The worker still resolves the abandoned future when its solve lands
        (coalesced waiters may hold it), but new identical submissions get a
        fresh future instead of latching onto this one.
        """
        fp = getattr(future, "_repro_fingerprint", None)
        if fp is None:
            return
        with self._lock:
            if self._inflight.get(fp) is future:
                del self._inflight[fp]

    def _fail_leftovers(self) -> None:
        """Resolve every still-pending future after the workers exited."""
        with self._lock:
            leftovers = list(self._inflight.items())
            self._inflight.clear()
            drained: list[_Request] = []
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is not _SHUTDOWN:
                    drained.append(item)
        for request in drained:
            self._fail_request(
                request, ServiceError("PlanService closed before planning started")
            )
        for fp, future in leftovers:
            if not future.done():
                trace_id = getattr(future, "_repro_trace_id", None)
                self._attach_response(
                    future,
                    PlanResponse(
                        outcome=RESPONSE_ERROR,
                        tier=None,
                        fingerprint=fp,
                        error="PlanService closed before the request completed",
                        trace_id=trace_id,
                    ),
                )
                self.stats.record_error()
                get_metrics().inc("service.errors")
                self._emit(EVENT_RESOLVED, trace_id, outcome=RESPONSE_ERROR)
                future.set_exception(
                    ServiceError("PlanService closed before the request completed")
                )

    def _record_on_completion(
        self,
        future: Future,
        outcome: str,
        start: float,
        trace_id: str | None = None,
        tenant: str | None = None,
    ) -> None:
        def _done(completed: Future) -> None:
            # Failed requests are accounted as errors by the worker, not as
            # outcomes — recording them here too would double-count them and
            # pollute the latency percentiles.
            if completed.cancelled() or completed.exception() is not None:
                return
            latency = time.monotonic() - start
            if trace_id is not None:
                # The coalesced follower resolves with the leader's response:
                # journal its lifecycle close under its *own* trace ID.
                response = self._response_of(completed)
                self._emit(
                    EVENT_RESOLVED,
                    trace_id,
                    tenant=tenant,
                    tier=response.tier if response is not None else None,
                    outcome=(
                        response.outcome
                        if response is not None
                        else RESPONSE_SERVED
                    ),
                )
                self._slo_record(
                    response.outcome if response is not None else RESPONSE_SERVED,
                    latency,
                    tenant,
                )
            self.stats.record(outcome, latency)

        future.add_done_callback(_done)

    def _update_breaker_gauge(self) -> None:
        get_metrics().gauge(
            "service.breaker_state",
            float(self.breaker.state),
            topology=self._topology_label,
        )

    def _worker_loop(self) -> None:
        planner = self._planner_factory()
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            batch: list[_Request] = [item]
            while len(batch) < self.max_batch_size:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _SHUTDOWN:
                    self._queue.put(_SHUTDOWN)  # leave the signal for a peer
                    break
                batch.append(extra)
            if self._cancel_pending:
                for request in batch:
                    self._fail_request(
                        request,
                        ServiceError("PlanService closed before planning started"),
                    )
                continue
            # Group by fingerprint: duplicates that reached the queue (e.g.
            # submitted between a cache eviction and re-planning) are planned
            # once per batch.
            grouped: dict[str, list[_Request]] = {}
            for request in batch:
                grouped.setdefault(request.fingerprint, []).append(request)
            for fp, requests in grouped.items():
                try:
                    self._serve_group(planner, fp, requests)
                except _WorkerCrashed as crash:
                    # Simulated worker death: requeue the crashed group (and
                    # any batch groups not yet served), hand the pool a
                    # replacement thread, and let this one die.
                    served = False
                    for other_fp, other_requests in grouped.items():
                        if other_fp == fp:
                            served = True
                            for request in crash.requests:
                                self._emit(
                                    EVENT_REQUEUED,
                                    request.trace_id,
                                    tenant=request.tenant,
                                    attempt=request.attempt,
                                )
                                self._queue.put(request)
                            continue
                        if served:
                            for request in other_requests:
                                self._emit(
                                    EVENT_REQUEUED,
                                    request.trace_id,
                                    tenant=request.tenant,
                                    attempt=request.attempt,
                                )
                                self._queue.put(request)
                    self._respawn_worker()
                    return

    def _respawn_worker(self) -> None:
        with self._lock:
            if self._closed:
                # No replacement: close() already queued one sentinel per
                # worker; its final sweep resolves whatever was requeued.
                return
            replacement = threading.Thread(
                target=self._worker_loop,
                name=f"plan-worker-respawn-{len(self._workers)}",
                daemon=True,
            )
            self._workers.append(replacement)
        replacement.start()

    # ------------------------------------------------------------- resolution
    def _resolve_group(
        self,
        requests: list[_Request],
        plan: ExecutionPlan,
        tier: str,
        attempts: int,
    ) -> None:
        degraded = tier in (TIER_STALE, TIER_INCREMENTAL, TIER_REFERENCE)
        outcome = OUTCOME_DEGRADED if degraded else OUTCOME_MISS
        response_outcome = RESPONSE_DEGRADED if degraded else RESPONSE_SERVED
        metrics = get_metrics()
        if degraded:
            metrics.inc("service.degraded", tier=tier)
            # One ladder decision per group: journaled once, under the
            # leader's trace ID (per-request tiers land in their resolved
            # events below).
            self._emit(
                EVENT_DEGRADED,
                requests[0].trace_id,
                tenant=requests[0].tenant,
                tier=tier,
                attempt=attempts,
            )
        for request in requests:
            with self._lock:
                if self._inflight.get(request.fingerprint) is request.future:
                    del self._inflight[request.fingerprint]
            self._attach_response(
                request.future,
                PlanResponse(
                    outcome=response_outcome,
                    tier=tier,
                    fingerprint=request.fingerprint,
                    plan=plan,
                    attempts=attempts,
                    trace_id=request.trace_id,
                    tenant=request.tenant,
                ),
            )
            if not request.future.done():
                latency = time.monotonic() - request.submitted_at
                # Resolution is journaled before the future resolves so a
                # blocked serial submitter can't interleave its next
                # request's events ahead of this one's close.
                self._emit(
                    EVENT_RESOLVED,
                    request.trace_id,
                    tenant=request.tenant,
                    tier=tier,
                    attempt=attempts,
                    outcome=response_outcome,
                )
                self._slo_record(response_outcome, latency, request.tenant)
                self.stats.record(outcome, latency)
                request.future.set_result(plan)

    def _fail_request(
        self, request: _Request, exc: Exception, attempts: int = 0
    ) -> None:
        with self._lock:
            if self._inflight.get(request.fingerprint) is request.future:
                del self._inflight[request.fingerprint]
        self._attach_response(
            request.future,
            PlanResponse(
                outcome=RESPONSE_ERROR,
                tier=None,
                fingerprint=request.fingerprint,
                attempts=attempts,
                error=str(exc),
                trace_id=request.trace_id,
                tenant=request.tenant,
            ),
        )
        self.stats.record_error()
        get_metrics().inc("service.errors")
        if not request.future.done():
            self._emit(
                EVENT_RESOLVED,
                request.trace_id,
                tenant=request.tenant,
                attempt=attempts,
                outcome=RESPONSE_ERROR,
            )
            self._slo_record(
                RESPONSE_ERROR,
                time.monotonic() - request.submitted_at,
                request.tenant,
            )
            request.future.set_exception(exc)

    # ----------------------------------------------------------------- solving
    def _serve_group(
        self, planner: ServablePlanner, fp: str, requests: list[_Request]
    ) -> None:
        """Serve one fingerprint group: retries, then the degradation ladder.

        Raises :class:`_WorkerCrashed` (to the worker loop) when an injected
        worker crash is scheduled and retry budget remains; every other path
        resolves all futures of the group.
        """
        tracer = get_tracer()
        metrics = get_metrics()
        primary = requests[0]
        policy = self.resilience
        max_attempts = policy.max_attempts if policy is not None else 1
        last_error: Exception | None = None
        attempt = primary.attempt
        while attempt < max_attempts:
            if primary.past_deadline():
                last_error = last_error or ServiceError(
                    f"deadline exceeded before attempt {attempt}"
                )
                metrics.inc("service.deadline_exceeded")
                break
            if not self.breaker.allow():
                last_error = last_error or ServiceError("circuit breaker open")
                break
            if attempt > 0:
                metrics.inc("service.retries")
                self._emit(
                    EVENT_RETRY,
                    primary.trace_id,
                    tenant=primary.tenant,
                    attempt=attempt,
                )
                if policy is not None:
                    backoff = policy.backoff_seconds(primary.index, attempt)
                    if backoff > 0 and not primary.past_deadline():
                        time.sleep(backoff)
            self._emit(
                EVENT_ATTEMPT,
                primary.trace_id,
                tenant=primary.tenant,
                attempt=attempt,
            )
            try:
                self.injector.on_solve_attempt(
                    primary.index, attempt, trace_id=primary.trace_id
                )
                with tracer.span(
                    "service.solve",
                    category="service",
                    fingerprint=fp[:12],
                    attempt=attempt,
                    trace_id=primary.trace_id,
                ):
                    plan = planner.plan(primary.workload, fingerprint=fp)
            except InjectedWorkerCrash:
                self.breaker.record_failure()
                self._update_breaker_gauge()
                if attempt + 1 < max_attempts:
                    for request in requests:
                        request.attempt = attempt + 1
                    raise _WorkerCrashed(requests)
                last_error = ServiceError(
                    f"worker crashed on final attempt {attempt}"
                )
                attempt += 1
                continue
            except Exception as exc:  # noqa: BLE001 - retried, then degraded
                self.breaker.record_failure()
                self._update_breaker_gauge()
                last_error = exc
                attempt += 1
                continue
            # Success: fill the cache (possibly corrupted by the fault plan —
            # checksums catch that at serve time) and resolve the group.
            self.breaker.record_success()
            self._update_breaker_gauge()
            with tracer.span(
                "service.cache_put", category="service", fingerprint=fp[:12]
            ):
                self.cache.put(fp, plan)
            if self.injector.corrupt_cache_payload(
                primary.index, trace_id=primary.trace_id
            ):
                self.cache.corrupt(fp)
            self._resolve_group(requests, plan, TIER_FRESH, attempts=attempt + 1)
            return
        self._degrade_group(planner, fp, requests, last_error, attempt)

    def _degrade_group(
        self,
        planner: ServablePlanner,
        fp: str,
        requests: list[_Request],
        last_error: Exception | None,
        attempts: int,
    ) -> None:
        """Walk the degradation ladder for a group whose retries ran out."""
        policy = self.resilience
        tracer = get_tracer()
        if policy is None:
            # No resilience configured: surface the planner's own exception
            # (the pre-hardening contract callers and tests rely on).
            error = last_error if last_error is not None else ServiceError(
                "planning failed"
            )
            for request in requests:
                self._fail_request(request, error, attempts=attempts)
            return
        if policy is not None and policy.allow_stale:
            stale = self.cache.get_stale(fp)
            if stale is not None and stale[0] is not None:
                self._resolve_group(requests, stale[0], TIER_STALE, attempts)
                return
        if (
            policy is not None
            and policy.allow_incremental
            and isinstance(planner, IncrementalPlanner)
            and planner.has_retained_plan
        ):
            try:
                with tracer.span(
                    "service.solve",
                    category="service",
                    fingerprint=fp[:12],
                    tier=TIER_INCREMENTAL,
                    trace_id=requests[0].trace_id,
                ):
                    plan = planner.plan(requests[0].workload, fingerprint=fp)
            except Exception as exc:  # noqa: BLE001 - last tier still pending
                last_error = exc
            else:
                self.cache.put(fp, plan)
                self._resolve_group(requests, plan, TIER_INCREMENTAL, attempts)
                return
        if policy is not None and policy.allow_reference:
            try:
                with tracer.span(
                    "service.solve",
                    category="service",
                    fingerprint=fp[:12],
                    tier=TIER_REFERENCE,
                    trace_id=requests[0].trace_id,
                ):
                    plan = self._reference_plan(requests[0].workload, fp)
            except Exception as exc:  # noqa: BLE001 - ladder exhausted
                last_error = exc
            else:
                self.cache.put(fp, plan)
                self._resolve_group(requests, plan, TIER_REFERENCE, attempts)
                return
        error = ServiceError(
            f"planning failed after {attempts} attempt(s) and the degradation "
            f"ladder was exhausted: {last_error}"
        )
        error.__cause__ = last_error
        for request in requests:
            self._fail_request(request, error, attempts=attempts)

    def _reference_plan(self, workload: PlannerInput, fp: str) -> ExecutionPlan:
        """Last-resort solve on the reference-path planner (built lazily)."""
        with self._reference_lock:
            if self._reference_planner is None:
                if self._reference_planner_factory is not None:
                    self._reference_planner = self._reference_planner_factory()
                else:
                    self._reference_planner = ExecutionPlanner(
                        self._prototype.cluster, optimized=False
                    )
            reference = self._reference_planner
        return reference.plan(workload, fingerprint=fp)


class PlanServicePool:
    """One :class:`PlanService` per topology signature, sharing cache + stats.

    Elastic training runs replan whenever the substrate changes, and several
    concurrent jobs on one cluster walk through the *same* derived topologies
    (the same failure produces the same snapshot).  Routing every replan
    through a pool keyed by topology signature gives those jobs:

    * **shared plans** — one fingerprint-keyed :class:`PlanCache` across all
      topologies of the pool, so a substrate one job already planned for is a
      cache hit for every other job;
    * **single-flight replanning** — jobs replanning the same workload on the
      same topology at the same moment coalesce onto one planner run inside
      the topology's service;
    * **curve pooling per substrate** — each service wraps its planner in an
      :class:`~repro.service.incremental.IncrementalPlanner`, so curves warm
      up across successive replans on a recurring topology but never leak
      across topologies;
    * **resilience per substrate** — with a ``resilience`` policy every
      per-topology service gets its own circuit breaker (keyed, therefore,
      by topology signature) while sharing one fault injector and one
      admission-control policy;
    * **durability** — with a ``store`` the shared cache is warm-started
      from the last snapshot at construction and persisted (atomically,
      checksummed) by :meth:`persist` and on :meth:`close`.

    Parameters
    ----------
    planner_factory:
        Builds the :class:`ExecutionPlanner` for a derived topology (same
        contract as the elastic runner's ``planner_factory``).
    cache / stats:
        Shared across every service of the pool; fresh ones are created when
        omitted.
    num_workers / max_batch_size:
        Per-topology service worker-pool configuration.
    resilience / fault_injector:
        Forwarded to every per-topology service.
    store:
        Optional :class:`~repro.service.store.PlanStore`; loaded into the
        shared cache now (``warm_start``) and saved on :meth:`persist` /
        :meth:`close`.
    journal / slo:
        Shared telemetry journal and SLO tracker, forwarded to every
        per-topology service; one :class:`TraceIdGenerator` (seeded with
        ``trace_seed``) is shared pool-wide so trace IDs stay unique across
        topologies.
    """

    def __init__(
        self,
        planner_factory: Callable[[ClusterTopology], ExecutionPlanner],
        *,
        cache: PlanCache | None = None,
        stats: ServiceStats | None = None,
        num_workers: int = 2,
        max_batch_size: int = 8,
        resilience: ResiliencePolicy | None = None,
        fault_injector=None,
        store=None,
        warm_start: bool = True,
        journal: TelemetryJournal | None = None,
        slo=None,
        trace_seed: int = 0,
    ) -> None:
        self.planner_factory = planner_factory
        self.cache = cache if cache is not None else PlanCache(capacity=64)
        self.stats = stats if stats is not None else ServiceStats()
        self.num_workers = num_workers
        self.max_batch_size = max_batch_size
        self.resilience = resilience
        self.fault_injector = fault_injector
        self.store = store
        self.journal = journal
        self.slo = slo
        self.trace_ids = TraceIdGenerator(trace_seed)
        self._services: dict[str, PlanService] = {}
        self._lock = threading.Lock()
        self._closed = False
        self.warm_started = 0
        if store is not None and warm_start:
            self.warm_started = store.load_into(self.cache).loaded

    def service_for(self, topology: ClusterTopology) -> PlanService:
        """The (shared) service planning for ``topology``'s signature."""
        signature = topology.signature()
        with self._lock:
            if self._closed:
                raise ServiceError("PlanServicePool is closed")
            service = self._services.get(signature)
            if service is None:
                service = PlanService(
                    IncrementalPlanner(self.planner_factory(topology)),
                    cache=self.cache,
                    stats=self.stats,
                    num_workers=self.num_workers,
                    max_batch_size=self.max_batch_size,
                    resilience=self.resilience,
                    fault_injector=self.fault_injector,
                    journal=self.journal,
                    slo=self.slo,
                    trace_ids=self.trace_ids,
                )
                self._services[signature] = service
        return service

    @property
    def num_services(self) -> int:
        with self._lock:
            return len(self._services)

    def persist(self) -> bool:
        """Snapshot the shared cache through the store (atomic, checksummed).

        Returns whether a snapshot was written; injected or real persistence
        I/O errors are absorbed (the previous snapshot stays intact) and
        reported as ``False``.
        """
        if self.store is None:
            return False
        try:
            self.store.save(self.cache)
        except OSError:
            return False
        return True

    def close(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Shut every per-topology service down (persisting first)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            services = list(self._services.values())
        self.persist()
        for service in services:
            service.close(wait=wait, cancel_pending=cancel_pending)

    def __enter__(self) -> "PlanServicePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
