"""Deterministic fault injection for the planning service.

Faults are an ordered, seeded event stream (:class:`FaultPlan`) applied at
fixed hook points by a :class:`FaultInjector` — same seed, same schedule,
same injections, byte-identical canonical reports.  See
``docs/resilience.md`` for the fault kinds, the service's recovery policies
and the determinism rules.
"""

from repro.faults.injection import (
    NULL_INJECTOR,
    FaultInjector,
    InjectedFault,
    InjectedPersistError,
    InjectedPlannerError,
    InjectedWorkerCrash,
    NullInjector,
)
from repro.faults.plan import (
    CACHE_CORRUPTION,
    FAULT_KINDS,
    FAULT_PROFILES,
    PERSIST_ERROR,
    PLANNER_ERROR,
    SLOW_SOLVE,
    WORKER_CRASH,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    FaultProfile,
)

__all__ = [
    "CACHE_CORRUPTION",
    "FAULT_KINDS",
    "FAULT_PROFILES",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultProfile",
    "InjectedFault",
    "InjectedPersistError",
    "InjectedPlannerError",
    "InjectedWorkerCrash",
    "NULL_INJECTOR",
    "NullInjector",
    "PERSIST_ERROR",
    "PLANNER_ERROR",
    "SLOW_SOLVE",
    "WORKER_CRASH",
]
