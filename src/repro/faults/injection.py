"""Fault injection hooks threaded through the planning service.

A :class:`FaultInjector` binds a :class:`~repro.faults.plan.FaultPlan` to a
running service.  The service calls the injector at well-defined hook points
(request admission, each solve attempt, cache fill, store save); the injector
consults the schedule and either lets the operation proceed, stalls it, or
raises one of the :class:`InjectedFault` exception types.  Every injection is
counted — in the injector (for canonical reports) and in the shared obs
registry as ``service.faults{kind=...}`` — and, when a
:class:`~repro.obs.telemetry.TelemetryJournal` is attached, journaled as a
``fault.injected`` event carrying the trace ID of the request it hit
(persist faults are store-scoped and journal with no trace ID), so the
chaos-report fault census can be cross-checked against
:func:`~repro.obs.telemetry.reconstruct_requests`.

The injector holds no randomness of its own: all nondeterminism lives in the
pre-drawn schedule, so identical schedules drive identical injections.  The
only mutable state is the pair of ordinal counters (request index, store-save
index), both assigned under a lock in arrival order — deterministic whenever
requests are submitted from one thread, which is how the resilience benchmark
and the fuzz suite drive it.

``sleeper`` is injectable so tests can replay slow-solve schedules without
real stalls.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.faults.plan import (
    CACHE_CORRUPTION,
    FAULT_KINDS,
    PERSIST_ERROR,
    PLANNER_ERROR,
    SLOW_SOLVE,
    WORKER_CRASH,
    FaultPlan,
)
from repro.obs import get_metrics


class InjectedFault(Exception):
    """Base class of all injected failures (never raised by real bugs)."""


class InjectedPlannerError(InjectedFault):
    """A scheduled planner exception: the solve attempt raises."""


class InjectedWorkerCrash(InjectedFault):
    """A scheduled worker death: the thread running the solve must die."""


class InjectedPersistError(InjectedFault, OSError):
    """A scheduled persistence I/O failure during a plan-store save."""


class FaultInjector:
    """Applies a :class:`FaultPlan` at the service's injection hook points."""

    def __init__(
        self,
        plan: FaultPlan,
        *,
        sleeper: Callable[[float], None] = time.sleep,
        journal=None,
    ) -> None:
        self.plan = plan
        self.journal = journal
        self._sleeper = sleeper
        self._lock = threading.Lock()
        self._next_request_index = 0
        self._next_save_index = 0
        self._counts: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    # ------------------------------------------------------------- ordinals
    def assign_index(self) -> int:
        """Ordinal of the next admitted request (arrival order)."""
        with self._lock:
            index = self._next_request_index
            self._next_request_index += 1
            return index

    # ----------------------------------------------------------- hook points
    def on_solve_attempt(
        self, index: int, attempt: int, *, trace_id: str | None = None
    ) -> None:
        """Called at the top of solve attempt ``attempt`` of request ``index``.

        Applies the scheduled stall, then raises the scheduled failure for
        this attempt (worker crash before planner error), if any.
        """
        delay = self.plan.delay_for(index)
        if attempt == 0 and delay > 0:
            self._count(SLOW_SOLVE, trace_id=trace_id, attempt=attempt)
            self._sleeper(delay)
        kind = self.plan.failing_kind(index, attempt)
        if kind == WORKER_CRASH:
            self._count(WORKER_CRASH, trace_id=trace_id, attempt=attempt)
            raise InjectedWorkerCrash(
                f"injected worker crash (request {index}, attempt {attempt})"
            )
        if kind == PLANNER_ERROR:
            self._count(PLANNER_ERROR, trace_id=trace_id, attempt=attempt)
            raise InjectedPlannerError(
                f"injected planner error (request {index}, attempt {attempt})"
            )

    def corrupt_cache_payload(
        self, index: int, *, trace_id: str | None = None
    ) -> bool:
        """Whether the payload cached for request ``index`` gets corrupted."""
        if self.plan.corrupts_cache(index):
            self._count(CACHE_CORRUPTION, trace_id=trace_id)
            return True
        return False

    def on_persist(self) -> None:
        """Called once per plan-store save; raises when the save is doomed."""
        with self._lock:
            save_index = self._next_save_index
            self._next_save_index += 1
        if self.plan.persist_fails(save_index):
            self._count(PERSIST_ERROR)
            raise InjectedPersistError(
                f"injected persistence I/O error (save {save_index})"
            )

    # -------------------------------------------------------------- counters
    def counts(self) -> dict[str, int]:
        """Injections applied so far, per fault kind (deterministic)."""
        with self._lock:
            return dict(self._counts)

    @property
    def total_injected(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def _count(
        self,
        kind: str,
        *,
        trace_id: str | None = None,
        attempt: int | None = None,
    ) -> None:
        with self._lock:
            self._counts[kind] += 1
        get_metrics().inc("service.faults", kind=kind)
        if self.journal is not None:
            self.journal.emit(
                "fault.injected",
                trace_id,
                fault=kind,
                attempt=attempt,
            )


class NullInjector:
    """No-op injector: the fault-free service path, hook-compatible."""

    journal = None

    def assign_index(self) -> int:
        return -1

    def on_solve_attempt(
        self, index: int, attempt: int, *, trace_id: str | None = None
    ) -> None:
        return None

    def corrupt_cache_payload(
        self, index: int, *, trace_id: str | None = None
    ) -> bool:
        return False

    def on_persist(self) -> None:
        return None

    def counts(self) -> dict[str, int]:
        return {kind: 0 for kind in FAULT_KINDS}

    @property
    def total_injected(self) -> int:
        return 0


#: Shared no-op injector used wherever no fault plan is configured.
NULL_INJECTOR = NullInjector()
