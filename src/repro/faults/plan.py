"""Deterministic fault schedules: seeded, canonical, replayable.

Following the operational-event framing of the unified timeline (ordered
event streams applied atomically to runtime state), a fault campaign against
the planning service is expressed as data, not as ambient randomness: a
:class:`FaultPlan` is the full, pre-drawn schedule of every fault the service
will experience, generated once from ``(profile, num_requests, seed)``.  The
injector (:mod:`repro.faults.injection`) only *reads* the schedule, so

* the same seed produces the same schedule, byte for byte
  (:meth:`FaultPlan.canonical_dict` / :meth:`FaultPlan.signature`),
* two service runs against the same schedule make identical injection
  decisions at identical points, which is what lets the resilience benchmark
  gate its canonical report at 0.0% drift,
* a failing chaos run is reproducible from nothing but the profile name and
  the seed (``repro serve-bench --fault-profile chaos --fault-seed N``).

Fault kinds
-----------
``worker_crash``
    The worker thread planning the request dies mid-solve; the service must
    respawn the worker and retry the request on another attempt.
``planner_error``
    The solve raises; retried with backoff, then degraded.
``slow_solve``
    The solve stalls for ``delay_seconds`` before proceeding (deadline and
    latency-percentile fodder).
``cache_corruption``
    The serialized payload cached for the request is corrupted after
    insertion; checksum verification must quarantine it instead of serving
    corrupt bytes.
``persist_error``
    A plan-store snapshot write fails mid-operation; the previous snapshot
    on disk must stay intact.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Any, Iterable, Mapping


def _hash_document(document: Any) -> str:
    """SHA-256 of a JSON document (stdlib twin of service.fingerprint's
    ``hash_document``; duplicated here so ``repro.faults`` never imports the
    service package it is injected into)."""
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()

#: Fault kinds injectable into the planning service.
WORKER_CRASH = "worker_crash"
PLANNER_ERROR = "planner_error"
SLOW_SOLVE = "slow_solve"
CACHE_CORRUPTION = "cache_corruption"
PERSIST_ERROR = "persist_error"

#: Draw order of the per-request fault kinds.  Fixed: the schedule is a pure
#: function of (profile, num_requests, seed) only because every generation
#: consumes the RNG stream in exactly this order.
FAULT_KINDS = (
    WORKER_CRASH,
    PLANNER_ERROR,
    SLOW_SOLVE,
    CACHE_CORRUPTION,
    PERSIST_ERROR,
)


class FaultPlanError(ValueError):
    """Raised for invalid fault profiles or schedules."""


@dataclass(frozen=True)
class FaultProfile:
    """Per-kind fault rates a schedule is drawn from.

    Rates are per request (``persist_error_rate`` is per store *save*).  A
    faulty request fails ``1..max_fail_attempts`` consecutive solve attempts
    before succeeding, so whether the service recovers via retry or via the
    degradation ladder depends on its ``max_attempts`` policy knob.
    """

    name: str
    worker_crash_rate: float = 0.0
    planner_error_rate: float = 0.0
    slow_solve_rate: float = 0.0
    slow_solve_seconds: float = 0.02
    cache_corruption_rate: float = 0.0
    persist_error_rate: float = 0.0
    max_fail_attempts: int = 2

    def __post_init__(self) -> None:
        for field_name in (
            "worker_crash_rate",
            "planner_error_rate",
            "slow_solve_rate",
            "cache_corruption_rate",
            "persist_error_rate",
        ):
            rate = getattr(self, field_name)
            if not 0.0 <= rate <= 1.0:
                raise FaultPlanError(f"{field_name} must be in [0, 1], got {rate}")
        if self.slow_solve_seconds < 0:
            raise FaultPlanError("slow_solve_seconds must be non-negative")
        if self.max_fail_attempts < 1:
            raise FaultPlanError("max_fail_attempts must be at least 1")

    def canonical_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "worker_crash_rate": self.worker_crash_rate,
            "planner_error_rate": self.planner_error_rate,
            "slow_solve_rate": self.slow_solve_rate,
            "slow_solve_seconds": self.slow_solve_seconds,
            "cache_corruption_rate": self.cache_corruption_rate,
            "persist_error_rate": self.persist_error_rate,
            "max_fail_attempts": self.max_fail_attempts,
        }


#: Named profiles selectable from the CLI and the benchmarks.  ``chaos`` is
#: the acceptance profile: >=10% worker crashes, >=5% cache corruption and
#: injected slow solves, which the resilience benchmark must absorb with
#: 100% availability.
FAULT_PROFILES: dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "mild": FaultProfile(
        name="mild",
        worker_crash_rate=0.05,
        planner_error_rate=0.05,
        slow_solve_rate=0.05,
        slow_solve_seconds=0.01,
        cache_corruption_rate=0.02,
        persist_error_rate=0.05,
        max_fail_attempts=1,
    ),
    "chaos": FaultProfile(
        name="chaos",
        worker_crash_rate=0.15,
        planner_error_rate=0.15,
        slow_solve_rate=0.10,
        slow_solve_seconds=0.02,
        cache_corruption_rate=0.08,
        persist_error_rate=0.25,
        max_fail_attempts=3,
    ),
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``index`` is the ordinal of the request (assigned at submission) or, for
    ``persist_error``, of the store save operation the event applies to.
    ``attempts`` is how many consecutive solve attempts the fault sinks
    (crash/error kinds); ``delay_seconds`` is the injected stall
    (``slow_solve`` only).
    """

    index: int
    kind: str
    attempts: int = 1
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(f"Unknown fault kind {self.kind!r}")
        if self.index < 0:
            raise FaultPlanError("FaultEvent.index must be non-negative")
        if self.attempts < 1:
            raise FaultPlanError("FaultEvent.attempts must be at least 1")
        if self.delay_seconds < 0:
            raise FaultPlanError("FaultEvent.delay_seconds must be non-negative")

    def canonical_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "attempts": self.attempts,
            "delay_seconds": self.delay_seconds,
        }


class FaultPlan:
    """An ordered, seeded schedule of fault events.

    Request-scoped events (``worker_crash``, ``planner_error``,
    ``slow_solve``, ``cache_corruption``) key on the request ordinal;
    ``persist_error`` events key on the store-save ordinal.  Generation draws
    the kinds in :data:`FAULT_KINDS` order per index, so identical inputs
    produce identical schedules.
    """

    def __init__(
        self,
        events: Iterable[FaultEvent] = (),
        *,
        profile: FaultProfile | None = None,
        seed: int = 0,
        num_requests: int = 0,
    ) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.index, FAULT_KINDS.index(e.kind)))
        )
        self.profile = profile
        self.seed = seed
        self.num_requests = num_requests
        self._by_request: dict[int, dict[str, FaultEvent]] = {}
        self._persist: dict[int, FaultEvent] = {}
        for event in self.events:
            if event.kind == PERSIST_ERROR:
                self._persist[event.index] = event
            else:
                self._by_request.setdefault(event.index, {})[event.kind] = event

    # ------------------------------------------------------------ generation
    @classmethod
    def generate(
        cls,
        profile: FaultProfile,
        num_requests: int,
        seed: int = 0,
        *,
        num_persist_ops: int = 8,
    ) -> "FaultPlan":
        """Draw one schedule; a pure function of its three arguments."""
        if num_requests < 0:
            raise FaultPlanError("num_requests must be non-negative")
        rng = random.Random(f"{seed}:{profile.name}:{num_requests}")
        events: list[FaultEvent] = []
        for index in range(num_requests):
            if rng.random() < profile.worker_crash_rate:
                events.append(
                    FaultEvent(
                        index=index,
                        kind=WORKER_CRASH,
                        attempts=rng.randint(1, profile.max_fail_attempts),
                    )
                )
            if rng.random() < profile.planner_error_rate:
                events.append(
                    FaultEvent(
                        index=index,
                        kind=PLANNER_ERROR,
                        attempts=rng.randint(1, profile.max_fail_attempts),
                    )
                )
            if rng.random() < profile.slow_solve_rate:
                events.append(
                    FaultEvent(
                        index=index,
                        kind=SLOW_SOLVE,
                        delay_seconds=round(
                            profile.slow_solve_seconds * (0.5 + rng.random()), 6
                        ),
                    )
                )
            if rng.random() < profile.cache_corruption_rate:
                events.append(FaultEvent(index=index, kind=CACHE_CORRUPTION))
        for index in range(num_persist_ops):
            if rng.random() < profile.persist_error_rate:
                events.append(FaultEvent(index=index, kind=PERSIST_ERROR))
        return cls(
            events, profile=profile, seed=seed, num_requests=num_requests
        )

    # --------------------------------------------------------------- lookups
    def events_for(self, index: int) -> Mapping[str, FaultEvent]:
        """Request-scoped events scheduled for request ordinal ``index``."""
        return self._by_request.get(index, {})

    def fail_attempts(self, index: int) -> int:
        """How many consecutive solve attempts of request ``index`` fail."""
        total = 0
        for kind in (WORKER_CRASH, PLANNER_ERROR):
            event = self._by_request.get(index, {}).get(kind)
            if event is not None:
                total += event.attempts
        return total

    def failing_kind(self, index: int, attempt: int) -> str | None:
        """The fault kind sinking ``attempt`` of request ``index``, if any.

        Crash attempts are scheduled before error attempts; ``None`` means the
        attempt proceeds (possibly slowly — see :meth:`delay_for`).
        """
        scheduled = self._by_request.get(index, {})
        crash = scheduled.get(WORKER_CRASH)
        crash_attempts = crash.attempts if crash is not None else 0
        if attempt < crash_attempts:
            return WORKER_CRASH
        error = scheduled.get(PLANNER_ERROR)
        if error is not None and attempt < crash_attempts + error.attempts:
            return PLANNER_ERROR
        return None

    def delay_for(self, index: int) -> float:
        event = self._by_request.get(index, {}).get(SLOW_SOLVE)
        return event.delay_seconds if event is not None else 0.0

    def corrupts_cache(self, index: int) -> bool:
        return CACHE_CORRUPTION in self._by_request.get(index, {})

    def persist_fails(self, save_index: int) -> bool:
        return save_index in self._persist

    # -------------------------------------------------------------- identity
    def canonical_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "num_requests": self.num_requests,
            "profile": (
                self.profile.canonical_dict() if self.profile is not None else None
            ),
            "events": [event.canonical_dict() for event in self.events],
        }

    def signature(self) -> str:
        """Content hash of the schedule (stable across runs and processes)."""
        return _hash_document(self.canonical_dict())

    def __len__(self) -> int:
        return len(self.events)
