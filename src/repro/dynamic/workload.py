"""Dynamic multi-task workloads: task arrival and departure (Appendix D).

MT MM training workloads change over time — tasks with little data exit early,
new tasks join partway through training.  Appendix D simulates this by
altering the training task set at fixed points; each system re-plans (Spindle
regenerates its execution plan, paying the planner cost) and continues
training.  The runner below reproduces that methodology and yields the
cumulative training-time curves of Fig. 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.baselines.base import TrainingSystem
from repro.graph.task import SpindleTask
from repro.service.cache import PlanCache


class DynamicWorkloadError(Exception):
    """Raised for malformed dynamic workload schedules."""


@dataclass(frozen=True)
class WorkloadPhase:
    """A contiguous stretch of training with a fixed task set."""

    name: str
    task_names: tuple[str, ...]
    num_iterations: int

    def __post_init__(self) -> None:
        if not self.task_names:
            raise DynamicWorkloadError(f"Phase {self.name!r} has no tasks")
        if self.num_iterations <= 0:
            raise DynamicWorkloadError(
                f"Phase {self.name!r} must run at least one iteration"
            )


@dataclass
class DynamicWorkloadSchedule:
    """A task pool and the sequence of phases drawn from it."""

    task_pool: dict[str, SpindleTask]
    phases: list[WorkloadPhase] = field(default_factory=list)

    @classmethod
    def from_tasks(
        cls, tasks: Sequence[SpindleTask], phases: Sequence[tuple[Sequence[str], int]]
    ) -> "DynamicWorkloadSchedule":
        """Build a schedule from ``(task_names, num_iterations)`` pairs."""
        pool = {task.name: task for task in tasks}
        schedule = cls(task_pool=pool)
        for index, (names, iterations) in enumerate(phases):
            schedule.add_phase(f"phase{index}", names, iterations)
        return schedule

    def add_phase(
        self, name: str, task_names: Sequence[str], num_iterations: int
    ) -> WorkloadPhase:
        unknown = [n for n in task_names if n not in self.task_pool]
        if unknown:
            raise DynamicWorkloadError(f"Unknown tasks in phase {name!r}: {unknown}")
        phase = WorkloadPhase(
            name=name, task_names=tuple(task_names), num_iterations=num_iterations
        )
        self.phases.append(phase)
        return phase

    def tasks_for(self, phase: WorkloadPhase) -> list[SpindleTask]:
        return [self.task_pool[name] for name in phase.task_names]

    @property
    def total_iterations(self) -> int:
        return sum(p.num_iterations for p in self.phases)

    def phase_boundaries(self) -> list[tuple[int, WorkloadPhase]]:
        """``(start_iteration, phase)`` pairs, in schedule order.

        The first phase starts at iteration 0; each subsequent phase starts
        where its predecessor ends.  This is the hand-off point to the unified
        runtime: :meth:`repro.unified.UnifiedScenario.from_dynamic` turns
        every boundary after the first into a ``phase_change`` workload event
        at exactly this iteration.
        """
        boundaries = []
        start = 0
        for phase in self.phases:
            boundaries.append((start, phase))
            start += phase.num_iterations
        return boundaries


@dataclass
class PhaseResult:
    """Outcome of one phase for one system."""

    phase: WorkloadPhase
    iteration_time: float
    replanning_seconds: float

    @property
    def phase_time(self) -> float:
        return self.replanning_seconds + self.iteration_time * self.phase.num_iterations


@dataclass
class DynamicRunResult:
    """Total-training-time curve of one system on a dynamic workload."""

    system_name: str
    phase_results: list[PhaseResult] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(p.phase_time for p in self.phase_results)

    def cumulative_curve(self) -> list[tuple[int, float]]:
        """``(cumulative_iterations, cumulative_time)`` points, one per phase."""
        curve = []
        iterations = 0
        elapsed = 0.0
        for result in self.phase_results:
            iterations += result.phase.num_iterations
            elapsed += result.phase_time
            curve.append((iterations, elapsed))
        return curve


class DynamicWorkloadRunner:
    """Runs a system through a dynamic workload schedule, re-planning per phase.

    Re-planning cost is only charged at phase boundaries where the task set
    actually changed: a system keeps using its current plan — and therefore
    its current iteration time — across phases with an identical task set, so
    the simulation does not re-run (or re-plan) such phases at all.

    With a ``plan_cache``, systems that support cached planning (an attachable
    ``plan_cache`` attribute, i.e. Spindle) additionally skip re-planning for
    any *previously seen* task set — the recurring-phase pattern of Fig. 13 —
    paying the planner cost only on first encounter.
    """

    def __init__(
        self,
        schedule: DynamicWorkloadSchedule,
        plan_cache: PlanCache | None = None,
    ) -> None:
        if not schedule.phases:
            raise DynamicWorkloadError("Schedule has no phases")
        self.schedule = schedule
        self.plan_cache = plan_cache

    def run(self, system: TrainingSystem) -> DynamicRunResult:
        attach_cache = self.plan_cache is not None and hasattr(system, "plan_cache")
        previous_cache = getattr(system, "plan_cache", None) if attach_cache else None
        if attach_cache:
            system.plan_cache = self.plan_cache
        try:
            return self._run(system)
        finally:
            if attach_cache:
                system.plan_cache = previous_cache

    def _run(self, system: TrainingSystem) -> DynamicRunResult:
        result = DynamicRunResult(system_name=system.name)
        previous_task_set: frozenset[str] | None = None
        for phase in self.schedule.phases:
            task_set = frozenset(phase.task_names)
            changed = previous_task_set is None or task_set != previous_task_set
            previous_task_set = task_set
            if changed:
                iteration = system.run_iteration(self.schedule.tasks_for(phase))
                iteration_time = iteration.iteration_time
                replanning = system.last_planning_seconds
            else:
                # Identical task set: the system keeps its current plan, so
                # the previous phase's iteration time carries over and no
                # re-planning cost is paid.
                iteration_time = result.phase_results[-1].iteration_time
                replanning = 0.0
            result.phase_results.append(
                PhaseResult(
                    phase=phase,
                    iteration_time=iteration_time,
                    replanning_seconds=replanning,
                )
            )
        return result

    def run_all(self, systems: Sequence[TrainingSystem]) -> dict[str, DynamicRunResult]:
        return {system.name: self.run(system) for system in systems}
