"""Dynamic multi-task workloads (task arrival/exit) and their runner."""

from repro.dynamic.workload import (
    DynamicRunResult,
    DynamicWorkloadError,
    DynamicWorkloadRunner,
    DynamicWorkloadSchedule,
    PhaseResult,
    WorkloadPhase,
)

__all__ = [
    "DynamicRunResult",
    "DynamicWorkloadError",
    "DynamicWorkloadRunner",
    "DynamicWorkloadSchedule",
    "PhaseResult",
    "WorkloadPhase",
]
