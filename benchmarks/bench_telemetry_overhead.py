"""Request-scoped telemetry overhead on the plan service hot path.

Runs the shared :func:`~repro.experiments.harness.run_service_benchmark`
protocol twice on the same request stream — once bare, once with the full
telemetry stack attached (a :class:`~repro.obs.TelemetryJournal`, an
:class:`~repro.obs.SloTracker` and per-request tenant labels) — and gates
the ratio of the two service wall-clock times.  Journaling a request is a
handful of dict writes under a lock, so the instrumented run must stay
within 5% of the bare one (the committed baseline holds the measured
ratio; the gate is the drift against it).

Both sides are timed ``REPEATS`` times interleaved and compared min-to-min,
which strips scheduler noise without hiding systematic overhead.  The
correctness side rides along as hard invariants: the journal must account
for every request (submitted *and* resolved), never drop an event, and the
SLO window must have recorded exactly one sample per request.
"""

from bench_utils import emit

from repro.bench import Metric, informational, invariant, register_benchmark
from repro.experiments.harness import run_service_benchmark
from repro.experiments.reporting import format_table
from repro.experiments.workloads import clip_workload
from repro.obs import SloTracker, TelemetryJournal, attribution_report

NUM_REQUESTS = 96
NUM_UNIQUE = 6
NUM_TENANTS = 3
REPEATS = 5


@register_benchmark(
    "telemetry_overhead",
    figure=None,
    stage="service",
    tags=("service", "obs", "smoke"),
    description="Telemetry (journal + SLO tracking) overhead on the plan service",
)
def bench_telemetry_overhead(ctx):
    workload = clip_workload(4, 8)
    ctx.tasks(workload)  # record the workload fingerprint for the result

    def bare():
        return run_service_benchmark(
            workload, num_requests=NUM_REQUESTS, num_unique=NUM_UNIQUE
        )

    def instrumented():
        journal = TelemetryJournal()
        slo = SloTracker()
        result = run_service_benchmark(
            workload,
            num_requests=NUM_REQUESTS,
            num_unique=NUM_UNIQUE,
            journal=journal,
            slo=slo,
            num_tenants=NUM_TENANTS,
        )
        return result, journal, slo

    bare_seconds = []
    instrumented_seconds = []
    journal = slo = None
    for _ in range(REPEATS):
        bare_seconds.append(bare().service_seconds)
        result, journal, slo = instrumented()
        instrumented_seconds.append(result.service_seconds)

    best_bare = min(bare_seconds)
    best_instrumented = min(instrumented_seconds)
    overhead = best_instrumented / best_bare if best_bare > 0 else 1.0

    report = attribution_report(journal.events())
    emit(
        "telemetry_overhead",
        format_table(
            ["metric", "value"],
            [
                ["bare service", f"{best_bare * 1e3:.2f} ms"],
                ["instrumented service", f"{best_instrumented * 1e3:.2f} ms"],
                ["overhead", f"{overhead:.3f}x"],
                ["journal events", str(report["events"])],
                [
                    "lifecycles",
                    f"{report['complete']}/{report['requests']} complete",
                ],
            ],
            title=f"telemetry overhead, {workload.describe()}",
        ),
    )

    slo_report = slo.report()
    return {
        # The tentpole gate: instrumented wall-clock over bare wall-clock.
        # Gated at 5% drift against the committed baseline (~1.0).
        "overhead_ratio": Metric(
            value=overhead, unit="x", regression_threshold=0.05
        ),
        # Every submitted request must open and close a journal lifecycle,
        # with nothing dropped and exactly one SLO sample per request.
        "journaled_requests": invariant(float(report["requests"]), "req"),
        "attribution_complete_rate": invariant(
            report["complete"] / report["requests"] if report["requests"] else 0.0,
            "fraction",
        ),
        "journal_dropped": invariant(float(journal.dropped), ""),
        "slo_samples": invariant(float(slo_report.count), "req"),
        "slo_availability": invariant(slo_report.availability, "fraction"),
        "bare_seconds": informational(best_bare, "s"),
        "instrumented_seconds": informational(best_instrumented, "s"),
        "journal_events": informational(float(report["events"]), ""),
    }
