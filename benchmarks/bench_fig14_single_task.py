"""Fig. 14 (Appendix F): single-task multi-modal comparison.

Runs the 1-task Multitask-CLIP workload on 8/16/32 GPUs.  Even without
inter-task scheduling opportunities, Spindle's operator-level allocation beats
the SOTA systems, and DistMM-MT (designed exactly for this case) comes close
to Spindle.
"""

import pytest

from bench_utils import (
    FIG8_SYSTEMS,
    cached_comparison,
    comparison_metrics,
    comparison_table,
    emit,
)

from repro.bench import register_benchmark
from repro.experiments.harness import run_comparison
from repro.experiments.workloads import FIG14_WORKLOADS


@register_benchmark(
    "fig14_single_task",
    figure="fig14",
    stage="simulation",
    tags=("figure", "single-task", "smoke"),
    description="Single-task multi-modal comparison (CLIP, 1 task, 16 GPUs)",
)
def bench_fig14_single_task(ctx):
    comparison = cached_comparison(ctx, FIG14_WORKLOADS[1])
    return comparison_metrics(
        comparison, systems=("spindle", "distmm-mt", "deepspeed")
    )


@pytest.mark.parametrize("workload", FIG14_WORKLOADS, ids=lambda w: w.name)
def test_fig14_single_task_multimodal(benchmark, workload):
    comparison = benchmark.pedantic(
        lambda: run_comparison(workload, systems=FIG8_SYSTEMS), rounds=1, iterations=1
    )
    emit(
        f"fig14_{workload.name}",
        comparison_table(comparison, f"Fig. 14: single-task MM, {workload.describe()}"),
    )

    # Spindle and DistMM-MT (which is designed for single-task MM workloads)
    # lead the comparison and perform similarly, as observed in Appendix F.
    assert comparison.best_system in ("spindle", "distmm-mt")
    assert comparison.speedup("spindle") > 1.0
    assert comparison.speedup("distmm-mt") > 1.0
    assert comparison.speedup("spindle") >= 0.93 * comparison.speedup(
        comparison.best_system
    )
    # Both beat the task-level and SOTA baselines.
    assert comparison.speedup("spindle") >= comparison.speedup("megatron-lm")
