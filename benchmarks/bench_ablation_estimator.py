"""Ablation: piecewise alpha-beta estimation (§3.2) vs a single-piece fit.

The paper argues that a single alpha-beta curve (as used by homogeneous-model
planners) misfits heterogeneous MT MM workloads.  The ablation fits each
MetaOp's curve through only the two endpoint measurements (1 GPU and the full
cluster) and measures the resulting estimation error against ground truth,
compared with the piecewise fit through all profiled points.
"""

from bench_utils import emit

from repro.cluster.topology import make_cluster
from repro.core.contraction import contract_graph
from repro.core.estimator import ScalabilityEstimator, ScalingCurve
from repro.costmodel.profiler import SyntheticProfiler
from repro.experiments.reporting import format_table
from repro.graph.builder import build_unified_graph
from repro.models.multitask_clip import multitask_clip_tasks

from repro.bench import Metric, register_benchmark

EVALUATION_POINTS = (2, 4, 8, 16, 24)


@register_benchmark(
    "ablation_estimator",
    figure="ablation",
    stage="costmodel",
    tags=("ablation", "estimator", "smoke"),
    description="Piecewise alpha-beta estimation vs a single-piece fit",
)
def bench_ablation_estimator(ctx):
    piecewise_error, single_error = _estimation_errors()
    return {
        "piecewise_error": Metric(piecewise_error, "fraction"),
        "single_piece_error": Metric(
            single_error, "fraction", regression_threshold=None
        ),
        "error_inflation": Metric(
            single_error / piecewise_error, "x", higher_is_better=True
        ),
    }


def _estimation_errors():
    cluster = make_cluster(32)
    profiler = SyntheticProfiler(cluster)
    metagraph = contract_graph(build_unified_graph(multitask_clip_tasks(4)))

    piecewise = ScalabilityEstimator(profiler).estimate(metagraph)
    single_piece = {
        index: ScalingCurve(
            profiler.profile_operator(metaop.representative, points=[1, 32])
        )
        for index, metaop in metagraph.metaops.items()
    }

    def mean_error(curves):
        errors = []
        for index, metaop in metagraph.metaops.items():
            for n in EVALUATION_POINTS:
                if metaop.batch_size % n != 0 and n % metaop.batch_size != 0:
                    continue
                truth = profiler.timing_model.operator_time(metaop.representative, n)
                errors.append(abs(curves[index].time(n) - truth) / truth)
        return sum(errors) / len(errors)

    return mean_error(piecewise), mean_error(single_piece)


def test_ablation_piecewise_estimator(benchmark):
    piecewise_error, single_error = benchmark.pedantic(
        _estimation_errors, rounds=1, iterations=1
    )
    emit(
        "ablation_estimator",
        format_table(
            ["estimator", "mean relative error at valid allocations"],
            [
                ["piecewise alpha-beta (Spindle)", f"{piecewise_error * 100:.1f}%"],
                ["single-piece alpha-beta", f"{single_error * 100:.1f}%"],
            ],
            title="Ablation: scalability estimator accuracy",
        ),
    )
    assert piecewise_error < single_error
    assert piecewise_error < 0.05
