"""Fig. 11: optimality analysis of the Spindle execution planner.

Compares the compute makespan achieved by Spindle's discrete plan with the
theoretical optimum C* of the continuous MPSP relaxation (Theorem 1) for
Multitask-CLIP with {4, 7, 10} tasks on 16 and 32 GPUs.  The paper reports a
deviation consistently below 7%; the simulated substrate stays within a
comparable, small band.
"""

import pytest

from bench_utils import emit

from repro.bench import Metric, register_benchmark
from repro.experiments.harness import run_single_system
from repro.experiments.reporting import format_table
from repro.experiments.workloads import FIG11_WORKLOADS


def _optimality_gap(workload, tasks=None, cluster=None):
    system, result = run_single_system(
        workload, "spindle", tasks=tasks, cluster=cluster
    )
    optimum = system.last_plan.theoretical_optimum
    achieved = result.breakdown.forward_backward
    return optimum, achieved, achieved / optimum - 1.0


@register_benchmark(
    "fig11_optimality",
    figure="fig11",
    stage="planning",
    tags=("figure", "optimality", "smoke"),
    description="Deviation of the discrete plan from the continuous optimum C*",
)
def bench_fig11_optimality(ctx):
    gaps = []
    for workload in FIG11_WORKLOADS:
        _, _, gap = _optimality_gap(
            workload, tasks=ctx.tasks(workload), cluster=ctx.cluster(workload)
        )
        gaps.append(gap)
    return {
        "mean_gap": Metric(sum(gaps) / len(gaps), "fraction"),
        "max_gap": Metric(max(gaps), "fraction"),
    }


@pytest.mark.parametrize("workload", FIG11_WORKLOADS, ids=lambda w: w.name)
def test_fig11_optimality_gap(benchmark, workload, once_per_session_cache):
    cache = once_per_session_cache
    system, result = benchmark.pedantic(
        lambda: run_single_system(
            workload,
            "spindle",
            tasks=cache.tasks(workload),
            cluster=cache.cluster(workload),
        ),
        rounds=1,
        iterations=1,
    )
    optimum = system.last_plan.theoretical_optimum
    achieved = result.breakdown.forward_backward
    gap = achieved / optimum - 1.0

    emit(
        f"fig11_{workload.name}",
        format_table(
            ["workload", "theoretical optimum C* (ms)", "Spindle fwd&bwd (ms)", "gap"],
            [[workload.name, f"{optimum * 1e3:.1f}", f"{achieved * 1e3:.1f}", f"{gap * 100:.1f}%"]],
            title="Fig. 11: optimality of the execution planner",
        ),
    )

    # The discrete plan can never beat the relaxation by more than estimation
    # noise, and stays within a modest band above it.
    assert achieved >= optimum * 0.92
    assert gap <= 0.35


def test_fig11_aggregate_table(benchmark, once_per_session_cache):
    cache = once_per_session_cache
    first = FIG11_WORKLOADS[0]
    benchmark.pedantic(
        lambda: run_single_system(
            first, "spindle", tasks=cache.tasks(first), cluster=cache.cluster(first)
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    gaps = []
    for workload in FIG11_WORKLOADS:
        optimum, achieved, gap = _optimality_gap(
            workload, tasks=cache.tasks(workload), cluster=cache.cluster(workload)
        )
        gaps.append(gap)
        rows.append(
            [
                workload.name,
                f"{optimum * 1e3:.1f}",
                f"{achieved * 1e3:.1f}",
                f"{gap * 100:+.1f}%",
            ]
        )
    emit(
        "fig11_optimality_summary",
        format_table(
            ["workload", "C* (ms)", "Spindle (ms)", "deviation"],
            rows,
            title="Fig. 11: deviation from the theoretical optimum",
        ),
    )
    # The average deviation over the grid stays small.
    assert sum(gaps) / len(gaps) < 0.2
