"""Ablation: bi-point discretization (§3.3) vs naive nearest-allocation rounding.

The bi-point scheme represents the continuous optimum n* with two valid
allocations whose combined time equals C*; the naive alternative simply rounds
n* to the nearest valid allocation and runs all layers there, which distorts
the per-MetaOp finish times and inflates the schedule.
"""

from bench_utils import emit

from repro.core.allocator import ResourceAllocator
from repro.core.plan import ASLTuple
from repro.core.planner import ExecutionPlanner
from repro.experiments.reporting import format_table
from repro.experiments.workloads import clip_workload, ofasys_workload

from repro.bench import Metric, register_benchmark

WORKLOADS = (clip_workload(7, 16), clip_workload(10, 32), ofasys_workload(7, 16))


@register_benchmark(
    "ablation_discretization",
    figure="ablation",
    stage="planning",
    tags=("ablation", "allocator", "smoke"),
    description="Bi-point discretization vs nearest-allocation rounding",
)
def bench_ablation_discretization(ctx):
    ratios = []
    for workload in WORKLOADS:
        bipoint, _ = _makespan(workload, ResourceAllocator)
        naive, _ = _makespan(workload, NearestRoundingAllocator)
        ratios.append(naive / bipoint)
    return {
        "max_rounding_inflation": Metric(max(ratios), "x", higher_is_better=True),
        "mean_rounding_inflation": Metric(
            sum(ratios) / len(ratios), "x", higher_is_better=True
        ),
    }


class NearestRoundingAllocator(ResourceAllocator):
    """Ablation allocator: round n* to the single nearest valid allocation."""

    def discretize(self, metaop, n_star, c_star, curve):
        valid = self.valid_allocation_fn(metaop, self.num_devices)
        nearest = min(valid, key=lambda n: abs(n - n_star))
        return [ASLTuple(n_devices=nearest, layers=metaop.num_operators)]


def _makespan(workload, allocator_cls):
    planner = ExecutionPlanner(workload.cluster())
    planner.allocator = allocator_cls(workload.cluster().num_devices)
    plan = planner.plan(workload.tasks())
    return plan.estimated_compute_makespan, plan.theoretical_optimum


def test_ablation_bipoint_discretization(benchmark):
    benchmark.pedantic(
        lambda: _makespan(WORKLOADS[0], ResourceAllocator), rounds=1, iterations=1
    )
    rows = []
    improvements = []
    for workload in WORKLOADS:
        bipoint, optimum = _makespan(workload, ResourceAllocator)
        naive, _ = _makespan(workload, NearestRoundingAllocator)
        improvements.append(naive / bipoint)
        rows.append(
            [
                workload.name,
                f"{optimum * 1e3:.1f}",
                f"{bipoint * 1e3:.1f}",
                f"{naive * 1e3:.1f}",
                f"{naive / bipoint:.2f}x",
            ]
        )
    emit(
        "ablation_discretization",
        format_table(
            [
                "workload",
                "C* (ms)",
                "bi-point (ms)",
                "nearest rounding (ms)",
                "rounding / bi-point",
            ],
            rows,
            title="Ablation: bi-point discretization vs nearest-allocation rounding",
        ),
    )
    # Bi-point discretization is never worse, and helps on at least one workload.
    assert all(ratio >= 0.99 for ratio in improvements)
    assert max(improvements) > 1.0
