"""Ablation: wave time-span alignment (§3.4 step 3) vs unsliced waves.

Spindle dissects ASL-tuples so the MetaOps scheduled in one wave finish
together.  The ablation scheduler skips the slicing step and always runs every
proposed tuple to completion, so a wave lasts as long as its longest tuple and
devices assigned to shorter tuples idle — inflating the makespan.
"""

from bench_utils import emit

from repro.core.planner import ExecutionPlanner
from repro.core.scheduler import WavefrontScheduler
from repro.experiments.reporting import format_table
from repro.experiments.workloads import clip_workload, ofasys_workload

from repro.bench import Metric, register_benchmark

WORKLOADS = (clip_workload(4, 16), clip_workload(10, 32), ofasys_workload(7, 16))


@register_benchmark(
    "ablation_wave_alignment",
    figure="ablation",
    stage="planning",
    tags=("ablation", "scheduler", "smoke"),
    description="Wave time-span alignment vs unsliced whole-tuple waves",
)
def bench_ablation_wave_alignment(ctx):
    ratios = []
    for workload in WORKLOADS:
        aligned, _ = _makespan(workload, WavefrontScheduler)
        unaligned, _ = _makespan(workload, UnalignedScheduler)
        ratios.append(unaligned / aligned)
    return {
        "max_alignment_gain": Metric(max(ratios), "x", higher_is_better=True),
        "mean_alignment_gain": Metric(
            sum(ratios) / len(ratios), "x", higher_is_better=True
        ),
    }


class UnalignedScheduler(WavefrontScheduler):
    """Ablation: schedule whole tuples per wave without time-span alignment."""

    def _align_time_span(self, candidates):
        entries = []
        duration = 0.0
        for candidate in candidates:
            layers = candidate.source.layers_remaining
            entry_duration = layers * candidate.per_layer_time
            from repro.core.plan import WaveEntry

            entries.append(
                WaveEntry(
                    metaop_index=candidate.pending.metaop.index,
                    n_devices=candidate.n_devices,
                    layers=layers,
                    duration=entry_duration,
                    operator_offset=candidate.pending.operator_cursor,
                )
            )
            duration = max(duration, entry_duration)
        return entries, duration


def _makespan(workload, scheduler_cls):
    cluster = workload.cluster()
    planner = ExecutionPlanner(cluster)
    planner.scheduler = scheduler_cls(
        cluster.num_devices, valid_allocation_fn=planner.allocator.valid_allocation_fn
    )
    plan = planner.plan(workload.tasks())
    return plan.estimated_compute_makespan, plan.schedule.num_waves


def test_ablation_wave_alignment(benchmark):
    benchmark.pedantic(
        lambda: _makespan(WORKLOADS[0], WavefrontScheduler), rounds=1, iterations=1
    )
    rows = []
    ratios = []
    for workload in WORKLOADS:
        aligned, aligned_waves = _makespan(workload, WavefrontScheduler)
        unaligned, unaligned_waves = _makespan(workload, UnalignedScheduler)
        ratios.append(unaligned / aligned)
        rows.append(
            [
                workload.name,
                f"{aligned * 1e3:.1f} ({aligned_waves} waves)",
                f"{unaligned * 1e3:.1f} ({unaligned_waves} waves)",
                f"{unaligned / aligned:.2f}x",
            ]
        )
    emit(
        "ablation_wave_alignment",
        format_table(
            ["workload", "aligned waves (ms)", "unsliced waves (ms)", "unsliced / aligned"],
            rows,
            title="Ablation: wave time-span alignment",
        ),
    )
    assert all(ratio >= 0.98 for ratio in ratios)
    assert max(ratios) > 1.02
