"""Fig. 10: runtime breakdown and the device-placement ablation.

For Multitask-CLIP (10 tasks), OFASys (7 tasks) and QWen-VAL (3 tasks) on one
and two nodes (or 4/8 nodes for QWen-VAL), reports the decomposition of the
iteration into forward/backward, parameter synchronisation and inter-wave
send/receive for DeepSpeed and Spindle, plus Spindle with the naive sequential
placement (the ablation), whose send/receive share should be several times
larger than Spindle's.
"""

import pytest

from bench_utils import emit

from repro.bench import Metric, register_benchmark
from repro.experiments.harness import run_single_system
from repro.experiments.reporting import format_table
from repro.experiments.workloads import clip_workload, ofasys_workload, qwen_val_workload

BREAKDOWN_WORKLOAD = clip_workload(10, 16)


@register_benchmark(
    "fig10_time_breakdown",
    figure="fig10",
    stage="simulation",
    tags=("figure", "breakdown", "smoke"),
    description="Iteration time decomposition and the placement ablation",
)
def bench_fig10_time_breakdown(ctx):
    workload = BREAKDOWN_WORKLOAD
    tasks, cluster = ctx.tasks(workload), ctx.cluster(workload)
    _, spindle = run_single_system(workload, "spindle", tasks=tasks, cluster=cluster)
    _, ablation = run_single_system(
        workload,
        "spindle",
        tasks=tasks,
        cluster=cluster,
        placement_strategy="sequential",
    )
    inflation = (
        ablation.breakdown.send_recv / spindle.breakdown.send_recv
        if spindle.breakdown.send_recv > 0
        else 1.0
    )
    return {
        "iteration_ms": Metric(spindle.iteration_time * 1e3, "ms"),
        "forward_backward_fraction": Metric(
            spindle.breakdown.fraction("forward_backward"),
            "fraction",
            higher_is_better=True,
        ),
        "send_recv_fraction": Metric(
            spindle.breakdown.fraction("send_recv"), "fraction"
        ),
        "placement_send_recv_inflation": Metric(
            inflation, "x", higher_is_better=True
        ),
    }


WORKLOADS = (
    clip_workload(10, 8),
    clip_workload(10, 16),
    ofasys_workload(7, 8),
    ofasys_workload(7, 16),
    qwen_val_workload(32),
    qwen_val_workload(64),
)


def _breakdown_row(label, result):
    b = result.breakdown
    return [
        label,
        f"{result.iteration_time * 1e3:8.1f}",
        f"{b.forward_backward * 1e3:8.1f}",
        f"{b.param_sync * 1e3:7.1f}",
        f"{b.send_recv * 1e3:7.2f}",
        f"{b.fraction('send_recv') * 100:5.1f}%",
    ]


@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w.name)
def test_fig10_time_breakdown(benchmark, workload):
    _, deepspeed = run_single_system(workload, "deepspeed")
    _, spindle = benchmark.pedantic(
        lambda: run_single_system(workload, "spindle"), rounds=1, iterations=1
    )
    _, ablation = run_single_system(workload, "spindle", placement_strategy="sequential")

    rows = [
        _breakdown_row("DeepSpeed", deepspeed),
        _breakdown_row("Spindle", spindle),
        _breakdown_row("Spindle (sequential placement)", ablation),
    ]
    emit(
        f"fig10_breakdown_{workload.name}",
        format_table(
            ["system", "iter (ms)", "fwd&bwd (ms)", "sync (ms)", "send&recv (ms)", "send&recv %"],
            rows,
            title=f"Fig. 10: {workload.describe()}",
        ),
    )

    # Forward/backward dominates the iteration (80-95% in the paper).
    assert spindle.breakdown.fraction("forward_backward") > 0.6
    # Spindle's inter-wave communication stays a small share of the iteration.
    assert spindle.breakdown.fraction("send_recv") < 0.15
    # The locality-aware placement never loses to the sequential ablation.
    assert spindle.breakdown.send_recv <= ablation.breakdown.send_recv + 1e-9


def test_fig10_placement_ablation_aggregate(benchmark):
    """Across the breakdown workloads the naive placement inflates send/recv."""
    benchmark.pedantic(lambda: run_single_system(WORKLOADS[0], "spindle"), rounds=1, iterations=1)
    inflations = []
    for workload in WORKLOADS[:4]:
        _, spindle = run_single_system(workload, "spindle")
        _, ablation = run_single_system(
            workload, "spindle", placement_strategy="sequential"
        )
        if spindle.breakdown.send_recv > 0:
            inflations.append(
                ablation.breakdown.send_recv / spindle.breakdown.send_recv
            )
    rows = [[w.name, f"{x:.2f}x"] for w, x in zip(WORKLOADS, inflations)]
    emit(
        "fig10_placement_ablation",
        format_table(
            ["workload", "send&recv inflation (sequential / locality)"],
            rows,
            title="Fig. 10 ablation: sequential placement vs Spindle placement",
        ),
    )
    assert inflations
    assert max(inflations) >= 1.0
