"""Fig. 1 (lower): utilization fluctuation of decoupled MT MM execution.

Runs the temporally decoupled baseline (DeepSpeed-style) on the 4-task
Multitask-CLIP workload and reports the cluster FLOP/s timeline over the
iteration, reproducing the fluctuating, frequently-low utilization the paper
uses to motivate Spindle.
"""

from bench_utils import emit

from repro.bench import Metric, register_benchmark
from repro.experiments.harness import run_single_system
from repro.experiments.reporting import format_series, format_table
from repro.experiments.workloads import clip_workload

WORKLOAD = clip_workload(4, 16)


@register_benchmark(
    "fig01_decoupled_utilization",
    figure="fig01",
    stage="simulation",
    tags=("figure", "utilization", "smoke"),
    description="Utilization fluctuation of the decoupled (DeepSpeed) baseline",
)
def bench_fig01_decoupled_utilization(ctx):
    _, result = run_single_system(
        WORKLOAD, "deepspeed", tasks=ctx.tasks(WORKLOAD), cluster=ctx.cluster(WORKLOAD)
    )
    timeline = [value for _, value in result.trace.cluster_timeline(num_points=60)]
    peak = ctx.cluster(WORKLOAD).total_peak_flops
    return {
        "cluster_avg_tflops": Metric(
            result.trace.cluster_average_flops() / 1e12, "TFLOP/s"
        ),
        "peak_fraction": Metric(result.trace.cluster_average_flops() / peak, "fraction"),
        "fluctuation_min_over_max": Metric(
            min(timeline) / max(timeline), "fraction", regression_threshold=None
        ),
    }


def test_fig01_decoupled_utilization_timeline(benchmark):
    system, result = run_single_system(WORKLOAD, "deepspeed")
    benchmark.pedantic(
        lambda: system.run_iteration(WORKLOAD.tasks()), rounds=3, iterations=1
    )

    timeline = result.trace.cluster_timeline(num_points=60)
    tflops = [(t * 1e3, value / 1e12) for t, value in timeline]
    emit(
        "fig01_decoupled_utilization",
        format_series(tflops, "time (ms)", "cluster TFLOP/s", max_points=30),
    )

    values = [value for _, value in timeline]
    peak = WORKLOAD.cluster().total_peak_flops
    # The decoupled execution fluctuates: some slots sit well below the best
    # slot, and overall utilization is far from peak (Fig. 1's observation).
    assert max(values) > 0
    assert min(values) < 0.5 * max(values)
    assert result.trace.cluster_average_flops() < 0.6 * peak


def test_fig01_per_task_utilization_gap(benchmark):
    """Inter-task heterogeneity: per-task average FLOP/s differ widely."""
    system, result = benchmark.pedantic(
        lambda: run_single_system(WORKLOAD, "deepspeed"), rounds=1, iterations=1
    )
    tasks = WORKLOAD.tasks()
    metaop_flops = result.trace.metaop_average_flops()
    rows = [
        [task.name, f"{task.flops / 1e12:.2f} TFLOP / iter"] for task in tasks
    ]
    emit(
        "fig01_task_workloads",
        format_table(["task", "forward FLOPs"], rows, title="Fig. 1: task workloads"),
    )
    assert len(metaop_flops) > 0
    assert max(t.flops for t in tasks) / min(t.flops for t in tasks) > 2.0
