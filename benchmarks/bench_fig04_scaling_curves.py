"""Fig. 4: MetaOp execution time and resource scalability (scaling curves).

Profiles the MetaOps of 4-task Multitask-CLIP on a 32-GPU cluster and prints
per-MetaOp execution time T(n) and resource scalability sigma(n) = T(1)/T(n)
for n in {1, 2, 4, 8, 16, 32} -- the two panels of Fig. 4.
"""

from bench_utils import emit

from repro.cluster.topology import make_cluster
from repro.core.contraction import contract_graph
from repro.core.estimator import ScalabilityEstimator
from repro.costmodel.profiler import SyntheticProfiler
from repro.experiments.reporting import format_table
from repro.graph.builder import build_unified_graph
from repro.models.multitask_clip import multitask_clip_tasks

from repro.bench import Metric, register_benchmark

DEVICE_COUNTS = (1, 2, 4, 8, 16, 32)


@register_benchmark(
    "fig04_scaling_curves",
    figure="fig04",
    stage="costmodel",
    tags=("figure", "scalability", "smoke"),
    description="Heterogeneity of the per-MetaOp resource scaling curves",
)
def bench_fig04_scaling_curves(ctx):
    metagraph, curves = _estimate()
    final_speedups = [
        curves[m.index].speedup(32)
        for m in metagraph.metaops.values()
        if m.num_operators > 1
    ]
    return {
        "speedup32_max": Metric(max(final_speedups), "x", higher_is_better=True),
        "speedup32_min": Metric(min(final_speedups), "x", higher_is_better=True),
        "heterogeneity": Metric(
            max(final_speedups) / min(final_speedups), "x", higher_is_better=True
        ),
    }


def _estimate():
    cluster = make_cluster(32)
    metagraph = contract_graph(build_unified_graph(multitask_clip_tasks(4)))
    estimator = ScalabilityEstimator(SyntheticProfiler(cluster))
    return metagraph, estimator.estimate(metagraph)


def test_fig04_scaling_curves(benchmark):
    metagraph, curves = benchmark.pedantic(_estimate, rounds=3, iterations=1)

    encoder_metaops = [
        m for m in metagraph.metaops.values() if m.num_operators > 1
    ]
    time_rows, speedup_rows = [], []
    for metaop in encoder_metaops:
        curve = curves[metaop.index]
        label = f"{metaop.task}/{metaop.modality}"
        time_rows.append(
            [label] + [f"{curve.time(n) * 1e3:.2f}" for n in DEVICE_COUNTS]
        )
        speedup_rows.append(
            [label] + [f"{curve.speedup(n):.2f}" for n in DEVICE_COUNTS]
        )

    headers = ["MetaOp"] + [f"n={n}" for n in DEVICE_COUNTS]
    emit(
        "fig04_execution_time",
        format_table(headers, time_rows, title="Fig. 4 (left): per-operator time (ms)"),
    )
    emit(
        "fig04_resource_scalability",
        format_table(headers, speedup_rows, title="Fig. 4 (right): speedup T(1)/T(n)"),
    )

    # Shape checks: every curve is non-increasing; scalability is heterogeneous
    # (the best MetaOp scales much further than the worst, as in Fig. 4).
    final_speedups = []
    for metaop in encoder_metaops:
        curve = curves[metaop.index]
        times = [curve.time(n) for n in DEVICE_COUNTS]
        assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))
        final_speedups.append(curve.speedup(32))
    assert max(final_speedups) > 3 * min(final_speedups)
    assert max(final_speedups) > 8.0
