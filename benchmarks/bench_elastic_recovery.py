"""Elastic recovery: seeded device failures with event-driven replanning.

Replays a seeded random-failure scenario (failures with later recovery) for
Multitask-CLIP on 16 GPUs through the elastic training runner: capacity-loss
events force a replan routed through the per-topology incremental planner and
the shared plan cache; recoveries ride the slowdown-threshold policy.  The
gated metrics are fully deterministic — simulated iteration times, the
charged replan cost model, and the migration cost model — so a change that
erodes recovery quality (more migration bytes, slower degraded plans, lost
plan-cache hits) fails the gate.
"""

from bench_utils import emit

from repro.bench import Metric, informational, invariant, register_benchmark
from repro.cluster.device import A800_SPEC
from repro.elastic import (
    ElasticScenario,
    ElasticTrainingRunner,
    SlowdownThresholdPolicy,
    random_failure_timeline,
)
from repro.experiments.reporting import render_elastic_result
from repro.experiments.workloads import clip_workload

WORKLOAD = clip_workload(4, 16)
TOTAL_ITERATIONS = 200
NUM_FAILURES = 3
SEED = 0


def _scenario() -> ElasticScenario:
    num_nodes, per_node = 2, 8
    timeline = random_failure_timeline(
        num_nodes=num_nodes,
        devices_per_node=per_node,
        total_iterations=TOTAL_ITERATIONS,
        num_failures=NUM_FAILURES,
        seed=SEED,
    )
    return ElasticScenario(
        num_nodes=num_nodes,
        devices_per_node=per_node,
        device_spec=A800_SPEC,
        timeline=timeline,
        total_iterations=TOTAL_ITERATIONS,
        name=f"random-failures-seed{SEED}",
    )


def _run(tasks):
    runner = ElasticTrainingRunner(
        _scenario(), policy=SlowdownThresholdPolicy(threshold=0.1)
    )
    return runner.run(tasks)


@register_benchmark(
    "elastic_recovery",
    stage="elastic",
    tags=("elastic", "dynamic", "smoke"),
    description="Seeded failure/recovery scenario: replan + migration overheads",
)
def bench_elastic_recovery(ctx):
    result = _run(ctx.tasks(WORKLOAD))
    return {
        "cumulative_slowdown": Metric(result.cumulative_slowdown, "x"),
        "baseline_iteration_ms": Metric(
            result.baseline_iteration_seconds * 1e3, "ms"
        ),
        "migration_gib": invariant(
            result.migration_bytes / 1024**3, "GiB", threshold=0.05
        ),
        "migration_seconds": invariant(result.migration_seconds, "s", threshold=0.05),
        "replan_count": invariant(float(result.replan_count), "replans"),
        "plan_cache_hits": invariant(float(result.cache_hits), "hits"),
        "overhead_fraction": Metric(
            result.overhead_seconds / result.total_seconds, "fraction"
        ),
        "replan_measured_s": informational(result.replan_measured_seconds, "s"),
    }


def test_elastic_recovery(once_per_session_cache):
    tasks = once_per_session_cache.tasks(WORKLOAD)
    result = _run(tasks)
    emit("elastic_recovery", render_elastic_result(result))

    # Capacity-loss events always replan; the scenario has NUM_FAILURES of them.
    forced = [outcome for outcome in result.outcomes if outcome.forced]
    assert len(forced) == NUM_FAILURES
    assert all(outcome.replanned for outcome in forced)
    # Failures slow training down, but recovery keeps the damage bounded.
    assert 1.0 < result.cumulative_slowdown < 2.0
    # Replanning + migration stays a small fraction of the training time.
    assert result.overhead_seconds < 0.5 * result.training_seconds

    # The same seed reproduces the canonical report byte for byte.
    import json

    again = _run(tasks)
    assert json.dumps(result.to_document(), sort_keys=True) == json.dumps(
        again.to_document(), sort_keys=True
    )
