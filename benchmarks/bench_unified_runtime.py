"""Unified runtime: incremental replanning latency vs the full-replan reference.

Replays an in-place job-churn scenario — a Multitask-CLIP job resubmitted
mid-run with a new name and weight, architecturally identical — through the
unified event-driven runtime in both planner modes.  The resubmission misses
the plan cache (weight is part of the canonical fingerprint) but is a full
structural match, so incremental replanning adopts the previous plan's
allocations, schedule and placement wholesale and only re-runs contraction
plus pooled curve estimation.

Gated claims:

* the canonical reports of the two modes are byte-identical (equivalence is
  additionally pinned by ``tests/test_unified_runtime.py``),
* the adopted-MetaLevel count and replan counts are exact invariants,
* the measured single-event replan latency is a multiple of the full-replan
  reference at the largest benchmarked plan size — gated as a speedup ratio
  (machine speed cancels), with a generous threshold because both terms are
  wall-clock.

The replan latencies land in the ``elastic.replan_seconds{policy=...}``
histograms either way; the registry delta of the largest incremental run is
exported through :meth:`MetricsRegistry.to_bench_metrics` so the BENCH schema
carries the histogram evidence next to the derived ratio.
"""

import dataclasses
import json

from bench_utils import emit

from repro.bench import Metric, informational, invariant, register_benchmark
from repro.cluster.device import A800_SPEC
from repro.elastic import SlowdownThresholdPolicy
from repro.models.multitask_clip import CLIP_TASKS, build_clip_task, multitask_clip_tasks
from repro.obs import get_metrics
from repro.unified import UnifiedRunner, UnifiedScenario, job_churn_timeline

NUM_TASKS = 10
TOTAL_ITERATIONS = 200
CHURN_AT = 100
#: GPU counts benchmarked; the speedup gate applies to the largest.
SIZES = (16, 32, 64)
#: Best-of repetitions per (size, mode) measurement — wall-clock smoothing.
REPEATS = 3


def _scenario(num_gpus: int) -> UnifiedScenario:
    tasks = multitask_clip_tasks(NUM_TASKS)
    initial = tuple(task.name for task in tasks)
    resubmitted = build_clip_task(
        dataclasses.replace(CLIP_TASKS[1], name=f"{initial[1]}_resubmit")
    )
    resubmitted.weight = 2.0
    pool = {task.name: task for task in tasks}
    pool[resubmitted.name] = resubmitted
    per_node = 8
    return UnifiedScenario(
        num_nodes=num_gpus // per_node,
        devices_per_node=per_node,
        device_spec=A800_SPEC,
        timeline=job_churn_timeline(
            initial, [(initial[1], resubmitted.name)], [CHURN_AT]
        ),
        total_iterations=TOTAL_ITERATIONS,
        task_pool=pool,
        initial_tasks=initial,
        name=f"job-churn-{num_gpus}gpu",
    )


def _measure(num_gpus: int, incremental: bool):
    """Best-of-``REPEATS`` run of one mode; returns (result, registry delta)."""
    best = None
    delta = None
    metrics = get_metrics()
    for _ in range(REPEATS):
        before = metrics.snapshot()
        result = UnifiedRunner(
            _scenario(num_gpus),
            policy=SlowdownThresholdPolicy(threshold=0.1),
            incremental=incremental,
        ).run()
        if best is None or result.replan_measured_seconds < best.replan_measured_seconds:
            best = result
            delta = metrics.snapshot().diff(before)
    return best, delta


@register_benchmark(
    "unified_runtime",
    stage="unified",
    tags=("unified", "elastic", "dynamic", "smoke"),
    description="Incremental vs full replan latency on in-place job churn",
)
def bench_unified_runtime(ctx):
    metrics: dict[str, Metric] = {}
    largest = SIZES[-1]
    for num_gpus in SIZES:
        inc, inc_delta = _measure(num_gpus, incremental=True)
        full, _ = _measure(num_gpus, incremental=False)
        assert json.dumps(inc.to_document(), sort_keys=True) == json.dumps(
            full.to_document(), sort_keys=True
        ), f"incremental and full reports diverged at {num_gpus} GPUs"
        speedup = full.replan_measured_seconds / max(
            inc.replan_measured_seconds, 1e-9
        )
        gate = num_gpus == largest
        metrics[f"replan_speedup_{num_gpus}gpu"] = Metric(
            speedup,
            "x",
            higher_is_better=True,
            # Generous: both terms are wall-clock; the committed baseline
            # documents ~3x, the gate only rejects a collapse of the reuse
            # path (below ~half the baseline ratio).
            regression_threshold=0.5 if gate else None,
        )
        metrics[f"levels_reused_{num_gpus}gpu"] = invariant(
            float(inc.levels_reused), "levels"
        )
        metrics[f"incremental_replan_ms_{num_gpus}gpu"] = informational(
            inc.replan_measured_seconds * 1e3, "ms"
        )
        metrics[f"full_replan_ms_{num_gpus}gpu"] = informational(
            full.replan_measured_seconds * 1e3, "ms"
        )
        if gate:
            metrics["replan_count"] = invariant(float(inc.replan_count), "replans")
            metrics["cumulative_slowdown"] = Metric(inc.cumulative_slowdown, "x")
            # Histogram evidence: the replan latencies of the incremental run
            # as recorded in the shared elastic metric schema.
            metrics.update(
                get_metrics().to_bench_metrics(
                    prefix="registry.", snapshot=inc_delta
                )
            )
    return metrics


def test_unified_runtime_speedup(once_per_session_cache):
    inc, _ = _measure(SIZES[-1], incremental=True)
    full, _ = _measure(SIZES[-1], incremental=False)

    assert json.dumps(inc.to_document(), sort_keys=True) == json.dumps(
        full.to_document(), sort_keys=True
    )
    # The churn replan adopts every MetaLevel (full structural match) ...
    (outcome,) = inc.outcomes
    assert outcome.replan is not None and not outcome.replan.cache_hit
    assert outcome.replan.levels_reused > 0
    assert inc.levels_reused == outcome.replan.levels_reused
    assert full.levels_reused == 0
    # ... which makes the single-event replan decisively faster.  The hard
    # 2x claim lives in the committed baseline; this assertion only guards
    # against the reuse path silently not engaging.
    speedup = full.replan_measured_seconds / max(inc.replan_measured_seconds, 1e-9)
    assert speedup > 1.3

    emit(
        "unified_runtime",
        "\n".join(
            [
                f"scenario          : {inc.scenario_name}",
                f"replans           : {inc.replan_count} "
                f"({inc.task_set_changes} task-set changes)",
                f"levels adopted    : {inc.levels_reused}",
                f"incremental replan: {inc.replan_measured_seconds * 1e3:.2f} ms",
                f"full replan       : {full.replan_measured_seconds * 1e3:.2f} ms",
                f"speedup           : {speedup:.2f}x",
            ]
        ),
    )
