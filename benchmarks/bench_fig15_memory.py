"""Fig. 15 (Appendix G): per-device memory consumption.

Reports the per-device memory footprint of every system on the Multitask-CLIP
(4 tasks, 16 GPUs) case study.  Spindle's selective parameter storage keeps its
footprint at or below the SOTA systems, and its device placement keeps memory
well balanced across devices.
"""

import pytest

from bench_utils import cached_comparison, emit

from repro.bench import Metric, register_benchmark
from repro.experiments.harness import run_comparison
from repro.experiments.reporting import format_table
from repro.experiments.workloads import CASE_STUDY_WORKLOAD

SYSTEMS = ("spindle", "spindle-optimus", "distmm-mt", "megatron-lm", "deepspeed")


@register_benchmark(
    "fig15_memory",
    figure="fig15",
    stage="simulation",
    tags=("figure", "memory", "smoke"),
    description="Per-device memory footprint and balance of the case study",
)
def bench_fig15_memory(ctx):
    comparison = cached_comparison(ctx, CASE_STUDY_WORKLOAD, systems=SYSTEMS)
    peaks = {
        name: comparison.results[name].peak_device_memory_bytes for name in SYSTEMS
    }

    def imbalance(name):
        values = list(comparison.results[name].device_memory_bytes.values())
        return max(values) / (sum(values) / len(values))

    return {
        "spindle_peak_gib": Metric(peaks["spindle"] / 1024**3, "GiB"),
        "spindle_vs_deepspeed_peak": Metric(
            peaks["spindle"] / peaks["deepspeed"], "x"
        ),
        "spindle_imbalance": Metric(imbalance("spindle"), "x"),
    }


@pytest.fixture(scope="module")
def case_study():
    return run_comparison(CASE_STUDY_WORKLOAD, systems=SYSTEMS)


def test_fig15_memory_consumption(benchmark, case_study):
    benchmark.pedantic(
        lambda: run_comparison(CASE_STUDY_WORKLOAD, systems=("spindle",)),
        rounds=1,
        iterations=1,
    )
    cluster = CASE_STUDY_WORKLOAD.cluster()
    rows = []
    for device in range(cluster.num_devices):
        row = [device]
        for name in SYSTEMS:
            memory = case_study.results[name].device_memory_bytes[device]
            row.append(f"{memory / 1024**3:.1f}")
        rows.append(row)
    emit(
        "fig15_memory",
        format_table(
            ["device"] + [f"{n} (GiB)" for n in SYSTEMS],
            rows,
            title="Fig. 15: per-device memory, Multitask-CLIP (4 tasks, 16 GPUs)",
        ),
    )

    peaks = {
        name: case_study.results[name].peak_device_memory_bytes for name in SYSTEMS
    }
    capacity = cluster.device_spec.memory_bytes
    # Everything fits, and Spindle does not exceed the replicated baselines.
    assert all(peak <= capacity for peak in peaks.values())
    assert peaks["spindle"] <= peaks["deepspeed"] * 1.1
    assert peaks["spindle"] <= peaks["megatron-lm"] * 1.1


def test_fig15_spindle_memory_is_balanced(benchmark, case_study):
    """Spindle balances memory across devices better than task-level allocation."""
    benchmark.pedantic(
        lambda: case_study.results["spindle"].peak_device_memory_bytes,
        rounds=1,
        iterations=1,
    )

    def imbalance(name):
        values = list(case_study.results[name].device_memory_bytes.values())
        return max(values) / (sum(values) / len(values))

    assert imbalance("spindle") <= imbalance("spindle-optimus") + 0.25
