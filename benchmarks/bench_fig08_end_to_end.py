"""Fig. 8: end-to-end iteration time of Spindle vs the baseline systems.

Regenerates every panel of Fig. 8: Multitask-CLIP with {4, 7, 10} tasks and
OFASys with {4, 7} tasks on {8, 16, 32} GPUs, and QWen-VAL (3 tasks) on
{32, 64} GPUs.  For each workload the speedup of every system over DeepSpeed
is reported; Spindle is expected to win everywhere, with the advantage growing
with task count and cluster size (the paper's headline result, up to 1.71x).
"""

import pytest

from bench_utils import (
    FIG8_SYSTEMS,
    cached_comparison,
    comparison_metrics,
    comparison_table,
    emit,
)

from repro.bench import Metric, register_benchmark
from repro.experiments.harness import run_comparison
from repro.experiments.workloads import (
    FIG8_CLIP_CLUSTERS,
    FIG8_CLIP_TASK_COUNTS,
    FIG8_OFASYS_CLUSTERS,
    FIG8_OFASYS_TASK_COUNTS,
    FIG8_QWEN_CLUSTERS,
    clip_workload,
    fig8_workloads,
    ofasys_workload,
    qwen_val_workload,
)

CLIP_GRID = [
    clip_workload(tasks, gpus)
    for tasks in FIG8_CLIP_TASK_COUNTS
    for gpus in FIG8_CLIP_CLUSTERS
]
OFASYS_GRID = [
    ofasys_workload(tasks, gpus)
    for tasks in FIG8_OFASYS_TASK_COUNTS
    for gpus in FIG8_OFASYS_CLUSTERS
]
QWEN_GRID = [qwen_val_workload(gpus) for gpus in FIG8_QWEN_CLUSTERS]

#: Representative corner of the grid for the CI smoke benchmark.
SMOKE_WORKLOADS = (clip_workload(4, 8), clip_workload(10, 32), qwen_val_workload(32))


@register_benchmark(
    "fig08_end_to_end",
    figure="fig08",
    stage="simulation",
    tags=("figure", "end-to-end", "smoke"),
    description="Spindle vs baselines on representative Fig. 8 workloads",
)
def bench_fig08_end_to_end(ctx):
    metrics = {}
    for workload in SMOKE_WORKLOADS:
        comparison = cached_comparison(ctx, workload)
        metrics.update(
            comparison_metrics(
                comparison,
                prefix=f"{workload.name}/",
                systems=("spindle", "deepspeed"),
            )
        )
    return metrics


@register_benchmark(
    "fig08_end_to_end_full",
    figure="fig08",
    stage="simulation",
    tags=("figure", "end-to-end", "full"),
    description="Spindle speedup over the entire Fig. 8 grid (aggregates)",
)
def bench_fig08_end_to_end_full(ctx):
    speedups = []
    for workload in fig8_workloads():
        comparison = cached_comparison(ctx, workload)
        speedups.append(comparison.speedup("spindle"))
    return {
        "spindle_speedup_min": Metric(min(speedups), "x", higher_is_better=True),
        "spindle_speedup_mean": Metric(
            sum(speedups) / len(speedups), "x", higher_is_better=True
        ),
        "spindle_speedup_max": Metric(max(speedups), "x", higher_is_better=True),
    }


def _run_and_report(workload, benchmark, cache):
    tasks, cluster = cache.tasks(workload), cache.cluster(workload)
    comparison = benchmark.pedantic(
        lambda: run_comparison(
            workload, systems=FIG8_SYSTEMS, tasks=tasks, cluster=cluster
        ),
        rounds=1,
        iterations=1,
    )
    emit(f"fig08_{workload.name}", comparison_table(comparison, f"Fig. 8: {workload.describe()}"))
    assert comparison.best_system == "spindle"
    assert comparison.speedup("spindle") >= 1.0
    return comparison


@pytest.mark.parametrize("workload", CLIP_GRID, ids=lambda w: w.name)
def test_fig08_multitask_clip(benchmark, workload, once_per_session_cache):
    comparison = _run_and_report(workload, benchmark, once_per_session_cache)
    # On the larger clusters Spindle's gain is substantial (paper: up to 71%).
    if workload.num_gpus >= 32:
        assert comparison.speedup("spindle") > 1.25


@pytest.mark.parametrize("workload", OFASYS_GRID, ids=lambda w: w.name)
def test_fig08_ofasys(benchmark, workload, once_per_session_cache):
    comparison = _run_and_report(workload, benchmark, once_per_session_cache)
    if workload.num_gpus >= 32 and workload.num_tasks >= 7:
        assert comparison.speedup("spindle") > 1.3


@pytest.mark.parametrize("workload", QWEN_GRID, ids=lambda w: w.name)
def test_fig08_qwen_val(benchmark, workload, once_per_session_cache):
    comparison = _run_and_report(workload, benchmark, once_per_session_cache)
    assert comparison.speedup("spindle") > 1.1


def test_fig08_scaling_trends(benchmark, once_per_session_cache):
    """Spindle's advantage grows with task count and with cluster size."""
    cache = once_per_session_cache
    small_workload, large_workload = clip_workload(4, 8), clip_workload(10, 32)
    small = benchmark.pedantic(
        lambda: run_comparison(
            small_workload,
            systems=("spindle", "deepspeed"),
            tasks=cache.tasks(small_workload),
            cluster=cache.cluster(small_workload),
        ),
        rounds=1,
        iterations=1,
    )
    large = run_comparison(
        large_workload,
        systems=("spindle", "deepspeed"),
        tasks=cache.tasks(large_workload),
        cluster=cache.cluster(large_workload),
    )
    emit(
        "fig08_scaling_trend",
        "Spindle speedup over DeepSpeed\n"
        f"  CLIP  4 tasks,  8 GPUs: {small.speedup('spindle'):.2f}x\n"
        f"  CLIP 10 tasks, 32 GPUs: {large.speedup('spindle'):.2f}x",
    )
    assert large.speedup("spindle") > small.speedup("spindle")
