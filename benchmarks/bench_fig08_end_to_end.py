"""Fig. 8: end-to-end iteration time of Spindle vs the baseline systems.

Regenerates every panel of Fig. 8: Multitask-CLIP with {4, 7, 10} tasks and
OFASys with {4, 7} tasks on {8, 16, 32} GPUs, and QWen-VAL (3 tasks) on
{32, 64} GPUs.  For each workload the speedup of every system over DeepSpeed
is reported; Spindle is expected to win everywhere, with the advantage growing
with task count and cluster size (the paper's headline result, up to 1.71x).
"""

import pytest

from bench_utils import FIG8_SYSTEMS, comparison_table, emit

from repro.experiments.harness import run_comparison
from repro.experiments.workloads import (
    FIG8_CLIP_CLUSTERS,
    FIG8_CLIP_TASK_COUNTS,
    FIG8_OFASYS_CLUSTERS,
    FIG8_OFASYS_TASK_COUNTS,
    FIG8_QWEN_CLUSTERS,
    clip_workload,
    ofasys_workload,
    qwen_val_workload,
)

CLIP_GRID = [
    clip_workload(tasks, gpus)
    for tasks in FIG8_CLIP_TASK_COUNTS
    for gpus in FIG8_CLIP_CLUSTERS
]
OFASYS_GRID = [
    ofasys_workload(tasks, gpus)
    for tasks in FIG8_OFASYS_TASK_COUNTS
    for gpus in FIG8_OFASYS_CLUSTERS
]
QWEN_GRID = [qwen_val_workload(gpus) for gpus in FIG8_QWEN_CLUSTERS]


def _run_and_report(workload, benchmark):
    comparison = benchmark.pedantic(
        lambda: run_comparison(workload, systems=FIG8_SYSTEMS), rounds=1, iterations=1
    )
    emit(f"fig08_{workload.name}", comparison_table(comparison, f"Fig. 8: {workload.describe()}"))
    assert comparison.best_system == "spindle"
    assert comparison.speedup("spindle") >= 1.0
    return comparison


@pytest.mark.parametrize("workload", CLIP_GRID, ids=lambda w: w.name)
def test_fig08_multitask_clip(benchmark, workload):
    comparison = _run_and_report(workload, benchmark)
    # On the larger clusters Spindle's gain is substantial (paper: up to 71%).
    if workload.num_gpus >= 32:
        assert comparison.speedup("spindle") > 1.25


@pytest.mark.parametrize("workload", OFASYS_GRID, ids=lambda w: w.name)
def test_fig08_ofasys(benchmark, workload):
    comparison = _run_and_report(workload, benchmark)
    if workload.num_gpus >= 32 and workload.num_tasks >= 7:
        assert comparison.speedup("spindle") > 1.3


@pytest.mark.parametrize("workload", QWEN_GRID, ids=lambda w: w.name)
def test_fig08_qwen_val(benchmark, workload):
    comparison = _run_and_report(workload, benchmark)
    assert comparison.speedup("spindle") > 1.1


def test_fig08_scaling_trends(benchmark):
    """Spindle's advantage grows with task count and with cluster size."""
    small = benchmark.pedantic(
        lambda: run_comparison(clip_workload(4, 8), systems=("spindle", "deepspeed")),
        rounds=1,
        iterations=1,
    )
    large = run_comparison(clip_workload(10, 32), systems=("spindle", "deepspeed"))
    emit(
        "fig08_scaling_trend",
        "Spindle speedup over DeepSpeed\n"
        f"  CLIP  4 tasks,  8 GPUs: {small.speedup('spindle'):.2f}x\n"
        f"  CLIP 10 tasks, 32 GPUs: {large.speedup('spindle'):.2f}x",
    )
    assert large.speedup("spindle") > small.speedup("spindle")
