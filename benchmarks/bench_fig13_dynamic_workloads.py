"""Fig. 13 (Appendix D): dynamic multi-task workloads.

Simulates training runs where the task set changes over time (tasks exit early
and join later) for Multitask-CLIP and OFASys, and reports the cumulative
training time curve of every system.  Spindle re-plans at every change and
finishes first.
"""

import pytest

from bench_utils import emit

from repro.baselines import make_system
from repro.bench import Metric, informational, register_benchmark
from repro.dynamic.workload import DynamicWorkloadRunner, DynamicWorkloadSchedule
from repro.experiments.reporting import format_table
from repro.experiments.workloads import clip_workload, ofasys_workload

SYSTEMS = ("spindle", "spindle-optimus", "distmm-mt", "megatron-lm", "deepspeed")

#: Iteration counts per phase (scaled down from the paper's 10^3 iterations so
#: the benchmark stays fast; the relative ordering is unaffected).
CLIP_PHASES = [
    (
        [
            "task01_text_audio",
            "task02_vision_depth",
            "task03_audio_thermal",
            "task04_motion_thermal",
        ],
        50,
    ),
    (["task01_text_audio", "task02_vision_depth", "task03_audio_thermal"], 60),
    (["task01_text_audio", "task02_vision_depth", "task05_vision_text", "task06_audio_vision"], 50),
    (["task05_vision_text", "task06_audio_vision"], 40),
]
OFASYS_PHASES = [
    (["image_captioning", "speech_recognition", "text_summarization", "visual_grounding"], 40),
    (["image_captioning", "speech_recognition"], 40),
    (["image_captioning", "speech_recognition", "text_to_sql", "sound_event_detection"], 40),
]


@register_benchmark(
    "fig13_dynamic_workloads",
    figure="fig13",
    stage="dynamic",
    tags=("figure", "dynamic", "smoke"),
    description="Dynamic task arrival/exit: Spindle vs baselines (CLIP phases)",
)
def bench_fig13_dynamic_workloads(ctx):
    workload = clip_workload(6, 16)
    cluster = ctx.cluster(workload)
    schedule = DynamicWorkloadSchedule.from_tasks(ctx.tasks(workload), CLIP_PHASES)
    runner = DynamicWorkloadRunner(schedule)
    results = runner.run_all(
        [make_system(name, cluster) for name in ("spindle", "deepspeed")]
    )
    spindle, deepspeed = results["spindle"], results["deepspeed"]
    replanning = sum(p.replanning_seconds for p in spindle.phase_results)
    return {
        "spindle_total_s": Metric(spindle.total_time, "s"),
        "speedup_vs_deepspeed": Metric(
            deepspeed.total_time / spindle.total_time, "x", higher_is_better=True
        ),
        "replanning_fraction": informational(
            replanning / spindle.total_time, "fraction"
        ),
    }


def _run_dynamic(workload, phases, benchmark=None):
    cluster = workload.cluster()
    tasks = workload.tasks()
    schedule = DynamicWorkloadSchedule.from_tasks(tasks, phases)
    runner = DynamicWorkloadRunner(schedule)
    systems = [make_system(name, cluster) for name in SYSTEMS]
    if benchmark is not None:
        benchmark.pedantic(
            lambda: runner.run(make_system("spindle", cluster)), rounds=1, iterations=1
        )
    return runner.run_all(systems)


@pytest.mark.parametrize(
    "label,workload,phases",
    [
        ("multitask-clip", clip_workload(6, 16), CLIP_PHASES),
        ("ofasys", ofasys_workload(6, 16), OFASYS_PHASES),
    ],
    ids=["multitask-clip", "ofasys"],
)
def test_fig13_dynamic_workloads(benchmark, label, workload, phases):
    results = _run_dynamic(workload, phases, benchmark)

    rows = []
    for name, result in results.items():
        curve = result.cumulative_curve()
        curve_text = " -> ".join(f"({i} it, {t:.1f}s)" for i, t in curve)
        rows.append([name, f"{result.total_time:.2f} s", curve_text])
    emit(
        f"fig13_dynamic_{label}",
        format_table(
            ["system", "total training time", "cumulative (iterations, seconds)"],
            rows,
            title=f"Fig. 13: dynamic multi-task workload ({label})",
        ),
    )

    total_times = {name: result.total_time for name, result in results.items()}
    assert total_times["spindle"] == min(total_times.values())
    # Replanning overhead remains negligible for Spindle.
    spindle = results["spindle"]
    replanning = sum(p.replanning_seconds for p in spindle.phase_results)
    assert replanning < 0.1 * spindle.total_time
