"""Planner scalability sweep: cluster sizes 16 -> 4096.

The paper's planner-cost figure (Fig. 12) stops at 64 GPUs; this benchmark
extends the sweep to Tab. 2-scale and beyond to demonstrate the asymptotic
behaviour of the planner hot path.  The pre-vectorization planner re-enumerated
``range(1, N+1)`` valid allocations per MetaOp per bisection call and rebuilt
the island grouping per placement query, making planning cost grow
super-linearly with cluster size; with cached allocation grids, table-driven
``Find_Inverse_Value`` and precomputed topology lookups the sweep stays within
single-digit seconds even at 4096 devices.

Tagged ``scale`` and deliberately *not* ``smoke``: CI's perf-smoke job skips
it, run it on demand with ``repro bench run --name planner_scalability``.
"""

import pytest

from bench_utils import emit

from repro.baselines.spindle_system import SpindleSystem
from repro.bench import informational, register_benchmark
from repro.experiments.reporting import format_table
from repro.experiments.workloads import clip_workload

#: Cluster sizes of the sweep (devices); the paper's grid ends at 64.
SCALE_CLUSTER_SIZES = (16, 64, 256, 1024, 4096)

SCALE_SWEEP = tuple(clip_workload(4, gpus) for gpus in SCALE_CLUSTER_SIZES)


@register_benchmark(
    "planner_scalability",
    figure="fig12",
    stage="planning",
    tags=("planner-cost", "scale"),
    description="Planner wall-clock sweep over cluster sizes 16->4096",
)
def bench_planner_scalability(ctx):
    # Wall-clock metrics are machine-dependent: informational, never gated.
    metrics = {}
    rows = []
    for workload in SCALE_SWEEP:
        system = SpindleSystem(ctx.cluster(workload))
        system.plan(ctx.tasks(workload))
        seconds = system.last_planning_seconds
        metrics[f"planning_seconds_{workload.num_gpus}gpus"] = informational(
            seconds, "s"
        )
        rows.append([f"{workload.num_gpus}", f"{seconds * 1e3:.0f} ms"])
    emit(
        "planner_scalability",
        format_table(
            ["cluster size (GPUs)", "planning time"],
            rows,
            title="Planner scalability sweep (Multitask-CLIP, 4 tasks)",
        ),
    )
    return metrics


@pytest.mark.parametrize(
    "workload",
    [w for w in SCALE_SWEEP if w.num_gpus <= 256],
    ids=lambda w: w.name,
)
def test_planner_scalability_small(benchmark, workload):
    """Planning stays well under the paper's 3 s bound through 256 GPUs."""
    cluster = workload.cluster()
    tasks = workload.tasks()
    system = SpindleSystem(cluster)
    benchmark.pedantic(lambda: system.plan(tasks), rounds=1, iterations=1)
    assert system.last_planning_seconds < 3.0


def test_planner_scalability_largest():
    """Even the 4096-GPU cluster plans within the paper's 3 s bound."""
    workload = SCALE_SWEEP[-1]
    system = SpindleSystem(workload.cluster())
    system.plan(workload.tasks())
    assert system.last_planning_seconds < 3.0
